//! # sparse-hypercube
//!
//! A full reproduction of **Fujita & Farley, "Sparse Hypercube — a minimal
//! k-line broadcast graph"** (Proc. IPPS/SPDP'99; journal version in
//! Discrete Applied Mathematics 127 (2003) 431–446).
//!
//! A *k-line broadcast* lets every vertex call one vertex at distance at
//! most `k` per time unit, calls succeeding when they share no edge and no
//! receiver. The paper constructs subgraphs of the binary `n`-cube —
//! *sparse hypercubes* — that broadcast from any source in the minimum
//! `log2 N` time units while cutting the maximum degree from `n` to
//! `(2k−1)·⌈(n−k)^(1/k)⌉`.
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`graph`] | `shc-graph` | graph substrate: representations, builders, BFS, metrics, domination |
//! | [`coding`] | `shc-coding` | GF(2) algebra and perfect Hamming codes |
//! | [`labeling`] | `shc-labeling` | Condition-A labelings of `Q_m`, exact `λ_m` |
//! | [`core`] | `shc-core` | `Construct_BASE` / `Construct(k;…)`, bounds, routing |
//! | [`broadcast`] | `shc-broadcast` | schedules, validator, schemes, exact solver |
//! | [`netsim`] | `shc-netsim` | circuit-switching simulator (§5 extension) |
//! | [`runtime`] | `shc-runtime` | parallel scenario engine: fault injection, Monte Carlo replication, flow service layer + metrics façade |
//!
//! ## Quickstart
//!
//! ```
//! use sparse_hypercube::prelude::*;
//!
//! // Build the paper's Example 3 graph: G_{15,3}, degree 6 instead of 15.
//! let g = SparseHypercube::construct_base(15, 3);
//! assert_eq!(g.max_degree(), 6);
//!
//! // Broadcast from vertex 0 and machine-check Definition 1 at k = 2.
//! let schedule = broadcast_scheme(&g, 0);
//! let report = verify_minimum_time(&g, &schedule, 2).unwrap();
//! assert_eq!(report.rounds, 15); // = log2 |V|, minimum time
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use shc_broadcast as broadcast;
pub use shc_coding as coding;
pub use shc_core as core;
pub use shc_graph as graph;
pub use shc_labeling as labeling;
pub use shc_netsim as netsim;
pub use shc_runtime as runtime;

/// The most common imports in one place.
pub mod prelude {
    pub use shc_broadcast::{
        broadcast_scheme, hypercube_broadcast, solve_min_time, star_broadcast, tree_line_broadcast,
        verify_minimum_time, verify_schedule, Schedule, SolveOutcome,
    };
    pub use shc_core::{bounds, params, DimPartition, ShcStats, SparseHypercube};
    pub use shc_graph::prelude::*;
    pub use shc_labeling::{best_labeling, constructed_lambda, Labeling};
    pub use shc_netsim::{
        replay_competing, replay_schedule, Engine, FaultedNet, FlowId, FlowOutcome, MaterializedNet,
    };
    pub use shc_runtime::{
        builtin_catalog, builtin_service_catalog, run_scenario, run_scenario_intra,
        run_scenario_traced, run_scenario_traced_intra, run_service, run_service_intra,
        run_service_traced, run_service_traced_intra, AdmissionPolicy, ArrivalSpec, BatchAdmitter,
        FaultSpec, Metrics, OriginatorPolicy, Scenario, ScenarioReport, ServiceReport, ServiceSpec,
        TopologySpec, TraceJournal, Workload,
    };
}
