//! Scenario engine tour: declare a custom fault-injection scenario, run
//! it across all cores, and compare a damaged sparse hypercube against
//! the built-in catalog's undamaged originator sweep.
//!
//! ```sh
//! cargo run --release --example scenarios -- 9 3
//! ```
//! (arguments: n, m; defaults 9, 3)

use sparse_hypercube::prelude::*;
use sparse_hypercube::runtime::{DilationShift, MetricSummary};

fn show(report: &ScenarioReport) {
    println!(
        "\n[{}] {} / {} — {} replicas (seed {:#x})",
        report.scenario, report.topology, report.workload, report.replications, report.seed
    );
    println!(
        "  blocking {:>6.2}%   informed {:>6.2}%   established {}   blocked {}",
        100.0 * report.blocking_rate,
        100.0 * report.mean_informed_fraction,
        report.total_established,
        report.total_blocked,
    );
    let fmt = |s: &MetricSummary| {
        format!(
            "min {} / mean {:.2} / p99 {} / max {}",
            s.min, s.mean, s.p99, s.max
        )
    };
    for name in ["rounds", "severed_calls", "peak_link_load"] {
        let summary = report.metric(name).expect("known metric");
        println!("  {name:<16} {}", fmt(summary));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(9);
    let m: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    assert!(m >= 1 && m < n && n <= 14, "need 1 <= m < n <= 14");

    // 1. The catalog's exhaustive sweep, shrunk to this (n, m): every
    //    vertex originates once; Theorem 4 says nothing may ever block.
    let sweep = Scenario::new(
        "all-originators",
        TopologySpec::SparseBase { n, m },
        Workload::Broadcast { competing: 1 },
    )
    .originators(OriginatorPolicy::Sweep)
    .replications(1 << n)
    .seed(1);
    let sweep_report = run_scenario(&sweep, 0);
    show(&sweep_report);
    assert_eq!(sweep_report.total_blocked, 0, "minimum-time, physically");

    // 2. A storm: random link failures AND node crashes AND a mid-run
    //    dilation upgrade, Monte Carlo over 128 fault draws.
    let storm = Scenario::new(
        "storm",
        TopologySpec::SparseBase { n, m },
        Workload::Broadcast { competing: 2 },
    )
    .originators(OriginatorPolicy::Random)
    .faults(FaultSpec {
        link_failures: 12,
        node_crashes: 3,
        dilation_shift: Some(DilationShift {
            at_round: n as usize / 2,
            dilation: 2,
        }),
    })
    .replications(128)
    .seed(0xBAD_5EED);
    let storm_report = run_scenario(&storm, 0);
    show(&storm_report);

    // 3. Determinism, demonstrated: the same storm on one thread is the
    //    same storm on all of them, byte for byte.
    let single = run_scenario(&storm, 1);
    assert_eq!(single, storm_report);
    println!("\nsingle-thread and multi-thread storms agree byte-for-byte.");
}
