//! Round-by-round trace of Scheme Broadcast_2 / Broadcast_k — Fig. 4 of
//! the paper as a terminal animation.
//!
//! ```sh
//! cargo run --release --example broadcast_trace              # Fig. 4 setup
//! cargo run --release --example broadcast_trace -- 7 "2,4" 0 # k=3 instance
//! ```
//! (arguments: n, comma-separated inner dims, source)

use sparse_hypercube::core::DimPartition;
use sparse_hypercube::labeling::constructions::paper_example1_q2;
use sparse_hypercube::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (g, source, k) = if args.is_empty() {
        // The paper's exact Example 2/4 instance.
        let g = SparseHypercube::construct_base_with(
            4,
            2,
            paper_example1_q2(),
            Some(DimPartition::from_subsets(2, 4, &[vec![3], vec![4]])),
        );
        (g, 0u64, 2usize)
    } else {
        let n: u32 = args[0].parse().expect("n");
        let inner: Vec<u32> = args
            .get(1)
            .map(|s| s.split(',').map(|t| t.parse().expect("dim")).collect())
            .unwrap_or_else(|| vec![2]);
        let source: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
        let mut dims = inner;
        dims.push(n);
        let k = dims.len();
        (SparseHypercube::construct(&dims), source, k)
    };

    let n = g.n();
    assert!(n <= 16, "trace output is for small instances (n <= 16)");
    let width = n as usize;
    println!(
        "Broadcast_{k} on params {:?} (Δ = {}), source {source:0width$b}\n",
        g.params(),
        g.max_degree(),
    );

    let schedule = broadcast_scheme(&g, source);
    let mut informed: std::collections::BTreeSet<u64> = [source].into();
    for (t, round) in schedule.rounds.iter().enumerate() {
        println!("time unit {} ({} calls):", t + 1, round.calls.len());
        for call in &round.calls {
            let path: Vec<String> = call.path.iter().map(|v| format!("{v:0width$b}")).collect();
            let kind = if call.len() == 1 { "direct" } else { "relayed" };
            println!("  {} [{kind}, length {}]", path.join(" → "), call.len());
            informed.insert(call.receiver());
        }
        println!("  informed: {}/{}\n", informed.len(), g.num_vertices());
    }

    let report = verify_minimum_time(&g, &schedule, k).expect("scheme is minimum-time");
    println!(
        "verified: {} rounds (= log2 N), longest call {} <= k = {k}, {} calls total",
        report.rounds, report.max_call_len, report.total_calls
    );
}
