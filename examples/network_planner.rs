//! Network planner — the paper's engineering motivation, §1–§2: ports per
//! router ("fabrication and maintenance costs") trade against the maximum
//! call length `k` the switching fabric must support.
//!
//! Given a vertex budget `2^n` and a per-vertex port budget Δ, find the
//! smallest `k` whose sparse hypercube fits, and print the full design
//! space.
//!
//! ```sh
//! cargo run --release --example network_planner -- 24 8
//! ```
//! (arguments: n, degree budget; defaults 20 and 10)

use sparse_hypercube::core::params::optimized_params;
use sparse_hypercube::core::{bounds, SparseHypercube};
use sparse_hypercube::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(20);
    let budget: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    assert!((3..=60).contains(&n), "need 3 <= n <= 60");

    println!("design space for N = 2^{n} vertices (degree budget {budget}):\n");
    println!(
        "{:>3} {:>24} {:>6} {:>12} {:>12} {:>14}",
        "k", "parameters", "Δ", "paper bound", "lower bound", "edges"
    );

    let mut chosen: Option<(u32, Vec<u32>)> = None;
    for k in 2..=n.min(8) {
        if n <= k {
            break;
        }
        let choice = optimized_params(k, n);
        let g = SparseHypercube::construct(&choice.dims);
        let upper = if k == 2 {
            bounds::thm5_upper_bound(n)
        } else {
            bounds::thm7_upper_bound(k, n)
        };
        let lower = bounds::lower_bound(k, n);
        println!(
            "{:>3} {:>24} {:>6} {:>12} {:>12} {:>14}",
            k,
            format!("{:?}", choice.dims),
            choice.max_degree,
            upper,
            lower,
            g.num_edges()
        );
        if chosen.is_none() && choice.max_degree <= budget {
            chosen = Some((k, choice.dims.clone()));
        }
    }

    println!(
        "\nhypercube baseline: Δ = {n}, edges = {}",
        u64::from(n) << (n - 1)
    );
    match chosen {
        Some((k, dims)) => {
            let g = SparseHypercube::construct(&dims);
            println!(
                "\n=> smallest k meeting the budget: k = {k} with parameters {dims:?} \
                 (Δ = {}, {:.1}% of hypercube edges)",
                g.max_degree(),
                100.0 * g.num_edges() as f64 / ((u64::from(n) << (n - 1)) as f64),
            );
            if n <= 16 {
                // Demonstrate the design actually broadcasts in minimum time.
                let schedule = broadcast_scheme(&g, 0);
                let report = verify_minimum_time(&g, &schedule, k as usize).expect("scheme valid");
                println!(
                    "   verified: broadcast in {} rounds (minimum), longest call {}",
                    report.rounds, report.max_call_len
                );
            }
        }
        None => println!(
            "\n=> no k <= 8 meets a degree budget of {budget}; \
             the Theorem-1 tree needs k >= {} but only 3 ports",
            bounds::thm1_min_k(1u64 << n)
        ),
    }
}
