//! Flow service tour: run the same long-lived session workload on the
//! paper's sparse hypercube under all three admission policies and
//! compare what each one trades — loss rate, queueing delay, and route
//! stretch — window by window. A fourth cell replays the loss system
//! under link churn with reroute failover and QoS preemption, showing
//! the fault counters next to the clean-run numbers.
//!
//! ```sh
//! cargo run --release --example serve -- 8 3
//! ```
//! (arguments: n, m; defaults 8, 3)

use sparse_hypercube::prelude::*;
use sparse_hypercube::runtime::service::{
    ArrivalSpec, ChurnSpec, FailoverPolicy, HoldingSpec, PopularitySpec, QosSpec,
};

fn show(report: &ServiceReport) {
    let counter = |name: &str| {
        report
            .totals
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let arrivals = counter("flow_arrivals_total");
    let rejected = counter("flow_rejected_total");
    let loss = if arrivals == 0 {
        0.0
    } else {
        rejected as f64 / arrivals as f64
    };
    println!(
        "\n[{}] {} on {} ({} vertices, seed {:#x})",
        report.service, report.policy, report.topology, report.num_vertices, report.seed
    );
    println!(
        "  arrivals {}   admitted {}   rejected {} ({:.1}% loss)   detoured {}   timeouts {}",
        arrivals,
        counter("flow_admitted_total"),
        rejected,
        100.0 * loss,
        counter("flow_admitted_detour_total"),
        counter("flow_timeout_total"),
    );
    if counter("link_fail_total") > 0 || counter("flow_preempted_total") > 0 {
        println!(
            "  churn: {} link failures / {} repairs   torn down {}   rerouted {}   preempted {}",
            counter("link_fail_total"),
            counter("link_repair_total"),
            counter("flow_torn_down_total"),
            counter("flow_rerouted_total"),
            counter("flow_preempted_total"),
        );
    }
    println!("  window     admit  reject  p50/p99 hops  p50/p99 wait  mean occupancy");
    for w in &report.windows {
        println!(
            "  [{:>3}..{:>3})  {:>5}  {:>6}  {:>4} / {:<4}   {:>4} / {:<4}   {:>8.1}",
            w.start_round,
            w.end_round,
            w.admitted,
            w.rejected,
            w.latency_hops.p50,
            w.latency_hops.p99,
            w.queue_wait_rounds.p50,
            w.queue_wait_rounds.p99,
            w.occupancy_flows.mean,
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let m: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("flow service on G_{{{n},{m}}}: one workload, three admission policies");

    // One sustained workload: open-loop Poisson arrivals with a diurnal
    // tide, geometric holding, Zipf-skewed destinations (vertex 0 runs
    // hot). Only the admission policy differs between runs, so the
    // report deltas are the policy's doing.
    let base = |name: &str, policy: AdmissionPolicy| {
        ServiceSpec::new(name, TopologySpec::SparseBase { n, m })
            .arrivals(ArrivalSpec::poisson(12.0).with_diurnal(
                sparse_hypercube::runtime::service::DiurnalCurve {
                    amplitude: 0.6,
                    period_rounds: 120,
                },
            ))
            .holding(HoldingSpec::Geometric { mean_rounds: 10.0 })
            .popularity(PopularitySpec::Zipf { exponent: 1.1 })
            .policy(policy)
            .rounds(240)
            .window_rounds(60)
            .seed(0x5E12)
    };
    let specs = vec![
        base("loss-system", AdmissionPolicy::Reject),
        base(
            "queued",
            AdmissionPolicy::QueueWithTimeout {
                max_wait_rounds: 6,
                capacity: 128,
            },
        ),
        base(
            "degraded",
            AdmissionPolicy::DegradeToDetour { extra_hops: 3 },
        ),
        // The loss system again, but links fail under held flows (mean
        // repair 15 rounds, reroute failover) and a quarter of arrivals
        // are priority-tier, allowed to evict two best-effort flows.
        // The fault stream rides its own RNG, so these arrivals are the
        // same ones the clean cells saw.
        base("churned", AdmissionPolicy::Reject)
            .churn(ChurnSpec {
                fail_rate_per_round: 0.8,
                mttr_mean_rounds: 15.0,
                on_fail: FailoverPolicy::Reroute,
            })
            .qos(QosSpec {
                priority_share: 0.25,
                max_preemptions: 2,
            }),
    ];

    // Cells fan out across cores; reports come back in cell order and
    // are byte-identical for any worker count.
    let reports = sparse_hypercube::runtime::map_cells(&specs, 0, run_service);
    for report in &reports {
        show(report);
    }

    println!(
        "\nEvery metric name above is documented in docs/SERVICE.md; the same\n\
         sweep at catalog scale: cargo run --release -p shc-bench --bin exp_serve"
    );
}
