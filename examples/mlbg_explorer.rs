//! k-mlbg class explorer: uses the exact solver to certify membership of
//! small classical graphs in the paper's classes G_1 ⊆ G_2 ⊆ … — the
//! nesting of Property 2 made visible.
//!
//! ```sh
//! cargo run --release --example mlbg_explorer
//! ```

use sparse_hypercube::graph::builders;
use sparse_hypercube::graph::AdjGraph;
use sparse_hypercube::prelude::*;

fn membership_row(name: &str, g: &AdjGraph, max_k: usize) -> (String, Vec<String>) {
    let mut cells = Vec::new();
    for k in 1..=max_k {
        // Membership requires minimum-time broadcast from EVERY source.
        let mut all = true;
        let mut unknown = false;
        for source in 0..g.num_vertices() as u32 {
            match solve_min_time(g, source, k, 3_000_000) {
                SolveOutcome::Found(_) => {}
                SolveOutcome::Infeasible => {
                    all = false;
                    break;
                }
                SolveOutcome::BudgetExceeded => {
                    unknown = true;
                    break;
                }
            }
        }
        cells.push(if unknown {
            "?".to_string()
        } else if all {
            "yes".to_string()
        } else {
            "no".to_string()
        });
    }
    (name.to_string(), cells)
}

fn main() {
    let max_k = 4usize;
    let candidates: Vec<(&str, AdjGraph)> = vec![
        ("Q3 (8 vertices)", builders::hypercube(3)),
        ("cycle C8", builders::cycle(8)),
        ("path P8", builders::path(8)),
        ("star K(1,7)", builders::star(8)),
        ("thm1 tree h=1 (4)", builders::theorem1_tree(1)),
        ("thm1 tree h=2 (10)", builders::theorem1_tree(2)),
        ("grid 2x4", builders::grid(2, 4)),
        ("complete K8", builders::complete(8)),
    ];

    println!("exact k-mlbg membership (minimum-time broadcast from every source)\n");
    print!("{:<20}", "graph");
    for k in 1..=max_k {
        print!(" {:>5}", format!("G_{k}"));
    }
    println!();

    for (name, g) in &candidates {
        let (label, cells) = membership_row(name, g, max_k);
        print!("{label:<20}");
        for c in &cells {
            print!(" {c:>5}");
        }
        println!();
    }

    println!(
        "\nProperty 2 (G_k ⊆ G_k+1) is visible as monotone rows; \
         the star column shows the paper's §2 observation that the \
         edge-minimal member of G_k for k >= 2 is the star; C8 enters at \
         k = 2; the Theorem-1 tree (h=2, diameter 4) enters at k = 4 = 2h."
    );
}
