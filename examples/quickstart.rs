//! Quickstart: build a sparse hypercube, inspect it, broadcast, verify.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparse_hypercube::prelude::*;

fn main() {
    // The paper's Example 3: G_{15,3} — 32768 vertices, degree 6 instead
    // of the hypercube's 15.
    let g = SparseHypercube::construct_base(15, 3);
    let stats = ShcStats::for_graph(&g);

    println!("sparse hypercube G_{{15,3}}");
    println!("  vertices          : {}", stats.num_vertices);
    println!(
        "  max degree        : {} (Q_15: {})",
        stats.max_degree, stats.hypercube_degree
    );
    println!(
        "  edges             : {} (Q_15: {})",
        stats.num_edges, stats.hypercube_edges
    );
    println!("  edges kept        : {:.1}%", 100.0 * stats.edge_ratio());
    println!("  paper upper bound : {}", stats.paper_upper_bound);
    println!("  paper lower bound : {}", stats.paper_lower_bound);

    // Who are vertex 0's neighbors? Three subcube dims + three cross dims.
    let nbrs: Vec<String> = g.neighbors(0).iter().map(|v| format!("{v:015b}")).collect();
    println!("  neighbors of 0^15 : {}", nbrs.join(", "));

    // Broadcast from an arbitrary source and machine-check Definition 1.
    let source = 0b010_1010_1010_1010;
    let schedule = broadcast_scheme(&g, source);
    let report = verify_minimum_time(&g, &schedule, 2).expect("Theorem 4 says this validates");
    println!("\nbroadcast from {source:#017b}:");
    println!(
        "  rounds            : {} (minimum = {})",
        report.rounds, report.min_rounds
    );
    println!("  calls placed      : {}", report.total_calls);
    println!(
        "  longest call      : {} edges (k = 2)",
        report.max_call_len
    );
    println!(
        "  informed/round    : {:?}",
        &report.informed_after_round[..5]
    );

    // The same schedule survives a physical circuit-switching replay.
    let sim = replay_schedule(&g, &schedule, 1);
    println!(
        "\ncircuit replay (dilation 1): {} established, {} blocked",
        sim.established, sim.blocked
    );
    assert_eq!(sim.blocked, 0, "valid schedules never block");
}
