//! Congestion study — the paper's §5 future-work discussion, measured:
//! several broadcasts sharing a sparse hypercube contend for its few
//! edges; dilated (multi-circuit) links buy the contention back.
//!
//! ```sh
//! cargo run --release --example congestion_study -- 10 3
//! ```
//! (arguments: n, m; defaults 10, 3)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_hypercube::broadcast::schemes::hypercube::hypercube_broadcast;
use sparse_hypercube::graph::builders::hypercube;
use sparse_hypercube::netsim::replay_competing;
use sparse_hypercube::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let m: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    assert!(m >= 1 && m < n && n <= 14, "need 1 <= m < n <= 14");

    let g = SparseHypercube::construct_base(n, m);
    let q = MaterializedNet::new(hypercube(n));
    let mut rng = StdRng::seed_from_u64(2026);

    println!(
        "competing broadcasts on G_{{{n},{m}}} (Δ = {}) vs Q_{n} (Δ = {n})\n",
        g.max_degree()
    );
    println!(
        "{:>10} {:>9} | {:>14} {:>10} | {:>14} {:>10}",
        "broadcasts", "dilation", "sparse blocked", "peak load", "Q_n blocked", "peak load"
    );

    for competitors in [1usize, 2, 4, 8] {
        let mut sources = std::collections::BTreeSet::from([0u64]);
        while sources.len() < competitors {
            sources.insert(rng.gen_range(0..(1u64 << n)));
        }
        let sparse: Vec<Schedule> = sources.iter().map(|&s| broadcast_scheme(&g, s)).collect();
        let cube: Vec<Schedule> = sources.iter().map(|&s| hypercube_broadcast(n, s)).collect();
        for dilation in [1u32, 2, 4] {
            let sp = replay_competing(&g, &sparse, dilation);
            let qu = replay_competing(&q, &cube, dilation);
            println!(
                "{:>10} {:>9} | {:>13.1}% {:>10} | {:>13.1}% {:>10}",
                competitors,
                dilation,
                100.0 * sp.blocking_rate(),
                sp.peak_link_load,
                100.0 * qu.blocking_rate(),
                qu.peak_link_load
            );
        }
    }

    println!(
        "\nreading: a single broadcast never blocks (the schemes are \
         edge-disjoint by Theorem 4/6); with competitors, the sparse \
         graph's missing edges turn into contention — exactly the §5 \
         trade-off — and dilation m absorbs it."
    );
}
