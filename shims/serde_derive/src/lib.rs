//! Offline stand-in for `serde_derive`.
//!
//! Registry access is unavailable, so `syn`/`quote` cannot be used; the
//! input item is parsed directly from the token stream. Supported shape:
//! non-generic structs with named fields — which covers every
//! `#[derive(Serialize, Deserialize)]` site in this workspace. Anything
//! else produces a `compile_error!` explaining the limitation.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the serde shim's `Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the serde shim's `Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &[String]) -> String) -> TokenStream {
    match parse_named_struct(input) {
        Ok((name, fields)) => gen(&name, &fields)
            .parse()
            .expect("generated impl must tokenize"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error message must tokenize"),
    }
}

fn gen_serialize(name: &str, fields: &[String]) -> String {
    let mut body = String::from("let mut entries = Vec::new();\n");
    for f in fields {
        body.push_str(&format!(
            "entries.push(({f:?}.to_string(), ::serde::to_value(&self.{f})\
             .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
               -> ::core::result::Result<S::Ok, S::Error> {{\n\
             {body}\
             serializer.serialize_value(::serde::Value::Object(entries))\n\
           }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, fields: &[String]) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&format!(
            "{f}: ::serde::de::take_field(&mut entries, {f:?})?,\n"
        ));
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
               -> ::core::result::Result<Self, D::Error> {{\n\
             let mut entries = match deserializer.into_value()? {{\n\
               ::serde::Value::Object(entries) => entries,\n\
               other => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"{name}: expected object, found {{:?}}\", other))),\n\
             }};\n\
             Ok({name} {{ {body} }})\n\
           }}\n\
         }}"
    )
}

/// Extracts `(struct_name, field_names)` from a non-generic named-field
/// struct item.
fn parse_named_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "serde shim derive supports structs only, found {other:?}"
            ))
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde shim derive does not support generic struct `{name}`"
            ))
        }
        _ => {
            return Err(format!(
                "serde shim derive supports named-field structs only (`{name}`)"
            ))
        }
    };

    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    'fields: loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                None => break 'fields,
                _ => break,
            }
        }

        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name in `{name}`, found {other:?}")),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` in `{name}`, found {other:?}")),
        }

        // Consume the type: tokens until a comma at angle-bracket depth 0.
        // Commas inside (), [], {} are invisible here (grouped tokens);
        // only `<...>` nesting needs explicit tracking.
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' => angle_depth -= 1,
                        ',' if angle_depth == 0 => {
                            toks.next();
                            continue 'fields;
                        }
                        _ => {}
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }

    Ok((name, fields))
}
