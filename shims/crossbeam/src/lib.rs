//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! Mirrors the `crossbeam::scope(|s| { s.spawn(|_| …); })` call shape. One
//! behavioral difference: if a spawned worker panics, `std::thread::scope`
//! re-raises the panic instead of returning `Err`, so the customary
//! `.expect("worker panicked")` on the result still reports the failure —
//! just as a propagated panic rather than a formatted `Err`.

#![forbid(unsafe_code)]

use std::any::Any;

/// Scope handle passed to the closure of [`scope`], mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives the scope itself
    /// (crossbeam's signature) so workers may spawn sub-workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a [`Scope`]; all spawned workers are joined before this
/// returns. Mirrors `crossbeam::scope`.
///
/// # Errors
/// The `Ok`-always result mirrors crossbeam's signature; worker panics
/// propagate as panics (see module docs).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Alias module so `crossbeam::thread::scope` also resolves.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_sum() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::scope(|s| {
            for &x in &data {
                let total = &total;
                s.spawn(move |_| {
                    *total.lock().unwrap() += x;
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_compiles() {
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| 1 + 1);
            });
        })
        .expect("worker panicked");
    }
}
