//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! Mirrors the `crossbeam::scope(|s| { s.spawn(|_| …); })` call shape. One
//! behavioral difference: if a spawned worker panics, `std::thread::scope`
//! re-raises the panic instead of returning `Err`, so the customary
//! `.expect("worker panicked")` on the result still reports the failure —
//! just as a propagated panic rather than a formatted `Err`.

#![forbid(unsafe_code)]

use std::any::Any;

/// Scope handle passed to the closure of [`scope`], mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives the scope itself
    /// (crossbeam's signature) so workers may spawn sub-workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a [`Scope`]; all spawned workers are joined before this
/// returns. Mirrors `crossbeam::scope`.
///
/// # Errors
/// The `Ok`-always result mirrors crossbeam's signature; worker panics
/// propagate as panics (see module docs).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Alias module so `crossbeam::thread::scope` also resolves.
pub mod thread {
    pub use super::{scope, Scope};
}

pub mod deque {
    //! Offline stand-in for `crossbeam-deque`: the [`Injector`] /
    //! [`Worker`] / [`Stealer`] / [`Steal`] surface used by the
    //! work-stealing executor in `shc-runtime`.
    //!
    //! The real crate is lock-free; this shim keeps the exact call shape
    //! (FIFO worker queues, `steal`, `steal_batch_and_pop`) over mutexed
    //! `VecDeque`s — correct under contention, merely slower, which is
    //! fine for the workloads in this workspace. `Steal::Retry` is never
    //! produced (a mutex never observes a torn race), but callers must
    //! still handle it to stay source-compatible with the real crate.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some` on success, `None` otherwise.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    fn lock<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(|e| panic!("deque poisoned: {e}"))
    }

    /// Global FIFO task pool, mirroring `crossbeam_deque::Injector`.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        #[must_use]
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task into the global pool.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// `true` when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Steals one task from the pool.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `worker`'s local queue and pops
        /// one of them.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut global = lock(&self.queue);
            let first = match global.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Move up to half of the remainder over, like the real crate.
            let batch = global.len().div_ceil(2).min(16);
            let mut local = lock(&worker.queue);
            for _ in 0..batch {
                match global.pop_front() {
                    Some(t) => local.push_back(t),
                    None => break,
                }
            }
            Steal::Success(first)
        }
    }

    /// A worker's local FIFO queue, mirroring
    /// `crossbeam_deque::Worker::new_fifo`.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        #[must_use]
        pub fn new_fifo() -> Self {
            Self {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops the next local task.
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_front()
        }

        /// `true` when the local queue is empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Creates a [`Stealer`] handle other workers can steal through.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing from another worker's queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's queue (its oldest task,
        /// matching FIFO steal order).
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_sum() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::scope(|s| {
            for &x in &data {
                let total = &total;
                s.spawn(move |_| {
                    *total.lock().unwrap() += x;
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_compiles() {
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| 1 + 1);
            });
        })
        .expect("worker panicked");
    }

    #[test]
    fn injector_steal_order_is_fifo() {
        use super::deque::{Injector, Steal};
        let inj: Injector<u32> = Injector::new();
        assert!(inj.is_empty());
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn steal_batch_moves_work_to_local_queue() {
        use super::deque::{Injector, Steal, Worker};
        let inj: Injector<u32> = Injector::new();
        for t in 0..10 {
            inj.push(t);
        }
        let w: Worker<u32> = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty(), "batch landed locally");
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn stealer_drains_victim() {
        use super::deque::{Steal, Worker};
        let w: Worker<u32> = Worker::new_fifo();
        w.push(7);
        w.push(8);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(7));
        assert_eq!(w.pop(), Some(8));
        assert_eq!(s.clone().steal(), Steal::Empty);
    }

    #[test]
    fn work_stealing_across_threads_completes_all_tasks() {
        use super::deque::{Injector, Steal, Worker};
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inj: Injector<usize> = Injector::new();
        for t in 0..200 {
            inj.push(t);
        }
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let local: Worker<usize> = Worker::new_fifo();
                    loop {
                        let task = local.pop().or_else(|| loop {
                            match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => break Some(t),
                                Steal::Empty => break None,
                                Steal::Retry => {}
                            }
                        });
                        match task {
                            Some(_) => {
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }
}
