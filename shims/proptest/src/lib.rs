//! Offline stand-in for `proptest`.
//!
//! Implements the workspace's property-testing surface — the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, range and tuple strategies, [`strategy::Just`],
//! `collection::{vec, btree_set}`, implicit `arg: Type` arbitrary
//! parameters, `#![proptest_config]`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros — over a deterministic seeded
//! RNG. **No shrinking**: a failing case reports its case index and seed
//! instead of a minimized input. Case count defaults to 64 and can be
//! overridden per run with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod arbitrary {
    //! Implicit strategies for `arg: Type` parameters of `proptest!`.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy, mirroring
    /// `proptest::arbitrary::Arbitrary` for the shim's needs.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// How many times a filtering strategy retries before giving up.
    const FILTER_RETRIES: usize = 4096;

    /// Value-generation strategy, mirroring `proptest::strategy::Strategy`
    /// (no shrinking: `generate` replaces the `ValueTree` machinery).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a value-dependent second strategy.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values where `f` returns `true`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                reason: reason.into(),
            }
        }

        /// Keeps and transforms values where `f` returns `Some`.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                reason: reason.into(),
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: String,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: String,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn ErasedStrategy<Value = T>>,
    }

    trait ErasedStrategy {
        type Value;
        fn erased_generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy> ErasedStrategy for S {
        type Value = S::Value;

        fn erased_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.erased_generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Element-count specification accepted by [`vec()`] and [`btree_set()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a size in `size` built from distinct
    /// elements of `element`.
    ///
    /// The element domain must be comfortably larger than the requested
    /// size; generation retries duplicates a bounded number of times.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 4096,
                    "btree_set strategy could not reach size {target}"
                );
            }
            out
        }
    }
}

pub mod test_runner {
    //! Case loop, configuration, and error plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input does not satisfy a precondition (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runs `body` until `config.cases` cases pass. Deterministic: case
    /// seeds derive from the test name, so failures reproduce exactly.
    ///
    /// # Panics
    /// Panics on the first failing case, or when rejections exceed
    /// `cases * 16`.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let name_seed: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < config.cases {
            let seed = name_seed.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.cases.saturating_mul(16),
                        "{name}: too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {case} (seed {seed:#x}): {msg}");
                }
            }
            case += 1;
        }
    }
}

pub mod prelude {
    //! Mirrors `proptest::prelude`: the glob-import surface.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Mirrors `proptest!`: a block of property test functions with optional
/// `#![proptest_config(…)]`, strategy parameters (`pat in strategy`), and
/// implicit arbitrary parameters (`name: Type`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $crate::__proptest_bind!{ __rng, $($args)* }
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
    ($rng:ident, $i:ident : $t:ty) => {
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident, $i:ident : $t:ty, $($rest:tt)*) => {
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
}

/// Mirrors `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), left, right
        );
    }};
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Mirrors `prop_assume!`: rejects the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=10).prop_flat_map(|n| (Just(n), 0u32..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn flat_map_dependency_holds((n, m) in arb_pair()) {
            prop_assert!(m < n, "m={m} n={n}");
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u64..100, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_set_exact_size(s in crate::collection::btree_set(0u32..1000, 3usize)) {
            prop_assert_eq!(s.len(), 3);
        }

        #[test]
        fn implicit_arbitrary_args(seed: u64, flag: bool) {
            // Both implicit args bind; use them so the test is not vacuous.
            let _ = seed.wrapping_add(u64::from(flag));
            prop_assume!(seed != 1); // exercise rejection plumbing
            prop_assert!(seed != 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
