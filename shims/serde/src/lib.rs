//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the `serde` API shape the workspace relies on — the
//! [`Serialize`] / [`Deserialize`] traits (manual impls and derives), the
//! [`Serializer`] / [`Deserializer`] trait pair with their `Ok`/`Error`
//! associated types, and `serde::{ser,de}::Error` — implemented over a
//! self-describing [`Value`] tree instead of serde's visitor machinery.
//! `serde_json` (also shimmed) renders and parses that tree.
//!
//! Limitations vs real serde: data must fit the [`Value`] model (no
//! zero-copy, no streaming), and the derive supports named-field structs
//! only — which covers every serialized type in this workspace.

#![forbid(unsafe_code)]

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree that serialization lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer (fits `u64`).
    UInt(u64),
    /// Negative integer (fits `i64`).
    Int(i64),
    /// Finite float.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when lowering to / lifting from [`Value`] fails.
#[derive(Clone, Debug)]
pub struct ValueError(pub String);

impl Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

pub mod ser {
    //! Serialization-side error trait, mirroring `serde::ser`.

    use std::fmt::Display;

    /// Mirrors `serde::ser::Error`.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization-side error trait and helpers, mirroring `serde::de`.

    use super::{Deserialize, Value, ValueError};
    use std::fmt::Display;

    /// Mirrors `serde::de::Error`.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Removes and deserializes field `name` from a decoded object's
    /// entries. Used by derive-generated `Deserialize` impls.
    ///
    /// # Errors
    /// Fails if the field is missing or its value does not deserialize.
    pub fn take_field<T, E>(entries: &mut Vec<(String, Value)>, name: &str) -> Result<T, E>
    where
        T: for<'de> Deserialize<'de>,
        E: Error,
    {
        let idx = entries
            .iter()
            .position(|(k, _)| k == name)
            .ok_or_else(|| E::custom(format!("missing field `{name}`")))?;
        let (_, value) = entries.swap_remove(idx);
        crate::from_value(value).map_err(|e: ValueError| E::custom(format!("field `{name}`: {e}")))
    }
}

/// Mirrors `serde::Serializer`: a sink the [`Value`] tree is handed to.
pub trait Serializer: Sized {
    /// Successful output of the sink.
    type Ok;
    /// Error type of the sink.
    type Error: ser::Error;

    /// Consumes a fully built [`Value`].
    ///
    /// # Errors
    /// Propagates sink failures.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Mirrors `serde::Deserializer`: a source yielding one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type of the source.
    type Error: de::Error;

    /// Produces the decoded [`Value`].
    ///
    /// # Errors
    /// Propagates source failures (e.g. a syntax error).
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// Mirrors `serde::Serialize`.
pub trait Serialize {
    /// Lowers `self` into `serializer`.
    ///
    /// # Errors
    /// Propagates serializer failures.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Mirrors `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Lifts a value out of `deserializer`.
    ///
    /// # Errors
    /// Fails on shape or range mismatches.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// [`Serializer`] that simply yields the built [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// [`Deserializer`] reading from an in-memory [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn into_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Lowers any [`Serialize`] type to a [`Value`].
///
/// # Errors
/// Propagates serialization failures.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Lifts any [`Deserialize`] type from a [`Value`].
///
/// # Errors
/// Fails on shape or range mismatches.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // The cast widens every type in the list except u64 itself,
            // where it is trivially a no-op.
            #[allow(trivial_numeric_casts)]
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = i64::from(*self);
                let value = if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                };
                serializer.serialize_value(value)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

fn seq_to_value<'a, T, I, S>(items: I, serializer: S) -> Result<S::Ok, S::Error>
where
    T: Serialize + 'a,
    I: Iterator<Item = &'a T>,
    S: Serializer,
{
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item).map_err(<S::Error as ser::Error>::custom)?);
    }
    serializer.serialize_value(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(<S::Error as ser::Error>::custom)?,)+
                ];
                serializer.serialize_value(Value::Array(items))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (T0.0, T1.1, T2.2, T3.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

fn type_error<E: de::Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_error("bool", &other)),
        }
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::UInt(x) => <$t>::try_from(x).map_err(|_| {
                        <D::Error as de::Error>::custom(format!(
                            "integer {x} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Err(type_error("unsigned integer", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let out_of_range = |x: &dyn Display| {
                    <D::Error as de::Error>::custom(format!(
                        "integer {x} out of range for {}", stringify!($t)
                    ))
                };
                match deserializer.into_value()? {
                    Value::UInt(x) => <$t>::try_from(x).map_err(|_| out_of_range(&x)),
                    Value::Int(x) => <$t>::try_from(x).map_err(|_| out_of_range(&x)),
                    other => Err(type_error("integer", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Float(x) => Ok(x),
            Value::UInt(x) => Ok(x as f64),
            Value::Int(x) => Ok(x as f64),
            other => Err(type_error("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

fn array_items<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Vec<Value>, D::Error> {
    match deserializer.into_value()? {
        Value::Array(items) => Ok(items),
        other => Err(type_error("array", &other)),
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        array_items(deserializer)?
            .into_iter()
            .map(|v| from_value(v).map_err(<D::Error as de::Error>::custom))
            .collect()
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<[T]> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Vec::into_boxed_slice)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            v => from_value(v)
                .map(Some)
                .map_err(<D::Error as de::Error>::custom),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let items = array_items(deserializer)?;
                if items.len() != $len {
                    return Err(<D::Error as de::Error>::custom(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($(
                    from_value::<$name>(iter.next().expect("length checked"))
                        .map_err(<D::Error as de::Error>::custom)?,
                )+))
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1; A)
    (2; A, B)
    (3; A, B, C)
    (4; T0, T1, T2, T3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(from_value::<u32>(to_value(&7u32).unwrap()).unwrap(), 7);
        assert_eq!(from_value::<i64>(to_value(&-3i64).unwrap()).unwrap(), -3);
        assert_eq!(from_value::<f64>(to_value(&1.5f64).unwrap()).unwrap(), 1.5);
        assert_eq!(from_value::<String>(to_value("hi").unwrap()).unwrap(), "hi");
        assert_eq!(
            from_value::<Vec<(u32, u32)>>(to_value(&vec![(1u32, 2u32)]).unwrap()).unwrap(),
            vec![(1, 2)]
        );
    }

    #[test]
    fn range_checks_fail() {
        assert!(from_value::<u8>(Value::UInt(300)).is_err());
        assert!(from_value::<u32>(Value::Str("x".into())).is_err());
    }

    #[test]
    fn boxed_slice_round_trip() {
        let b: Box<[u64]> = vec![1, 2, 3].into_boxed_slice();
        let v = to_value(&b).unwrap();
        assert_eq!(from_value::<Box<[u64]>>(v).unwrap(), b);
    }
}
