//! Offline stand-in for `serde_json`: renders and parses the serde shim's
//! `Value` tree as standard JSON.
//!
//! Supports exactly the workspace's call surface — [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`Error`] type. The parser
//! is a strict recursive-descent JSON reader (UTF-8, `\uXXXX` escapes,
//! surrogate pairs); the printer emits minimal escapes and shortest-
//! round-trip floats via Rust's `Display`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Deserializer, Serialize, Value};
use std::fmt::Write as _;

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

struct JsonDeserializer(Value);

impl<'de> Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn into_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Fails if `value`'s `Serialize` impl fails or a float is non-finite.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
/// Fails if `value`'s `Serialize` impl fails or a float is non-finite.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
/// Fails on malformed JSON, trailing input, or a shape/range mismatch.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(JsonDeserializer(v))
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {x}")));
            }
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_bracketed(out, b"[]", items.len(), indent, depth, |out, i, d| {
                write_value(out, &items[i], indent, d)
            })?;
        }
        Value::Object(entries) => {
            write_bracketed(out, b"{}", entries.len(), indent, depth, |out, i, d| {
                let (k, val) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d)
            })?;
        }
    }
    Ok(())
}

fn write_bracketed(
    out: &mut String,
    brackets: &[u8; 2],
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(brackets[0] as char);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1)?;
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(brackets[1] as char);
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

/// Re-parses rendered JSON into a raw [`Value`] (handy for tests).
///
/// # Errors
/// Fails on malformed JSON.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v: Vec<(u32, u32)> = vec![(0, 1), (2, 3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[0,1],[2,3]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<u64> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.0f64, 2.0, 2.5, -1.25e-3, 1e18] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1F600}\u{7}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Surrogate-pair escape form parses too.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("-5").is_err());
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let x = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&x).unwrap()).unwrap(), x);
    }
}
