//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of exactly the `rand`
//! API surface the workspace uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`rngs::mock::StepRng`], and
//! [`seq::SliceRandom::shuffle`]. Distributional quality is adequate for
//! tests and experiments (xoshiro256** seeded via SplitMix64), but this is
//! **not** a cryptographic or statistically audited generator.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit word (high bits of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be uniformly sampled by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            // The cast truncates for every type in the list except u64
            // itself, where it is trivially a no-op.
            #[allow(trivial_numeric_casts)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            // Casts widen/truncate for every type in the list except the
            // u64 instantiation, where they are trivially no-ops.
            #[allow(trivial_numeric_casts)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(trivial_numeric_casts)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `0..span` (`span > 0`) via widening-multiply rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method: unbiased and branch-light.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform value of a [`Standard`]-samplable type.
    #[allow(clippy::wrong_self_convention)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng` for the seeding entry points the workspace
/// uses. Deliberately no `from_entropy`/`thread_rng`: every generator in
/// this workspace is seeded explicitly so runs stay reproducible.
pub trait SeedableRng: Sized {
    /// Raw seed material, matching `rand_core::SeedableRng::Seed`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from raw seed bytes (deterministic).
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed by expanding it into
    /// [`Seed`](Self::Seed) bytes with SplitMix64 (deterministic; same
    /// expansion as `rand_core`'s provided method).
    fn seed_from_u64(seed: u64) -> Self {
        let mut out = Self::Seed::default();
        let mut x = seed;
        for chunk in out.as_mut().chunks_mut(8) {
            // SplitMix64, as recommended by the xoshiro authors.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(out)
    }
}

pub mod rngs {
    //! Concrete generator types (`StdRng` plus the `mock` module).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro256** cycles on the all-zero state; nudge it off.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl StdRng {
        /// Forks an independent deterministic child stream (a shim
        /// extension beyond rand 0.8 — see shims/README.md): two words
        /// are drawn from `self` and re-expanded through the SplitMix64
        /// seeding path, so parent and child sequences are decorrelated
        /// and each replica of a Monte Carlo run can own its stream.
        #[must_use]
        pub fn split(&mut self) -> Self {
            use super::RngCore as _;
            let a = self.next_u64();
            let b = self.next_u64();
            Self::seed_from_u64(a ^ b.rotate_left(32))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Arithmetic-progression generator mirroring `rand::rngs::mock::StepRng`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Starts at `initial`, adding `increment` (wrapping) per draw.
            #[must_use]
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Mirrors `rand::seq::SliceRandom` for the methods the workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Partial Fisher–Yates: moves a uniform random sample of
        /// `amount` elements (shuffled) to the **front** of the slice and
        /// returns `(sample, rest)`. Real rand 0.8 accumulates the sample
        /// at the *end* instead — same distribution, different placement
        /// and stream (see shims/README.md on draw re-blessing).
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let take = amount.min(self.len());
            for i in 0..take {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(take)
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn step_rng_is_arithmetic() {
        let mut r = StepRng::new(7, 11);
        assert_eq!(
            [r.gen::<u64>(), r.gen::<u64>(), r.gen::<u64>()],
            [7, 18, 29]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn partial_shuffle_fronts_a_sample() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(8);
        let (sample, rest) = v.partial_shuffle(&mut r, 10);
        assert_eq!(sample.len(), 10);
        assert_eq!(rest.len(), 40);
        let mut all: Vec<u32> = sample.iter().chain(rest.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>(), "a permutation");
        // Oversized amounts saturate at the slice length.
        let mut w = [1u32, 2, 3];
        let (s, rest) = w.partial_shuffle(&mut r, 99);
        assert_eq!(s.len(), 3);
        assert!(rest.is_empty());
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn from_seed_matches_seed_from_u64_expansion() {
        // seed_from_u64 must stay a pure SplitMix64 expansion through
        // from_seed, so streams seeded either way agree.
        let mut via_u64 = StdRng::seed_from_u64(0xDEAD_BEEF);
        let mut seed = [0u8; 32];
        let mut x = 0xDEAD_BEEFu64;
        for chunk in seed.chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        let mut via_bytes = StdRng::from_seed(seed);
        for _ in 0..16 {
            assert_eq!(via_u64.gen::<u64>(), via_bytes.gen::<u64>());
        }
    }

    #[test]
    fn zero_seed_still_generates() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let draws: Vec<u64> = (0..8).map(|_| r.gen()).collect();
        assert!(draws.iter().any(|&x| x != 0), "all-zero state escaped");
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut child_a = a.split();
        let mut child_b = b.split();
        for _ in 0..16 {
            assert_eq!(child_a.gen::<u64>(), child_b.gen::<u64>());
        }
        // Parent and child diverge, and successive splits differ.
        let mut second = a.split();
        let (x, y, z) = (a.gen::<u64>(), child_a.gen::<u64>(), second.gen::<u64>());
        assert!(x != y && y != z && x != z, "streams must not collide");
    }
}
