//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides [`Mutex`] and [`RwLock`] with `parking_lot`'s non-poisoning
//! `lock()`/`read()`/`write()` signatures. A poisoned std lock (a holder
//! panicked) propagates the panic, matching the spirit of `parking_lot`'s
//! "no poisoning" model for our test/bench workloads.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| panic!("mutex poisoned: {e}"))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|e| panic!("mutex poisoned: {e}"))
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| panic!("mutex poisoned: {e}"))
    }
}

/// Non-poisoning reader–writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| panic!("rwlock poisoned: {e}"))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|e| panic!("rwlock poisoned: {e}"))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|e| panic!("rwlock poisoned: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
