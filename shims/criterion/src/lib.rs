//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so the bench
//! targets link against this minimal harness instead. It preserves the
//! `criterion` API shape the workspace uses — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — and reports a simple
//! mean-time-per-iteration line per benchmark. No statistics, plots, or
//! baselines; swap back to real criterion when network access exists.

#![forbid(unsafe_code)]

use std::fmt::Display;
// analyze:allow(wall_clock): criterion is a wall-clock measurement harness; it never runs in a deterministic path
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Target measurement time per benchmark (kept small: this harness exists
/// so benches compile and smoke-run, not for publication-grade numbers).
const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// Benchmark identifier mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle mirroring `criterion::Bencher`.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then geometric batch growth until the target
        // measurement budget is spent.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut batch = 1u64;
        while total < MEASURE_TARGET && iters < 1_000_000 {
            // analyze:allow(wall_clock): the measured quantity itself
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2);
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Benchmark registry mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(None, &id.into(), f);
    }
}

/// Group of benchmarks mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists to match criterion's API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    println!(
        "bench: {label:<48} {:>14} ({} iters)",
        human_ns(b.mean_ns),
        b.iters
    );
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Mirrors `criterion_group!`: bundles target functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main()` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
