//! Property-based tests for Condition-A labelings.

use proptest::prelude::*;
use shc_labeling::constructions::{best_labeling, tiling_labeling, trivial};
use shc_labeling::verify::{satisfies_condition_a, verify_condition_a};
use shc_labeling::Labeling;

proptest! {
    #[test]
    fn constructions_always_satisfy_condition_a(m in 1u32..=14) {
        prop_assert!(satisfies_condition_a(&trivial(m)));
        prop_assert!(satisfies_condition_a(&tiling_labeling(m)));
        prop_assert!(satisfies_condition_a(&best_labeling(m)));
    }

    #[test]
    fn class_sizes_sum_to_vertex_count(m in 1u32..=14) {
        let l = best_labeling(m);
        let total: usize = l.class_sizes().iter().sum();
        prop_assert_eq!(total, 1usize << m);
        prop_assert!(l.all_labels_used());
    }

    #[test]
    fn random_labelings_rarely_satisfy_condition_a(
        m in 2u32..=6,
        lambda in 2u32..=4,
        seed: u64,
    ) {
        // A random labeling is verified consistently: if the verifier says
        // yes, then every class must dominate (cross-check against the
        // dominating-set definition via shc-graph).
        use shc_graph::builders::hypercube;
        use shc_graph::domination::is_dominating_set;
        use shc_graph::BitSet;
        let size = 1usize << m;
        let mut state = seed;
        let labels: Vec<u16> = (0..size)
            .map(|_| {
                // xorshift for determinism without a rand dependency here.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % u64::from(lambda)) as u16
            })
            .collect();
        let l = Labeling::new(m, lambda, labels);
        let verdict = verify_condition_a(&l);
        let q = hypercube(m);
        let classes = l.classes();
        let all_dominate = (0..lambda as usize).all(|c| {
            let mut set = BitSet::new(size);
            for &v in &classes[c] {
                set.insert(v as usize);
            }
            !classes[c].is_empty() && is_dominating_set(&q, &set)
        });
        prop_assert_eq!(verdict.is_ok(), all_dominate,
            "verifier must agree with the dominating-set definition");
    }

    #[test]
    fn violations_carry_true_witnesses(m in 2u32..=5) {
        // Corrupt the best labeling by overwriting one class entirely; the
        // violation witness must indeed miss the reported label.
        let good = best_labeling(m);
        if good.num_labels() < 2 {
            return Ok(());
        }
        let labels: Vec<u16> = good
            .as_slice()
            .iter()
            .map(|&l| if l == 0 { 1 } else { l })
            .collect();
        let bad = Labeling::new(m, good.num_labels(), labels);
        let err = verify_condition_a(&bad).expect_err("class 0 vanished");
        prop_assert_eq!(err.missing_label, 0);
        // The witness's closed neighborhood truly misses label 0.
        let u = err.vertex;
        let mut seen = vec![bad.label_of(u)];
        for i in 0..m {
            seen.push(bad.label_of(u ^ (1u64 << i)));
        }
        prop_assert!(!seen.contains(&0));
    }

    #[test]
    fn label_of_reads_only_low_bits(m in 1u32..=10, extra_bits: u64) {
        // Labelings are functions of exactly m bits: embedding the vertex
        // into a larger word must not change anything when masked.
        let l = best_labeling(m);
        let mask = (1u64 << m) - 1;
        let v = extra_bits & mask;
        prop_assert_eq!(l.label_of(v), l.label_of(v & mask));
    }
}
