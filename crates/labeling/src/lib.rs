//! # shc-labeling — Condition-A labelings of binary cubes
//!
//! The heart of Fujita & Farley's construction is a labeling
//! `f : V(Q_m) → C` satisfying **Condition A** (paper eq. (3)): every closed
//! neighborhood contains every label, i.e. every label class is a dominating
//! set of `Q_m`. The more labels (`λ_m` at best), the more cross dimensions
//! each subcube can serve, and the lower the sparse hypercube's degree.
//!
//! * [`labeling`] — the [`Labeling`] type.
//! * [`verify`] — machine check of Condition A, with witnesses.
//! * [`constructions`] — trivial / Hamming / Lemma-2 tiling labelings.
//! * [`search`] — exact `λ_m` for small `m` by domatic backtracking.
//!
//! ## Example
//!
//! Build the best constructive labeling of `Q_3` and machine-check
//! Condition A (every closed neighborhood sees every label):
//!
//! ```
//! use shc_labeling::{best_labeling, constructed_lambda, satisfies_condition_a};
//!
//! let lab = best_labeling(3);
//! assert_eq!(lab.num_vertices(), 8);
//! assert_eq!(lab.num_labels(), constructed_lambda(3));
//! assert!(satisfies_condition_a(&lab));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod constructions;
pub mod labeling;
pub mod search;
pub mod verify;

pub use constructions::{best_labeling, constructed_lambda};
pub use labeling::Labeling;
pub use verify::{satisfies_condition_a, verify_condition_a, ConditionAViolation};
