//! Constructive Condition-A labelings, following Lemma 2 of the paper.
//!
//! * `m = 2^p − 1`: the Hamming syndrome labeling achieves the maximum
//!   `λ = m + 1` labels (each closed neighborhood sees every syndrome
//!   exactly once because the parity-check columns enumerate all nonzero
//!   `p`-bit vectors).
//! * general `m`: tile `Q_m` by subcubes `Q_{m'}` where `m' + 1` is the
//!   largest power of two with `m' <= m`, and label by the subcube syndrome
//!   — Lemma 2's proof, made executable. Yields `λ = m' + 1 >= (m+1)/2`.

use crate::labeling::Labeling;
use shc_coding::HammingCode;

/// The trivial labeling: one label for everything. Always satisfies
/// Condition A (the whole vertex set dominates).
#[must_use]
pub fn trivial(m: u32) -> Labeling {
    Labeling::from_fn(m, 1, |_| 0)
}

/// Hamming syndrome labeling of `Q_m` for `m = 2^p − 1`, with `λ = m + 1`
/// labels: `f(u) = syndrome(u)`.
///
/// `m = 1` is the degenerate case `p = 1` (code `{0}`, cosets `{0}`,`{1}`),
/// handled directly.
///
/// # Panics
/// Panics unless `m + 1` is a power of two with `1 <= m <= 24`.
#[must_use]
pub fn hamming_labeling(m: u32) -> Labeling {
    assert!(
        (m + 1).is_power_of_two() && (1..=24).contains(&m),
        "hamming_labeling needs m = 2^p - 1, got {m}"
    );
    if m == 1 {
        return Labeling::new(1, 2, vec![0, 1]);
    }
    let code = HammingCode::new((m + 1).trailing_zeros());
    debug_assert_eq!(code.block_len(), m);
    Labeling::from_fn(m, m + 1, |u| code.syndrome(u) as u16)
}

/// Lemma-2 tiling labeling for arbitrary `m >= 1`: label by the syndrome of
/// the low `m'` coordinates, where `m'` is the largest `2^p − 1 <= m`.
/// Flipping any of the low `m'` bits changes the syndrome to any other
/// value, so Condition A holds inside each tile; flips of high bits keep the
/// label and are simply redundant coverage.
#[must_use]
pub fn tiling_labeling(m: u32) -> Labeling {
    assert!(
        (1..=24).contains(&m),
        "tiling_labeling supports 1 <= m <= 24"
    );
    let m_prime = largest_hamming_length(m);
    if m_prime == 1 {
        return Labeling::from_fn(m, 2, |u| (u & 1) as u16);
    }
    let code = HammingCode::new((m_prime + 1).trailing_zeros());
    let mask = (1u64 << m_prime) - 1;
    Labeling::from_fn(m, m_prime + 1, move |u| code.syndrome(u & mask) as u16)
}

/// The best constructive labeling this crate offers: Hamming when `m + 1`
/// is a power of two, the Lemma-2 tiling otherwise.
#[must_use]
pub fn best_labeling(m: u32) -> Labeling {
    if (m + 1).is_power_of_two() {
        hamming_labeling(m)
    } else {
        tiling_labeling(m)
    }
}

/// `λ(m)` achieved by [`best_labeling`]: `m + 1` when `m + 1` is a power of
/// two, otherwise `2^floor(log2(m+1))`.
#[must_use]
pub fn constructed_lambda(m: u32) -> u32 {
    assert!(m >= 1);
    if (m + 1).is_power_of_two() {
        m + 1
    } else {
        largest_hamming_length(m) + 1
    }
}

/// Largest `m' = 2^p − 1 <= m` (so `m' + 1` is the largest power of two
/// `<= m + 1`).
fn largest_hamming_length(m: u32) -> u32 {
    let p = 32 - (m + 1).leading_zeros() - 1; // floor(log2(m+1))
    (1 << p) - 1
}

/// The paper's Example 1 labeling of `Q_2`:
/// `f(00) = f(11) = c_1`, `f(01) = f(10) = c_2` (0-indexed here).
#[must_use]
pub fn paper_example1_q2() -> Labeling {
    Labeling::new(2, 2, vec![0, 1, 1, 0])
}

/// The paper's Example 1 labeling of `Q_3` (antipodal pairs):
/// `f(000)=f(111)=c_1`, `f(001)=f(110)=c_2`, `f(010)=f(101)=c_3`,
/// `f(011)=f(100)=c_4` (0-indexed here).
#[must_use]
pub fn paper_example1_q3() -> Labeling {
    Labeling::new(3, 4, vec![0, 1, 2, 3, 3, 2, 1, 0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_perfect_labeling, satisfies_condition_a, verify_condition_a};

    #[test]
    fn trivial_always_valid() {
        for m in 1..=8 {
            assert!(satisfies_condition_a(&trivial(m)), "m={m}");
        }
    }

    #[test]
    fn hamming_labelings_valid_and_perfect() {
        for m in [1u32, 3, 7, 15] {
            let l = hamming_labeling(m);
            assert_eq!(l.num_labels(), m + 1, "λ = m+1 at m={m}");
            assert!(verify_condition_a(&l).is_ok(), "m={m}");
            assert!(is_perfect_labeling(&l), "m={m} perfect");
            // Classes are balanced: each coset has 2^m / (m+1) vertices.
            let sizes = l.class_sizes();
            assert!(sizes.iter().all(|&s| s == (1usize << m) / (m as usize + 1)));
        }
    }

    #[test]
    fn tiling_labelings_valid() {
        for m in 1..=12u32 {
            let l = tiling_labeling(m);
            assert!(verify_condition_a(&l).is_ok(), "m={m}");
            assert!(l.all_labels_used(), "m={m}");
        }
    }

    #[test]
    fn best_labeling_achieves_lemma2_lower_bound() {
        // Lemma 2: λ_m >= ceil(m/2) + 1 ... our construction gives
        // λ >= (m+1)/2 rounded up to a power of two, which implies it.
        for m in 1..=16u32 {
            let l = best_labeling(m);
            assert_eq!(l.num_labels(), constructed_lambda(m), "m={m}");
            assert!(
                2 * l.num_labels() > m,
                "m={m}: λ={} must satisfy 2λ >= m+1",
                l.num_labels()
            );
            assert!(l.num_labels() <= m + 1, "upper bound λ <= m+1");
            assert!(satisfies_condition_a(&l), "m={m}");
        }
    }

    #[test]
    fn constructed_lambda_values() {
        // Spot values: λ_1=2, λ_2=2, λ_3=4, λ_4..6=4, λ_7=8, λ_8..14=8, λ_15=16.
        let expect = [
            (1, 2),
            (2, 2),
            (3, 4),
            (4, 4),
            (5, 4),
            (6, 4),
            (7, 8),
            (8, 8),
            (14, 8),
            (15, 16),
            (16, 16),
        ];
        for (m, lam) in expect {
            assert_eq!(constructed_lambda(m), lam, "m={m}");
        }
    }

    #[test]
    fn paper_examples_match_constructions_in_lambda() {
        let q2 = paper_example1_q2();
        assert!(satisfies_condition_a(&q2));
        assert_eq!(q2.num_labels(), constructed_lambda(2));

        let q3 = paper_example1_q3();
        assert!(satisfies_condition_a(&q3));
        assert_eq!(q3.num_labels(), constructed_lambda(3));
    }

    #[test]
    fn paper_q3_classes_are_antipodal_pairs() {
        let q3 = paper_example1_q3();
        for class in q3.classes() {
            assert_eq!(class.len(), 2);
            assert_eq!(class[0] ^ class[1], 0b111, "antipodal in Q3");
        }
    }

    #[test]
    #[should_panic(expected = "m = 2^p - 1")]
    fn hamming_labeling_rejects_bad_m() {
        let _ = hamming_labeling(4);
    }
}
