//! Machine verification of Condition A (paper eq. (3)):
//!
//! ```text
//! ∀u ∈ V(Q_m):  {f(u)} ∪ {f(v) | {u,v} ∈ E(Q_m)}  =  C
//! ```
//!
//! i.e. every closed neighborhood contains every label; equivalently each
//! label class is a dominating set of `Q_m`.

use crate::labeling::Labeling;

/// A witness that Condition A fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionAViolation {
    /// Vertex whose closed neighborhood misses a label.
    pub vertex: u64,
    /// The missing label.
    pub missing_label: u16,
}

impl std::fmt::Display for ConditionAViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Condition A violated: closed neighborhood of vertex {:#b} misses label c{}",
            self.vertex, self.missing_label
        )
    }
}

impl std::error::Error for ConditionAViolation {}

/// Checks Condition A, returning the first violation found (scanning
/// vertices in increasing order, labels in increasing order).
///
/// # Errors
/// Returns a [`ConditionAViolation`] naming the offending vertex and label.
pub fn verify_condition_a(l: &Labeling) -> Result<(), ConditionAViolation> {
    let m = l.m();
    let lambda = l.num_labels();
    assert!(lambda <= 64, "verifier uses a 64-bit label mask");
    let full: u64 = if lambda == 64 {
        u64::MAX
    } else {
        (1u64 << lambda) - 1
    };
    for u in 0..(1u64 << m) {
        let mut seen = 1u64 << l.label_of(u);
        for i in 0..m {
            seen |= 1u64 << l.label_of(u ^ (1u64 << i));
        }
        if seen != full {
            let missing = (!seen & full).trailing_zeros() as u16;
            return Err(ConditionAViolation {
                vertex: u,
                missing_label: missing,
            });
        }
    }
    Ok(())
}

/// `true` iff the labeling satisfies Condition A.
#[must_use]
pub fn satisfies_condition_a(l: &Labeling) -> bool {
    verify_condition_a(l).is_ok()
}

/// Checks the *perfect* variant: every closed neighborhood contains every
/// label **exactly once**. Possible only when `λ = m + 1`; the paper's
/// Hamming-based labelings have this property.
#[must_use]
pub fn is_perfect_labeling(l: &Labeling) -> bool {
    let m = l.m();
    if l.num_labels() != m + 1 {
        return false;
    }
    for u in 0..(1u64 << m) {
        let mut counts = vec![0u8; l.num_labels() as usize];
        counts[l.label_of(u) as usize] += 1;
        for i in 0..m {
            counts[l.label_of(u ^ (1u64 << i)) as usize] += 1;
        }
        if counts.iter().any(|&c| c != 1) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;

    /// The paper's Example 1 labeling of Q2: f(00)=f(11)=c1, f(01)=f(10)=c2.
    fn example1_q2() -> Labeling {
        Labeling::new(2, 2, vec![0, 1, 1, 0])
    }

    /// The paper's Example 1 labeling of Q3 (antipodal pairs).
    fn example1_q3() -> Labeling {
        // f(000)=f(111)=c1, f(001)=f(110)=c2, f(010)=f(101)=c3, f(011)=f(100)=c4.
        // Vertex order 000,001,010,011,100,101,110,111.
        Labeling::new(3, 4, vec![0, 1, 2, 3, 3, 2, 1, 0])
    }

    #[test]
    fn paper_example1_q2_satisfies_condition_a() {
        assert!(verify_condition_a(&example1_q2()).is_ok());
    }

    #[test]
    fn paper_example1_q3_satisfies_condition_a() {
        assert!(verify_condition_a(&example1_q3()).is_ok());
        assert!(
            is_perfect_labeling(&example1_q3()),
            "λ = m+1 = 4 is perfect"
        );
    }

    #[test]
    fn trivial_labeling_satisfies_condition_a() {
        let l = Labeling::from_fn(4, 1, |_| 0);
        assert!(verify_condition_a(&l).is_ok());
    }

    #[test]
    fn violation_reported_with_witness() {
        // All of Q2 labeled 0 except one vertex labeled 1: class 1 = {11}
        // does not dominate vertex 00.
        let l = Labeling::new(2, 2, vec![0, 0, 0, 1]);
        let err = verify_condition_a(&l).unwrap_err();
        assert_eq!(err.vertex, 0b00);
        assert_eq!(err.missing_label, 1);
        assert!(err.to_string().contains("misses label c1"));
        assert!(!satisfies_condition_a(&l));
    }

    #[test]
    fn too_many_labels_fails() {
        // 3 labels on Q2 cannot satisfy Condition A (λ_2 = 2).
        let l = Labeling::new(2, 3, vec![0, 1, 2, 0]);
        assert!(verify_condition_a(&l).is_err());
    }

    #[test]
    fn perfect_labeling_rejects_wrong_lambda() {
        assert!(!is_perfect_labeling(&example1_q2()), "λ=2 < m+1=3");
    }

    #[test]
    fn imperfect_but_valid_labeling() {
        // Q1 with both vertices distinct labels: perfect (λ = 2 = m+1).
        let l = Labeling::new(1, 2, vec![0, 1]);
        assert!(satisfies_condition_a(&l));
        assert!(is_perfect_labeling(&l));
    }
}
