//! The [`Labeling`] type: an assignment of labels `c_0..c_{λ-1}` to the
//! vertices of the binary cube `Q_m`, the paper's central combinatorial
//! object (§3, eq. (3)).

use serde::{Deserialize, Serialize};

/// A labeling `f : V(Q_m) → {0, …, λ−1}` of the `m`-cube's vertices.
///
/// Vertices are the integers `0..2^m` read as bit strings
/// `u_m u_{m-1} … u_1` (bit `i-1` of the integer is coordinate `u_i`,
/// matching the paper's "dimension 1 = least significant bit").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labeling {
    m: u32,
    num_labels: u32,
    labels: Vec<u16>,
}

impl Labeling {
    /// Wraps a raw label vector. `labels.len()` must be `2^m` and every
    /// entry must lie below `num_labels`.
    ///
    /// # Panics
    /// Panics if the sizes are inconsistent or a label is out of range.
    #[must_use]
    pub fn new(m: u32, num_labels: u32, labels: Vec<u16>) -> Self {
        assert!(m <= 24, "labelings materialize 2^m entries; m capped at 24");
        assert_eq!(labels.len(), 1usize << m, "labeling must cover V(Q_m)");
        assert!(num_labels >= 1, "at least one label required");
        assert!(
            labels.iter().all(|&l| u32::from(l) < num_labels),
            "label out of range"
        );
        Self {
            m,
            num_labels,
            labels,
        }
    }

    /// Builds a labeling by evaluating `f` on every vertex of `Q_m`.
    #[must_use]
    pub fn from_fn(m: u32, num_labels: u32, f: impl Fn(u64) -> u16) -> Self {
        let labels = (0..1u64 << m).map(f).collect();
        Self::new(m, num_labels, labels)
    }

    /// Cube dimension `m`.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of labels `|C|`.
    #[must_use]
    pub fn num_labels(&self) -> u32 {
        self.num_labels
    }

    /// Label of vertex `u` (`u < 2^m`).
    #[must_use]
    pub fn label_of(&self, u: u64) -> u16 {
        self.labels[u as usize]
    }

    /// Number of vertices (`2^m`).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The label classes: `classes()[c]` lists the vertices labeled `c`.
    #[must_use]
    pub fn classes(&self) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new(); self.num_labels as usize];
        for (u, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(u as u64);
        }
        out
    }

    /// Sizes of the label classes.
    #[must_use]
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_labels as usize];
        for &l in &self.labels {
            out[l as usize] += 1;
        }
        out
    }

    /// `true` if every label is used at least once.
    #[must_use]
    pub fn all_labels_used(&self) -> bool {
        self.class_sizes().iter().all(|&s| s > 0)
    }

    /// Raw label slice, indexed by vertex.
    #[must_use]
    pub fn as_slice(&self) -> &[u16] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_access() {
        let l = Labeling::from_fn(3, 2, |u| (u & 1) as u16);
        assert_eq!(l.m(), 3);
        assert_eq!(l.num_labels(), 2);
        assert_eq!(l.num_vertices(), 8);
        assert_eq!(l.label_of(0b101), 1);
        assert_eq!(l.label_of(0b100), 0);
    }

    #[test]
    fn classes_partition() {
        let l = Labeling::from_fn(3, 2, |u| (u & 1) as u16);
        let classes = l.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![0, 2, 4, 6]);
        assert_eq!(classes[1], vec![1, 3, 5, 7]);
        assert_eq!(l.class_sizes(), vec![4, 4]);
        assert!(l.all_labels_used());
    }

    #[test]
    fn unused_label_detected() {
        let l = Labeling::new(1, 3, vec![0, 1]);
        assert!(!l.all_labels_used());
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn wrong_size_panics() {
        let _ = Labeling::new(2, 1, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = Labeling::new(1, 1, vec![0, 1]);
    }
}
