//! Exact computation of the paper's `λ_m` — the maximum number of labels a
//! Condition-A labeling of `Q_m` can use — via exhaustive domatic-partition
//! search (Condition A with `λ` labels ⇔ a partition of `V(Q_m)` into `λ`
//! dominating sets).
//!
//! Exponential; intended for the small `m` where Lemma 2 leaves a gap
//! between its bounds (`m <= 5` in practice).

use crate::labeling::Labeling;
use shc_graph::builders::hypercube;
use shc_graph::domination;

/// Exact `λ_m` by descending search from the upper bound `m + 1`.
///
/// # Panics
/// Panics if `m > 5` — beyond that the backtracking blows up and Lemma 2's
/// constructive value should be used instead.
#[must_use]
pub fn exact_lambda(m: u32) -> u32 {
    assert!(
        (1..=5).contains(&m),
        "exact_lambda supports 1 <= m <= 5, got {m}"
    );
    let q = hypercube(m);
    domination::domatic_number(&q) as u32
}

/// Searches for a Condition-A labeling of `Q_m` with exactly `lambda`
/// labels; returns it if one exists.
#[must_use]
pub fn find_labeling(m: u32, lambda: u32) -> Option<Labeling> {
    assert!((1..=5).contains(&m), "find_labeling supports 1 <= m <= 5");
    let q = hypercube(m);
    let assignment = domination::domatic_partition(&q, lambda as usize)?;
    Some(Labeling::new(m, lambda, assignment))
}

/// Lemma 2's lower bound: `λ_m >= ceil(m/2) + 1`.
#[must_use]
pub fn lemma2_lower_bound(m: u32) -> u32 {
    m.div_ceil(2) + 1
}

/// Lemma 2's upper bound: `λ_m <= m + 1` (each closed neighborhood has only
/// `m + 1` slots).
#[must_use]
pub fn lemma2_upper_bound(m: u32) -> u32 {
    m + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::constructed_lambda;
    use crate::verify::satisfies_condition_a;

    #[test]
    fn exact_lambda_small_cases() {
        // λ_1 = 2 (perfect), λ_2 = 2 (paper: "for m=2, λ_2 = 2"),
        // λ_3 = 4 (Hamming / Example 1).
        assert_eq!(exact_lambda(1), 2);
        assert_eq!(exact_lambda(2), 2);
        assert_eq!(exact_lambda(3), 4);
    }

    #[test]
    fn exact_lambda_m4() {
        // No perfect code in Q4 (2^4 not divisible by 5) so λ_4 <= 4;
        // the tiling construction achieves 4, hence λ_4 = 4 exactly.
        assert_eq!(exact_lambda(4), 4);
    }

    #[test]
    fn exact_lambda_m5() {
        // 2^5 = 32 not divisible by 6 ⇒ λ_5 <= 5 (no perfect code). The
        // backtracking search refutes a 5-part domatic partition of Q5 in
        // ~150ms (release), so λ_5 = 4: the Lemma-2 construction is exactly
        // optimal at m = 5 — a value the paper's bounds leave open
        // (lower bound ⌈5/2⌉+1 = 4, upper bound 6).
        assert_eq!(exact_lambda(5), 4);
    }

    #[test]
    fn exact_matches_or_beats_construction() {
        for m in 1..=4u32 {
            assert!(
                exact_lambda(m) >= constructed_lambda(m),
                "exact λ_{m} at least the constructive value"
            );
        }
    }

    #[test]
    fn exact_within_lemma2_bounds() {
        for m in 1..=4u32 {
            let lam = exact_lambda(m);
            assert!(lam >= lemma2_lower_bound(m), "m={m} lower");
            assert!(lam <= lemma2_upper_bound(m), "m={m} upper");
        }
    }

    #[test]
    fn found_labelings_satisfy_condition_a() {
        for m in 1..=4u32 {
            let lam = exact_lambda(m);
            let l = find_labeling(m, lam).expect("labeling at exact λ exists");
            assert!(satisfies_condition_a(&l), "m={m}");
            assert_eq!(l.num_labels(), lam);
        }
    }

    #[test]
    fn infeasible_lambda_returns_none() {
        // λ_2 = 2, so 3 labels must be impossible.
        assert!(find_labeling(2, 3).is_none());
        // λ_3 = 4 = m+1; 5 exceeds the degree bound.
        assert!(find_labeling(3, 5).is_none());
    }

    #[test]
    fn bounds_are_consistent() {
        for m in 1..=20 {
            assert!(lemma2_lower_bound(m) <= lemma2_upper_bound(m));
        }
    }
}
