//! Property-based tests for the GF(2) kernel and Hamming codes.

use proptest::prelude::*;
use shc_coding::{BitMatrix, Gf2Vec, HammingCode};

fn arb_matrix() -> impl Strategy<Value = BitMatrix> {
    (1usize..=8, 1u32..=12).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(0u64..(1 << cols), rows)
            .prop_map(move |r| BitMatrix::from_rows(r, cols))
    })
}

proptest! {
    #[test]
    fn vector_add_commutes_and_cancels(a in 0u64..1024, b in 0u64..1024) {
        let (x, y) = (Gf2Vec::new(a, 10), Gf2Vec::new(b, 10));
        prop_assert_eq!(x.add(y), y.add(x));
        prop_assert!(x.add(y).add(y) == x, "adding twice cancels");
        prop_assert_eq!(x.distance(y), x.add(y).weight());
    }

    #[test]
    fn dot_is_bilinear(a in 0u64..256, b in 0u64..256, c in 0u64..256) {
        let (x, y, z) = (Gf2Vec::new(a, 8), Gf2Vec::new(b, 8), Gf2Vec::new(c, 8));
        // <x+y, z> = <x,z> + <y,z> over GF(2).
        prop_assert_eq!(x.add(y).dot(z), x.dot(z) ^ y.dot(z));
    }

    #[test]
    fn rank_bounds(m in arb_matrix()) {
        let r = m.rank();
        prop_assert!(r <= m.num_rows());
        prop_assert!(r <= m.num_cols() as usize);
        // Rank invariant under transposition.
        prop_assert_eq!(r, m.transpose().rank());
    }

    #[test]
    fn rank_nullity(m in arb_matrix()) {
        prop_assert_eq!(m.rank() + m.kernel_basis().len(), m.num_cols() as usize);
    }

    #[test]
    fn kernel_vectors_annihilated(m in arb_matrix()) {
        for v in m.kernel_basis() {
            prop_assert!(m.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn solve_produces_solutions(m in arb_matrix(), x_bits in 0u64..4096) {
        // Construct a consistent system: b = M x, then solve must succeed and
        // any returned solution must reproduce b.
        let x = Gf2Vec::new(x_bits & ((1 << m.num_cols()) - 1), m.num_cols());
        let b = m.mul_vec(x);
        let sol = m.solve(b);
        prop_assert!(sol.is_some(), "consistent system must solve");
        prop_assert_eq!(m.mul_vec(sol.unwrap()), b);
    }

    #[test]
    fn rref_preserves_row_space_dimension(m in arb_matrix()) {
        let (rref, pivots) = m.rref();
        prop_assert_eq!(pivots.len(), m.rank());
        prop_assert_eq!(rref.rank(), m.rank());
    }

    #[test]
    fn mul_vec_distributes(m in arb_matrix(), a in 0u64..4096, b in 0u64..4096) {
        let mask = (1u64 << m.num_cols()) - 1;
        let x = Gf2Vec::new(a & mask, m.num_cols());
        let y = Gf2Vec::new(b & mask, m.num_cols());
        prop_assert_eq!(m.mul_vec(x.add(y)), m.mul_vec(x).add(m.mul_vec(y)));
    }

    #[test]
    fn syndrome_is_linear(p in 2u32..=4, a: u64, b: u64) {
        let h = HammingCode::new(p);
        let mask = (1u64 << h.block_len()) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(h.syndrome(a ^ b), h.syndrome(a) ^ h.syndrome(b));
    }

    #[test]
    fn decode_moves_at_most_one_bit(p in 2u32..=4, w: u64) {
        let h = HammingCode::new(p);
        let w = w & ((1u64 << h.block_len()) - 1);
        let c = h.decode(w);
        prop_assert!(h.is_codeword(c));
        prop_assert!((w ^ c).count_ones() <= 1);
    }

    #[test]
    fn coset_syndromes_consistent(p in 2u32..=3, s_raw: u32) {
        let h = HammingCode::new(p);
        let s = s_raw % (h.block_len() + 1);
        for w in h.coset(s) {
            prop_assert_eq!(h.syndrome(w), s);
        }
    }
}
