//! Perfect binary Hamming codes `[2^p − 1, 2^p − 1 − p, 3]`.
//!
//! Lemma 2 of the paper obtains the optimal Condition-A labeling of
//! `Q_m` for `m = 2^p − 1` "based on the notion of Hamming code" (citing
//! Roman's textbook). The connection: the syndrome map partitions `{0,1}^m`
//! into `m + 1` cosets of the code; each coset is a perfect covering code
//! (covering radius 1), i.e. a dominating set of `Q_m`; and every closed
//! neighborhood contains each syndrome exactly once — precisely Condition A
//! with the maximum possible `m + 1` labels.

use crate::bitmat::BitMatrix;
use crate::bitvec::Gf2Vec;
use serde::{Deserialize, Serialize};

/// The binary Hamming code with parameter `p >= 2`: block length
/// `m = 2^p − 1`, dimension `m − p`, minimum distance 3, perfect.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammingCode {
    p: u32,
}

impl HammingCode {
    /// Creates the Hamming code of redundancy `p` (`2 <= p <= 6` keeps block
    /// length within the packed-vector limit and every practical labeling
    /// need).
    ///
    /// # Panics
    /// Panics outside the supported range.
    #[must_use]
    pub fn new(p: u32) -> Self {
        assert!(
            (2..=6).contains(&p),
            "HammingCode supports 2 <= p <= 6, got {p}"
        );
        Self { p }
    }

    /// Largest Hamming code with block length at most `m`, if any
    /// (`None` for `m < 3`). Used by the general labeling construction.
    #[must_use]
    pub fn largest_fitting(m: u32) -> Option<Self> {
        if m < 3 {
            return None;
        }
        // p = floor(log2(m + 1)).
        let p = (64 - u64::from(m + 1).leading_zeros() - 1).min(6);
        Some(Self::new(p.max(2)))
    }

    /// Redundancy `p`.
    #[must_use]
    pub fn redundancy(&self) -> u32 {
        self.p
    }

    /// Block length `m = 2^p − 1`.
    #[must_use]
    pub fn block_len(&self) -> u32 {
        (1 << self.p) - 1
    }

    /// Code dimension `m − p`.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.block_len() - self.p
    }

    /// Number of codewords `2^(m−p)`.
    #[must_use]
    pub fn num_codewords(&self) -> u64 {
        1u64 << self.dimension()
    }

    /// The parity-check matrix `H`: `p` rows, `m` columns; column `j`
    /// (1-indexed) is the binary representation of `j`, so every nonzero
    /// `p`-bit vector appears exactly once.
    #[must_use]
    pub fn parity_check_matrix(&self) -> BitMatrix {
        let m = self.block_len();
        let mut h = BitMatrix::zero(self.p as usize, m);
        for col in 1..=m {
            for row in 0..self.p {
                if col >> row & 1 == 1 {
                    h.set(row as usize, col - 1, true);
                }
            }
        }
        h
    }

    /// Syndrome of a word `u ∈ {0,1}^m`, packed as an integer in
    /// `0..=m`. Computed by XOR-folding the (1-indexed) positions of set
    /// bits — equivalent to `H · u` but branch-free.
    #[must_use]
    pub fn syndrome(&self, word: u64) -> u32 {
        let m = self.block_len();
        debug_assert!(word < (1u64 << m), "word exceeds block length");
        let mut s = 0u32;
        let mut bits = word;
        while bits != 0 {
            let i = bits.trailing_zeros();
            s ^= i + 1;
            bits &= bits - 1;
        }
        s
    }

    /// `true` iff `word` is a codeword (syndrome 0).
    #[must_use]
    pub fn is_codeword(&self, word: u64) -> bool {
        self.syndrome(word) == 0
    }

    /// Single-error correction: returns the nearest codeword.
    #[must_use]
    pub fn decode(&self, word: u64) -> u64 {
        match self.syndrome(word) {
            0 => word,
            s => word ^ (1u64 << (s - 1)),
        }
    }

    /// A basis of the code (kernel of `H`), with `dimension()` elements.
    #[must_use]
    pub fn basis(&self) -> Vec<Gf2Vec> {
        self.parity_check_matrix().kernel_basis()
    }

    /// Iterates over all codewords (packed). Practical for `p <= 4`
    /// (dimension ≤ 11); asserts `p <= 5` to bound the cost.
    pub fn codewords(&self) -> impl Iterator<Item = u64> + '_ {
        assert!(self.p <= 5, "codeword enumeration capped at p = 5");
        let basis = self.basis();
        let dim = basis.len();
        (0..(1u64 << dim)).map(move |sel| {
            let mut w = 0u64;
            for (i, b) in basis.iter().enumerate() {
                if sel >> i & 1 == 1 {
                    w ^= b.bits();
                }
            }
            w
        })
    }

    /// The coset of the code with the given syndrome `s ∈ 0..=m`:
    /// `{u : syndrome(u) = s}`.
    pub fn coset(&self, s: u32) -> impl Iterator<Item = u64> + '_ {
        assert!(s <= self.block_len(), "syndrome out of range");
        let shift = if s == 0 { 0u64 } else { 1u64 << (s - 1) };
        self.codewords().map(move |c| c ^ shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters() {
        let h = HammingCode::new(3);
        assert_eq!(h.block_len(), 7);
        assert_eq!(h.dimension(), 4);
        assert_eq!(h.num_codewords(), 16);
    }

    #[test]
    fn p2_is_repetition_code() {
        // [3,1] Hamming = repetition {000, 111}: the paper's Example 1
        // labeling of Q3 pairs antipodal vertices.
        let h = HammingCode::new(2);
        let mut cw: Vec<u64> = h.codewords().collect();
        cw.sort_unstable();
        assert_eq!(cw, vec![0b000, 0b111]);
    }

    #[test]
    fn parity_check_columns_are_all_nonzero_vectors() {
        let h = HammingCode::new(3);
        let m = h.parity_check_matrix();
        let mut cols: Vec<u64> = (0..7)
            .map(|c| {
                (0..3)
                    .map(|r| u64::from(m.get(r, c)) << r)
                    .fold(0, |a, b| a | b)
            })
            .collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn syndrome_matches_matrix_product() {
        let h = HammingCode::new(3);
        let hm = h.parity_check_matrix();
        for word in 0..(1u64 << 7) {
            let via_matrix = hm.mul_vec(Gf2Vec::new(word, 7)).bits() as u32;
            assert_eq!(h.syndrome(word), via_matrix, "word {word:07b}");
        }
    }

    #[test]
    fn codewords_have_min_distance_3() {
        let h = HammingCode::new(3);
        let cw: Vec<u64> = h.codewords().collect();
        assert_eq!(cw.len(), 16);
        for (i, &a) in cw.iter().enumerate() {
            for &b in &cw[i + 1..] {
                assert!((a ^ b).count_ones() >= 3, "{a:07b} vs {b:07b}");
            }
        }
    }

    #[test]
    fn decode_corrects_single_errors() {
        let h = HammingCode::new(3);
        for c in h.codewords().collect::<Vec<_>>() {
            assert_eq!(h.decode(c), c, "codewords are fixed points");
            for i in 0..7u32 {
                let corrupted = c ^ (1u64 << i);
                assert_eq!(h.decode(corrupted), c, "flip bit {i} of {c:07b}");
            }
        }
    }

    #[test]
    fn perfect_code_sphere_packing() {
        // Spheres of radius 1 around codewords exactly tile {0,1}^m:
        // (m + 1) * 2^(m-p) = 2^m.
        for p in 2..=4u32 {
            let h = HammingCode::new(p);
            let m = h.block_len();
            assert_eq!(u64::from(m + 1) * h.num_codewords(), 1u64 << m, "p = {p}");
        }
    }

    #[test]
    fn every_word_within_distance_1_of_code() {
        // Covering radius 1, checked exhaustively for p = 3.
        let h = HammingCode::new(3);
        for word in 0..(1u64 << 7) {
            let c = h.decode(word);
            assert!(h.is_codeword(c));
            assert!((word ^ c).count_ones() <= 1);
        }
    }

    #[test]
    fn cosets_partition_space() {
        let h = HammingCode::new(3);
        let mut seen = [false; 1 << 7];
        for s in 0..=7u32 {
            for w in h.coset(s) {
                assert_eq!(h.syndrome(w), s, "coset member has syndrome {s}");
                assert!(!seen[w as usize], "duplicate word {w:07b}");
                seen[w as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "cosets cover the space");
    }

    #[test]
    fn largest_fitting() {
        assert_eq!(HammingCode::largest_fitting(2), None);
        assert_eq!(HammingCode::largest_fitting(3).unwrap().block_len(), 3);
        assert_eq!(HammingCode::largest_fitting(6).unwrap().block_len(), 3);
        assert_eq!(HammingCode::largest_fitting(7).unwrap().block_len(), 7);
        assert_eq!(HammingCode::largest_fitting(14).unwrap().block_len(), 7);
        assert_eq!(HammingCode::largest_fitting(15).unwrap().block_len(), 15);
    }

    #[test]
    fn basis_spans_codewords() {
        let h = HammingCode::new(3);
        assert_eq!(h.basis().len(), 4);
        for b in h.basis() {
            assert!(h.is_codeword(b.bits()));
        }
    }
}
