//! Covering-code utilities: covering radius and sphere-covering bounds.
//!
//! A set `C ⊆ {0,1}^m` with covering radius ≤ 1 is exactly a dominating set
//! of the cube `Q_m` — the object Condition A asks every label class to be.

/// Covering radius of the set `code` within `{0,1}^m`: the maximum over all
/// words of the distance to the nearest element. Brute force (`O(2^m |C|)`),
/// intended for `m <= 20`.
///
/// # Panics
/// Panics if `code` is empty or `m > 20`.
#[must_use]
pub fn covering_radius(code: &[u64], m: u32) -> u32 {
    assert!(
        !code.is_empty(),
        "covering radius of an empty set is undefined"
    );
    assert!(m <= 20, "brute-force covering radius capped at m = 20");
    let mut worst = 0u32;
    for word in 0..(1u64 << m) {
        let best = code
            .iter()
            .map(|&c| (c ^ word).count_ones())
            .min()
            .expect("nonempty");
        worst = worst.max(best);
    }
    worst
}

/// Size of a Hamming ball of radius `r` in `{0,1}^m`.
#[must_use]
pub fn ball_size(m: u32, r: u32) -> u64 {
    (0..=r.min(m)).map(|i| binomial(m, i)).sum()
}

/// Sphere-covering (Gilbert) lower bound on the size of a code with
/// covering radius `r`: `ceil(2^m / ball_size)`.
#[must_use]
pub fn sphere_covering_lower_bound(m: u32, r: u32) -> u64 {
    let space = 1u64 << m;
    space.div_ceil(ball_size(m, r))
}

/// Binomial coefficient (exact, u64; arguments small in this workspace).
#[must_use]
pub fn binomial(n: u32, k: u32) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * u64::from(n - i) / u64::from(i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::HammingCode;

    #[test]
    fn binomials() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(20, 10), 184_756);
    }

    #[test]
    fn ball_sizes() {
        assert_eq!(ball_size(7, 0), 1);
        assert_eq!(ball_size(7, 1), 8);
        assert_eq!(ball_size(7, 7), 128);
        assert_eq!(ball_size(3, 9), 8, "radius clamped to m");
    }

    #[test]
    fn hamming_code_has_covering_radius_1() {
        let h = HammingCode::new(3);
        let cw: Vec<u64> = h.codewords().collect();
        assert_eq!(covering_radius(&cw, 7), 1);
    }

    #[test]
    fn hamming_cosets_have_covering_radius_1() {
        // Every coset of a perfect code is itself a covering code — the fact
        // Lemma 2's labeling rests on.
        let h = HammingCode::new(2);
        for s in 0..=3u32 {
            let coset: Vec<u64> = h.coset(s).collect();
            assert_eq!(covering_radius(&coset, 3), 1, "syndrome {s}");
        }
    }

    #[test]
    fn hamming_meets_sphere_covering_bound_exactly() {
        // Perfection: |C| equals the sphere-covering bound.
        for p in 2..=4u32 {
            let h = HammingCode::new(p);
            assert_eq!(
                h.num_codewords(),
                sphere_covering_lower_bound(h.block_len(), 1),
                "p = {p}"
            );
        }
    }

    #[test]
    fn singleton_covering_radius_is_max_weight() {
        assert_eq!(covering_radius(&[0], 5), 5);
    }

    #[test]
    fn full_space_covering_radius_zero() {
        let all: Vec<u64> = (0..8).collect();
        assert_eq!(covering_radius(&all, 3), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_code_panics() {
        let _ = covering_radius(&[], 3);
    }
}
