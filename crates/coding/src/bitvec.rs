//! GF(2) vectors of length ≤ 63, packed into a `u64`.
//!
//! The labeling constructions only ever need vectors as long as the cube
//! dimension `m < n <= 60`, so a single word suffices and keeps the hot
//! syndrome computations branch-free.

use serde::{Deserialize, Serialize};

/// A vector over GF(2) with `len <= 63` coordinates packed into `bits`.
/// Coordinate `i` (0-based) is bit `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gf2Vec {
    bits: u64,
    len: u32,
}

impl Gf2Vec {
    /// Creates a vector from packed bits, masking anything beyond `len`.
    ///
    /// # Panics
    /// Panics if `len > 63`.
    #[must_use]
    pub fn new(bits: u64, len: u32) -> Self {
        assert!(len <= 63, "Gf2Vec supports length <= 63, got {len}");
        Self {
            bits: bits & Self::mask(len),
            len,
        }
    }

    /// The all-zeros vector of the given length.
    #[must_use]
    pub fn zero(len: u32) -> Self {
        Self::new(0, len)
    }

    fn mask(len: u32) -> u64 {
        (1u64 << len) - 1
    }

    /// Packed representation.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Vector length.
    #[must_use]
    pub fn len(self) -> u32 {
        self.len
    }

    /// `true` iff every coordinate is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Coordinate access.
    #[must_use]
    pub fn get(self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.bits >> i & 1 == 1
    }

    /// Returns the vector with coordinate `i` set to `value`.
    #[must_use]
    pub fn with(self, i: u32, value: bool) -> Self {
        debug_assert!(i < self.len);
        let bits = if value {
            self.bits | (1u64 << i)
        } else {
            self.bits & !(1u64 << i)
        };
        Self {
            bits,
            len: self.len,
        }
    }

    /// `true` for the degenerate zero-length vector.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// GF(2) addition (coordinatewise XOR).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // domain verb; `+` on Copy bit vectors reads worse
    pub fn add(self, other: Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch");
        Self {
            bits: self.bits ^ other.bits,
            len: self.len,
        }
    }

    /// Inner product over GF(2) (parity of the AND).
    #[must_use]
    pub fn dot(self, other: Self) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        (self.bits & other.bits).count_ones() % 2 == 1
    }

    /// Hamming weight.
    #[must_use]
    pub fn weight(self) -> u32 {
        self.bits.count_ones()
    }

    /// Hamming distance to `other`.
    #[must_use]
    pub fn distance(self, other: Self) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch");
        (self.bits ^ other.bits).count_ones()
    }

    /// Iterates over all `2^len` vectors of a given length (ascending packed
    /// order). Intended for small lengths in tests/search.
    pub fn all(len: u32) -> impl Iterator<Item = Gf2Vec> {
        assert!(len <= 24, "exhaustive vector iteration capped at 2^24");
        (0..(1u64 << len)).map(move |b| Gf2Vec::new(b, len))
    }
}

impl std::fmt::Display for Gf2Vec {
    /// Displays most-significant coordinate first, matching the paper's
    /// `u_n u_{n-1} … u_1` convention.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_extra_bits() {
        let v = Gf2Vec::new(0b1111_0000, 4);
        assert_eq!(v.bits(), 0);
        assert!(v.is_zero());
    }

    #[test]
    fn get_with_roundtrip() {
        let v = Gf2Vec::zero(5).with(0, true).with(3, true);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(3));
        assert_eq!(v.bits(), 0b01001);
        assert_eq!(v.with(3, false).bits(), 0b00001);
    }

    #[test]
    fn add_is_xor() {
        let a = Gf2Vec::new(0b1010, 4);
        let b = Gf2Vec::new(0b0110, 4);
        assert_eq!(a.add(b).bits(), 0b1100);
        assert!(a.add(a).is_zero(), "characteristic 2");
    }

    #[test]
    fn dot_parity() {
        let a = Gf2Vec::new(0b111, 3);
        let b = Gf2Vec::new(0b101, 3);
        assert!(!a.dot(b), "two overlapping ones -> even parity");
        let c = Gf2Vec::new(0b001, 3);
        assert!(a.dot(c));
    }

    #[test]
    fn weight_and_distance() {
        let a = Gf2Vec::new(0b1011, 4);
        assert_eq!(a.weight(), 3);
        let b = Gf2Vec::new(0b0011, 4);
        assert_eq!(a.distance(b), 1);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn display_msb_first() {
        let v = Gf2Vec::new(0b0011, 4);
        assert_eq!(v.to_string(), "0011");
    }

    #[test]
    fn all_enumerates() {
        let vs: Vec<_> = Gf2Vec::all(3).collect();
        assert_eq!(vs.len(), 8);
        assert!(vs[0].is_zero());
        assert_eq!(vs[7].weight(), 3);
    }

    #[test]
    #[should_panic(expected = "length <= 63")]
    fn too_long_panics() {
        let _ = Gf2Vec::new(0, 64);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_add_panics() {
        let _ = Gf2Vec::zero(3).add(Gf2Vec::zero(4));
    }
}
