//! Dense matrices over GF(2), rows packed as `u64` words (≤ 63 columns).
//! Provides the linear algebra the code constructions need: rank, row
//! echelon form, kernel (null space) bases, and matrix–vector products.

use crate::bitvec::Gf2Vec;
use serde::{Deserialize, Serialize};

/// A `rows × cols` matrix over GF(2); each row is a packed [`Gf2Vec`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: Vec<u64>,
    cols: u32,
}

impl BitMatrix {
    /// Zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if `cols > 63`.
    #[must_use]
    pub fn zero(rows: usize, cols: u32) -> Self {
        assert!(cols <= 63, "BitMatrix supports cols <= 63, got {cols}");
        Self {
            rows: vec![0; rows],
            cols,
        }
    }

    /// Identity matrix of size `n × n`.
    #[must_use]
    pub fn identity(n: u32) -> Self {
        let mut m = Self::zero(n as usize, n);
        for i in 0..n as usize {
            m.rows[i] = 1u64 << i;
        }
        m
    }

    /// Builds a matrix from rows given as packed bit patterns.
    #[must_use]
    pub fn from_rows(rows: Vec<u64>, cols: u32) -> Self {
        assert!(cols <= 63, "BitMatrix supports cols <= 63, got {cols}");
        let mask = (1u64 << cols) - 1;
        Self {
            rows: rows.into_iter().map(|r| r & mask).collect(),
            cols,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[must_use]
    pub fn num_cols(&self) -> u32 {
        self.cols
    }

    /// Entry accessor.
    #[must_use]
    pub fn get(&self, r: usize, c: u32) -> bool {
        debug_assert!(c < self.cols);
        self.rows[r] >> c & 1 == 1
    }

    /// Sets an entry.
    pub fn set(&mut self, r: usize, c: u32, value: bool) {
        debug_assert!(c < self.cols);
        if value {
            self.rows[r] |= 1u64 << c;
        } else {
            self.rows[r] &= !(1u64 << c);
        }
    }

    /// Row `r` as a vector.
    #[must_use]
    pub fn row(&self, r: usize) -> Gf2Vec {
        Gf2Vec::new(self.rows[r], self.cols)
    }

    /// Matrix–vector product `M · x` (length `cols` in, `rows` out).
    #[must_use]
    pub fn mul_vec(&self, x: Gf2Vec) -> Gf2Vec {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = 0u64;
        for (i, &row) in self.rows.iter().enumerate() {
            let parity = (row & x.bits()).count_ones() as u64 & 1;
            out |= parity << i;
        }
        Gf2Vec::new(out, self.rows.len() as u32)
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zero(self.cols as usize, self.rows.len() as u32);
        for (r, &row) in self.rows.iter().enumerate() {
            let mut bits = row;
            while bits != 0 {
                let c = bits.trailing_zeros();
                t.rows[c as usize] |= 1u64 << r;
                bits &= bits - 1;
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    #[must_use]
    pub fn mul(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols as usize, rhs.num_rows(), "dimension mismatch");
        let rhs_t = rhs.transpose();
        let mut out = BitMatrix::zero(self.rows.len(), rhs.cols);
        for (r, &row) in self.rows.iter().enumerate() {
            let mut bits = 0u64;
            for (c, &col) in rhs_t.rows.iter().enumerate() {
                let parity = (row & col).count_ones() as u64 & 1;
                bits |= parity << c;
            }
            out.rows[r] = bits;
        }
        out
    }

    /// Reduced row echelon form; returns `(rref, pivot_columns)`.
    #[must_use]
    pub fn rref(&self) -> (BitMatrix, Vec<u32>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut rank = 0usize;
        for col in 0..m.cols {
            let Some(pivot_row) = (rank..m.rows.len()).find(|&r| m.get(r, col)) else {
                continue;
            };
            m.rows.swap(rank, pivot_row);
            let pivot = m.rows[rank];
            for r in 0..m.rows.len() {
                if r != rank && m.get(r, col) {
                    m.rows[r] ^= pivot;
                }
            }
            pivots.push(col);
            rank += 1;
            if rank == m.rows.len() {
                break;
            }
        }
        (m, pivots)
    }

    /// Rank over GF(2).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// A basis of the kernel `{x : M·x = 0}`.
    #[must_use]
    pub fn kernel_basis(&self) -> Vec<Gf2Vec> {
        let (rref, pivots) = self.rref();
        let pivot_set: std::collections::HashSet<u32> = pivots.iter().copied().collect();
        let free: Vec<u32> = (0..self.cols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            // Back-substitute: x_f = 1, other free vars 0.
            let mut x = 1u64 << f;
            for (r, &p) in pivots.iter().enumerate() {
                if rref.get(r, f) {
                    x |= 1u64 << p;
                }
            }
            basis.push(Gf2Vec::new(x, self.cols));
        }
        basis
    }

    /// Solves `M·x = b`; returns one solution if the system is consistent.
    #[must_use]
    pub fn solve(&self, b: Gf2Vec) -> Option<Gf2Vec> {
        assert_eq!(b.len() as usize, self.rows.len(), "dimension mismatch");
        // Augment with b as an extra column (cols < 63 required).
        assert!(self.cols < 63, "augmented solve needs cols < 63");
        let mut aug = BitMatrix::zero(self.rows.len(), self.cols + 1);
        for (r, &row) in self.rows.iter().enumerate() {
            aug.rows[r] = row | (u64::from(b.get(r as u32)) << self.cols);
        }
        let (rref, pivots) = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = 0u64;
        for (r, &p) in pivots.iter().enumerate() {
            if rref.get(r, self.cols) {
                x |= 1u64 << p;
            }
        }
        Some(Gf2Vec::new(x, self.cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_acts_trivially() {
        let id = BitMatrix::identity(5);
        let x = Gf2Vec::new(0b10110, 5);
        assert_eq!(id.mul_vec(x), x);
        assert_eq!(id.rank(), 5);
    }

    #[test]
    fn rank_of_dependent_rows() {
        // Row 3 = row 1 + row 2.
        let m = BitMatrix::from_rows(vec![0b011, 0b101, 0b110], 3);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn transpose_involution() {
        let m = BitMatrix::from_rows(vec![0b01, 0b11, 0b10], 2);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().num_rows(), 2);
        assert_eq!(m.transpose().num_cols(), 3);
    }

    #[test]
    fn mul_against_identity() {
        let m = BitMatrix::from_rows(vec![0b011, 0b101], 3);
        assert_eq!(m.mul(&BitMatrix::identity(3)), m);
        assert_eq!(BitMatrix::identity(2).mul(&m), m);
    }

    #[test]
    fn kernel_is_annihilated() {
        let m = BitMatrix::from_rows(vec![0b0111, 0b1011], 4);
        let basis = m.kernel_basis();
        assert_eq!(basis.len(), 2, "rank 2, nullity 2");
        for v in basis {
            assert!(m.mul_vec(v).is_zero(), "kernel vector {v}");
        }
    }

    #[test]
    fn kernel_of_identity_is_trivial() {
        assert!(BitMatrix::identity(6).kernel_basis().is_empty());
    }

    #[test]
    fn solve_consistent() {
        let m = BitMatrix::from_rows(vec![0b011, 0b110], 3);
        let b = Gf2Vec::new(0b01, 2);
        let x = m.solve(b).expect("consistent");
        assert_eq!(m.mul_vec(x), b);
    }

    #[test]
    fn solve_inconsistent() {
        // Rows equal, different RHS bits.
        let m = BitMatrix::from_rows(vec![0b011, 0b011], 3);
        let b = Gf2Vec::new(0b01, 2);
        assert!(m.solve(b).is_none());
    }

    #[test]
    fn rref_pivots_ascending() {
        let m = BitMatrix::from_rows(vec![0b110, 0b011, 0b101], 3);
        let (_, pivots) = m.rref();
        assert!(pivots.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn set_get() {
        let mut m = BitMatrix::zero(2, 4);
        m.set(1, 3, true);
        assert!(m.get(1, 3));
        m.set(1, 3, false);
        assert!(!m.get(1, 3));
    }
}
