//! # shc-coding — GF(2) linear algebra and perfect Hamming codes
//!
//! Substrate for the labeling constructions of Fujita & Farley's sparse
//! hypercube paper. Lemma 2 builds the optimal Condition-A labeling of
//! `Q_m` (for `m = 2^p − 1`) from the Hamming code's syndrome partition;
//! this crate implements the code itself — parity-check matrices, syndromes,
//! decoding, cosets — on top of a small dense GF(2) matrix kernel.
//!
//! * [`bitvec`] — packed GF(2) vectors (≤ 63 coordinates).
//! * [`bitmat`] — dense GF(2) matrices: rank, RREF, kernel, solve.
//! * [`hamming`] — perfect `[2^p − 1, 2^p − 1 − p, 3]` codes.
//! * [`covering`] — covering radii and sphere bounds.
//!
//! ## Example
//!
//! The `[7, 4, 3]` Hamming code corrects any single-bit error — the
//! property Lemma 2 turns into a maximal Condition-A labeling:
//!
//! ```
//! use shc_coding::HammingCode;
//!
//! let code = HammingCode::new(3);
//! assert_eq!(code.block_len(), 7);
//! assert_eq!(code.num_codewords(), 16);
//! let sent = code.codewords().nth(5).unwrap();
//! assert!(code.is_codeword(sent));
//! // Flip one bit in transit: decoding recovers the codeword.
//! assert_eq!(code.decode(sent ^ 0b100), sent);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmat;
pub mod bitvec;
pub mod covering;
pub mod hamming;

pub use bitmat::BitMatrix;
pub use bitvec::Gf2Vec;
pub use hamming::HammingCode;
