// Fixture: clean — the telemetry site carries a reasoned allow, so D1
// stays quiet and the allow is counted as used (not stale).
// analyze:allow(wall_clock): fixture telemetry site; value never enters a report
use std::time::Instant;

pub fn stamp() -> u64 {
    // analyze:allow(wall_clock): measurement is display-only
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
