// Fixture: clean — both probe calls sit under `if P::ENABLED`, one of
// them in a nested scope that inherits the gate.
pub fn run<P: EngineProbe>(probe: &mut P, reqs: &[Request]) {
    if P::ENABLED {
        probe.on_round_start(reqs.len());
        for req in reqs {
            probe.on_request(req);
        }
    }
}
