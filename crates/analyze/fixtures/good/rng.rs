// Fixture: clean — seeds flow from a spec value, never from entropy.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn from_spec(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
