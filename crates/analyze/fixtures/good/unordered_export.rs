// Fixture: clean — the export path iterates a BTreeMap, which has a
// deterministic order, so D2 stays quiet even though the file is
// export-relevant (serde_json below).
use std::collections::BTreeMap;

pub fn dump(rows: BTreeMap<String, u64>) -> String {
    let mut lines = Vec::new();
    for (k, v) in rows {
        lines.push(format!("{k}={v}"));
    }
    serde_json::to_string(&lines).unwrap()
}
