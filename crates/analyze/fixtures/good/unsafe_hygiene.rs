// Fixture: clean as a crate root — the forbid attribute is present and
// there is no unsafe code at all.
#![forbid(unsafe_code)]

pub fn peek(v: &[u8]) -> u8 {
    v[0]
}
