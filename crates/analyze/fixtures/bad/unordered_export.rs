// Fixture: D2 must fire — a HashMap iterated inside an export-relevant
// file (the serde_json ident below marks it as one).
use std::collections::HashMap;

pub fn dump(rows: HashMap<String, u64>) -> String {
    let mut lines = Vec::new();
    for (k, v) in rows {
        lines.push(format!("{k}={v}"));
    }
    serde_json::to_string(&lines).unwrap()
}
