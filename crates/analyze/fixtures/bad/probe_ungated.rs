// Fixture: D3 must fire — the probe call is not under `if P::ENABLED`,
// so a NoProbe build cannot dead-code-eliminate it.
pub fn run<P: EngineProbe>(probe: &mut P, req: &Request) {
    probe.on_request(req);
}
