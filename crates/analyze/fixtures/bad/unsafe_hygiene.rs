// Fixture: U1 must fire twice when analyzed as a crate root — no
// `#![forbid(unsafe_code)]` attribute, and an unjustified unsafe block
// (nothing above it explains why the invariant holds).

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
