// Fixture: D4 must fire on every entropy-seeding entry point.
use rand::rngs::StdRng;

pub fn fresh() -> StdRng {
    StdRng::from_entropy()
}
