// Fixture: A0 must fire — the allow below suppresses nothing (there is
// no wall-clock use anywhere near it), so it has rotted.
// analyze:allow(wall_clock): this reason refers to code that no longer exists
pub fn plain() -> u32 {
    42
}
