// Fixture: D1 must fire on both the import and the call site.
use std::time::Instant;

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
