// Fixture: A1 must fire three times — unknown key, empty reason, and a
// malformed annotation that never closes its key parenthesis.
// analyze:allow(flux_capacitor): not a rule key
// analyze:allow(wall_clock):
// analyze:allow(wall_clock
pub fn plain() -> u32 {
    42
}
