//! Runs the analyzer over the live workspace tree, so plain `cargo test`
//! enforces the determinism contract even before CI's explicit
//! `--deny-all` step. A failure here lists the exact findings — fix the
//! code or add a reasoned `// analyze:allow(<key>): …` at the site.

use std::path::Path;

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let analysis = shc_analyze::analyze_workspace(&root).expect("workspace scan");
    assert!(
        analysis.findings.is_empty(),
        "determinism-contract violations:\n{}",
        analysis.render_human()
    );
    assert!(analysis.files_scanned > 100, "scan unexpectedly shallow");
}
