//! S1 behaves as a two-way diff: undocumented surface growth AND stale
//! provenance entries both fail, and the `--dump-shim-api` output is its
//! own fixed point (rendering then parsing reproduces the surface).

use shc_analyze::lexer::{lex, Lexed};
use shc_analyze::shim_api::{audit_shims, parse_provenance, render_table};
use std::collections::BTreeMap;

fn sources(src: &str) -> BTreeMap<String, Vec<(String, Lexed)>> {
    let mut out = BTreeMap::new();
    out.insert(
        "demo".to_string(),
        vec![("shims/demo/src/lib.rs".to_string(), lex(src))],
    );
    out
}

const DEMO: &str = "pub struct Widget;\npub fn build() -> Widget { Widget }\n";

#[test]
fn missing_block_is_a_finding() {
    let findings = audit_shims(Some("# shims\nno fenced block here\n"), &sources(DEMO));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("analyze:shim-api"),
        "{findings:?}"
    );
}

#[test]
fn documented_surface_passes() {
    let readme = "```analyze:shim-api\ndemo: Widget, build\n```\n";
    let findings = audit_shims(Some(readme), &sources(DEMO));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn undocumented_item_fails() {
    let readme = "```analyze:shim-api\ndemo: Widget\n```\n";
    let findings = audit_shims(Some(readme), &sources(DEMO));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("build"), "{findings:?}");
}

#[test]
fn stale_entry_fails() {
    let readme = "```analyze:shim-api\ndemo: Widget, build, vanished\n```\n";
    let findings = audit_shims(Some(readme), &sources(DEMO));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("vanished"), "{findings:?}");
}

#[test]
fn rendered_table_is_a_fixed_point() {
    let srcs = sources(DEMO);
    let table = render_table(&srcs);
    let parsed = parse_provenance(&table);
    let demo = &parsed["demo"].0;
    assert!(
        demo.contains("Widget") && demo.contains("build"),
        "{parsed:?}"
    );
    assert!(audit_shims(Some(&table), &srcs).is_empty());
}
