//! Fixture-based proof that every rule catches its seeded violation and
//! stays quiet on the corresponding clean variant. The fixtures live in
//! `crates/analyze/fixtures/{bad,good}/` — a directory [`shc_analyze::scan`]
//! skips, so the seeded violations can never leak into the workspace gate.

use shc_analyze::rules::{analyze_file, FileCtx};
use shc_analyze::{lexer, Finding};
use std::path::Path;

fn analyze_fixture(kind: &str, name: &str, is_crate_root: bool) -> (Vec<Finding>, usize) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let rel = format!("fixtures/{kind}/{name}");
    let ctx = FileCtx {
        rel_path: &rel,
        is_crate_root,
        in_tests_dir: false,
    };
    analyze_file(&ctx, &lexer::lex(&src))
}

fn codes(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.code()).collect()
}

#[test]
fn d1_catches_wall_clock_import_and_call() {
    let (findings, _) = analyze_fixture("bad", "wall_clock.rs", false);
    assert_eq!(codes(&findings), ["D1", "D1"], "{findings:?}");
}

#[test]
fn d1_quiet_when_allowed_and_allows_counted() {
    let (findings, allows) = analyze_fixture("good", "wall_clock_allowed.rs", false);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(allows, 2, "both annotations must register as used");
}

#[test]
fn d2_catches_hash_iteration_in_export_path() {
    let (findings, _) = analyze_fixture("bad", "unordered_export.rs", false);
    assert_eq!(codes(&findings), ["D2"], "{findings:?}");
    assert!(findings[0].message.contains("rows"), "{findings:?}");
}

#[test]
fn d2_quiet_on_btreemap_export() {
    let (findings, _) = analyze_fixture("good", "unordered_export.rs", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_catches_ungated_probe_call() {
    let (findings, _) = analyze_fixture("bad", "probe_ungated.rs", false);
    assert_eq!(codes(&findings), ["D3"], "{findings:?}");
    assert!(findings[0].message.contains("on_request"), "{findings:?}");
}

#[test]
fn d3_quiet_when_gated_including_nested_scope() {
    let (findings, _) = analyze_fixture("good", "probe_gated.rs", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d4_catches_entropy_seeding() {
    let (findings, _) = analyze_fixture("bad", "rng.rs", false);
    assert_eq!(codes(&findings), ["D4"], "{findings:?}");
}

#[test]
fn d4_quiet_on_spec_seeding() {
    let (findings, _) = analyze_fixture("good", "rng.rs", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn u1_catches_missing_forbid_and_uncommented_unsafe() {
    let (findings, _) = analyze_fixture("bad", "unsafe_hygiene.rs", true);
    let mut got = codes(&findings);
    got.sort_unstable();
    assert_eq!(got, ["U1", "U1"], "{findings:?}");
}

#[test]
fn u1_quiet_on_forbidding_crate_root() {
    let (findings, _) = analyze_fixture("good", "unsafe_hygiene.rs", true);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn a0_catches_stale_allow() {
    let (findings, allows) = analyze_fixture("bad", "stale_allow.rs", false);
    assert_eq!(codes(&findings), ["A0"], "{findings:?}");
    assert_eq!(allows, 0, "a stale allow must not count as used");
}

#[test]
fn a1_catches_malformed_annotations() {
    let (findings, _) = analyze_fixture("bad", "bad_annotation.rs", false);
    assert_eq!(codes(&findings), ["A1", "A1", "A1"], "{findings:?}");
}
