//! The per-file rule engine: D1 wall-clock, D2 unordered export, D3
//! probe gating, D4 rng discipline, U1 unsafe hygiene — plus the
//! allow-annotation grammar that suppresses individual findings and the
//! stale-allow meta-check that keeps every committed annotation honest.
//!
//! All checks are lexical. They see tokens and comments, never types,
//! so each rule is a documented *heuristic* with deliberately
//! conservative trigger patterns (see `docs/ANALYSIS.md` for the exact
//! patterns and their known blind spots). The escape hatch for a false
//! positive is always the same: an inline
//! `// analyze:allow(<key>): <reason>` on (or directly above) the
//! flagged line, which keeps the exception visible in every diff that
//! touches it.

use crate::lexer::{Lexed, TokKind, Token};
use crate::report::{Finding, Rule};

/// Per-file context the scanner provides.
#[derive(Clone, Copy, Debug)]
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub rel_path: &'a str,
    /// True for crate roots (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`), where U1 demands `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// True for files under a `tests/` directory (integration tests):
    /// D3 is skipped there, as it is in `#[cfg(test)]` scopes.
    pub in_tests_dir: bool,
}

/// Wall-clock types D1 bans outside annotated sites.
const WALL_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Entropy-source names D4 bans outright (seeds must flow from specs).
const ENTROPY_NAMES: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// Hash-collection type names D2 tracks bindings of.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that surface iteration order on a hash collection.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers that mark a file as part of the JSON/journal/report
/// export surface (D2's scope).
const EXPORT_MARKERS: &[&str] = &["serde_json", "Serialize", "to_string_pretty"];

/// One parsed `// analyze:allow(<key>): <reason>` annotation.
#[derive(Clone, Debug)]
struct Allow {
    line: u32,
    key: String,
    used: bool,
}

/// Runs every per-file rule over one lexed file and applies the allow
/// grammar. Returns surviving findings plus the number of annotations
/// that suppressed something.
pub fn analyze_file(ctx: &FileCtx<'_>, lexed: &Lexed) -> (Vec<Finding>, usize) {
    let mut raw: Vec<Finding> = Vec::new();
    let mut allows = parse_allows(ctx, lexed, &mut raw);

    check_wall_clock_and_rng(ctx, lexed, &mut raw);
    check_unordered_export(ctx, lexed, &mut raw);
    check_probe_gating_and_tests(ctx, lexed, &mut raw);
    check_unsafe(ctx, lexed, &mut raw);

    // Allow matching: an annotation on line L suppresses matching
    // findings on line L (trailing comment) or line L + 1 (standalone
    // comment directly above the site).
    let mut kept: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.key == f.rule.key() && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    let used = allows.iter().filter(|a| a.used).count();
    for a in &allows {
        if !a.used {
            kept.push(Finding {
                file: ctx.rel_path.to_string(),
                line: a.line,
                rule: Rule::StaleAllow,
                message: format!(
                    "`analyze:allow({})` suppresses nothing — the finding it excused is gone; \
                     delete the annotation",
                    a.key
                ),
            });
        }
    }
    (kept, used)
}

/// Parses allow annotations out of the comment stream; malformed ones
/// become `BadAnnotation` findings immediately.
fn parse_allows(ctx: &FileCtx<'_>, lexed: &Lexed, raw: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &lexed.comments {
        // The grammar lives in plain `//` comments only: doc comments
        // (`///`, `//!`, `/** */`) merely *describe* annotations, so a
        // rustdoc example of the grammar must never parse as one.
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/*") {
            continue;
        }
        let Some(pos) = c.text.find("analyze:allow") else {
            continue;
        };
        let rest = &c.text[pos + "analyze:allow".len()..];
        let bad = |msg: &str| Finding {
            file: ctx.rel_path.to_string(),
            line: c.line,
            rule: Rule::BadAnnotation,
            message: msg.to_string(),
        };
        let Some(rest) = rest.strip_prefix('(') else {
            raw.push(bad(
                "malformed annotation: expected `analyze:allow(<key>): <reason>`",
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            raw.push(bad("malformed annotation: missing `)` after the rule key"));
            continue;
        };
        let key = rest[..close].trim().to_string();
        if !Rule::allowable_keys().contains(&key.as_str()) {
            raw.push(bad(&format!(
                "unknown allow key `{key}` (valid: {})",
                Rule::allowable_keys().join(", ")
            )));
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            raw.push(bad(&format!(
                "allow annotation for `{key}` has no reason — the grammar is \
                 `analyze:allow({key}): <non-empty reason>`"
            )));
            continue;
        }
        allows.push(Allow {
            line: c.line,
            key,
            used: false,
        });
    }
    allows
}

/// D1 + D4: forbidden names. D1 fires on `Instant`/`SystemTime` when
/// used as a path head (`Instant::now()`) or imported in a `use`
/// declaration — the import is the choke point, so a bare type mention
/// in a signature inside an already-annotated file never double-fires.
/// D4 fires on any entropy-source identifier.
fn check_wall_clock_and_rng(ctx: &FileCtx<'_>, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            if t.text == ";" {
                in_use = false;
            }
            continue;
        }
        if t.text == "use" {
            in_use = true;
            continue;
        }
        if WALL_CLOCK_TYPES.contains(&t.text.as_str()) {
            let path_head = toks.get(i + 1).is_some_and(|n| n.text == "::");
            if in_use || path_head {
                out.push(Finding {
                    file: ctx.rel_path.to_string(),
                    line: t.line,
                    rule: Rule::WallClock,
                    message: format!(
                        "`{}` is wall clock — deterministic code must be stamped with \
                         simulated time only (annotate telemetry/bench sites with \
                         `analyze:allow(wall_clock)`)",
                        t.text
                    ),
                });
            }
        }
        if ENTROPY_NAMES.contains(&t.text.as_str()) {
            out.push(Finding {
                file: ctx.rel_path.to_string(),
                line: t.line,
                rule: Rule::Rng,
                message: format!(
                    "`{}` draws entropy from the environment — seeds must flow from \
                     scenario/service specs",
                    t.text
                ),
            });
        }
    }
}

/// D2: in export-relevant files (any file naming `serde_json`,
/// `Serialize`, `to_string_pretty`, or a `*jsonl*` identifier), find
/// names bound to `HashMap`/`HashSet` and flag any iteration over them
/// (`for _ in m`, `m.iter()`, `.keys()`, `.values()`, `.drain()`, …).
/// Hash iteration order is seeded per-process, so anything it feeds
/// into an exported artifact breaks byte-identical reports.
fn check_unordered_export(ctx: &FileCtx<'_>, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let export_relevant = toks.iter().any(|t| {
        t.kind == TokKind::Ident
            && (EXPORT_MARKERS.contains(&t.text.as_str()) || t.text.contains("jsonl"))
    });
    if !export_relevant {
        return;
    }
    // Pass 1: names bound to a hash collection via `name: HashMap<…>`
    // or `name = HashMap::new()` (full `std::collections::…` paths
    // included — the back-walk skips `ident::` pairs).
    let mut bound: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        let mut k = i;
        while k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident {
            k -= 2;
        }
        if k >= 2 && (toks[k - 1].text == ":" || toks[k - 1].text == "=") {
            let binder = &toks[k - 2];
            if binder.kind == TokKind::Ident && !bound.contains(&binder.text) {
                bound.push(binder.text.clone());
            }
        }
    }
    if bound.is_empty() {
        return;
    }
    // Pass 2: iteration sites over bound names.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `for x in name` (allowing `&`/`mut` between `in` and name).
        if t.text == "in" {
            let within_for = (i.saturating_sub(8)..i).any(|j| toks[j].text == "for");
            if within_for {
                let mut j = i + 1;
                while j < toks.len() && (toks[j].text == "&" || toks[j].text == "mut") {
                    j += 1;
                }
                if j < toks.len()
                    && toks[j].kind == TokKind::Ident
                    && bound.contains(&toks[j].text)
                    && toks.get(j + 1).is_none_or(|n| n.text != ".")
                {
                    out.push(d2_finding(ctx, &toks[j]));
                }
            }
        }
        // `name.iter()` and friends.
        if bound.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == ".")
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.text == "(")
        {
            out.push(d2_finding(ctx, t));
        }
    }
}

fn d2_finding(ctx: &FileCtx<'_>, t: &Token) -> Finding {
    Finding {
        file: ctx.rel_path.to_string(),
        line: t.line,
        rule: Rule::UnorderedExport,
        message: format!(
            "iterating hash-ordered `{}` in an export-relevant file — use \
             `BTreeMap`/`BTreeSet` or sort before emitting",
            t.text
        ),
    }
}

/// D3: every `…probe….on_*(…)` call must sit inside a scope whose `if`
/// condition names `ENABLED` (the `P::ENABLED` const gate), so that
/// `NoProbe` dead-code-eliminates the site. `#[cfg(test)]` scopes,
/// `#[test]` functions, and files under `tests/` are exempt — tests
/// drive probes directly on purpose.
fn check_probe_gating_and_tests(ctx: &FileCtx<'_>, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    // Scope flags; index 0 is the implicit file scope.
    let mut gated_stack: Vec<(bool, bool)> = vec![(false, ctx.in_tests_dir)];
    // Token indices of `{` that open a gated / test scope.
    let mut pending_gated: Vec<usize> = Vec::new();
    let mut pending_test: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "if" => {
                // Find the block `{` at bracket depth 0; note whether the
                // condition names ENABLED.
                let mut depth = 0i32;
                let mut has_enabled = false;
                let mut j = i + 1;
                while j < toks.len() {
                    let u = &toks[j];
                    match u.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {
                            if u.kind == TokKind::Ident && u.text == "ENABLED" {
                                has_enabled = true;
                            }
                        }
                    }
                    j += 1;
                }
                if j < toks.len() && has_enabled {
                    pending_gated.push(j);
                }
            }
            "#" => {
                // Attribute: `#[…]` (or `#![…]`). If it names `test`,
                // the next block scope opened by the annotated item is a
                // test scope.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|u| u.text == "!") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|u| u.text == "[") {
                    let mut depth = 0i32;
                    let mut names_test = false;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" if toks[j].kind == TokKind::Ident => names_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if names_test {
                        // Find the item body: first `{` at depth 0 that is
                        // not inside parens/brackets (skips further
                        // attributes, signatures, where clauses).
                        let mut depth = 0i32;
                        let mut k = j + 1;
                        while k < toks.len() {
                            match toks[k].text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "{" if depth == 0 => {
                                    pending_test.push(k);
                                    break;
                                }
                                ";" if depth == 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        i = j;
                    }
                }
            }
            "{" => {
                let parent = *gated_stack.last().expect("scope stack never empty");
                let gated = parent.0 || pending_gated.contains(&i);
                let test = parent.1 || pending_test.contains(&i);
                pending_gated.retain(|&p| p != i);
                pending_test.retain(|&p| p != i);
                gated_stack.push((gated, test));
            }
            "}" => {
                if gated_stack.len() > 1 {
                    gated_stack.pop();
                }
            }
            _ => {
                // Probe call site: `.on_xyz(` with a `probe`-named
                // receiver within the preceding few tokens.
                if t.kind == TokKind::Ident
                    && t.text.starts_with("on_")
                    && i >= 1
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    let receiver_is_probe = (i.saturating_sub(8)..i).any(|j| {
                        toks[j].kind == TokKind::Ident
                            && toks[j].text.to_lowercase().contains("probe")
                    });
                    let (gated, test) = *gated_stack.last().expect("scope stack never empty");
                    if receiver_is_probe && !gated && !test {
                        out.push(Finding {
                            file: ctx.rel_path.to_string(),
                            line: t.line,
                            rule: Rule::ProbeUngated,
                            message: format!(
                                "probe call `{}` is not inside an `if P::ENABLED` gate — \
                                 `NoProbe` cannot dead-code-eliminate this site",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// U1: crate roots must carry `#![forbid(unsafe_code)]` (or at minimum
/// `deny`), and any `unsafe` token anywhere needs a `// SAFETY:` comment
/// within the three lines above it.
fn check_unsafe(ctx: &FileCtx<'_>, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    if ctx.is_crate_root {
        let has_forbid = toks.iter().enumerate().any(|(i, t)| {
            t.kind == TokKind::Ident
                && t.text == "unsafe_code"
                && (i.saturating_sub(3)..i)
                    .any(|j| toks[j].text == "forbid" || toks[j].text == "deny")
        });
        if !has_forbid {
            out.push(Finding {
                file: ctx.rel_path.to_string(),
                line: 1,
                rule: Rule::Unsafe,
                message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            let documented = lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
            });
            if !documented {
                out.push(Finding {
                    file: ctx.rel_path.to_string(),
                    line: t.line,
                    rule: Rule::Unsafe,
                    message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx {
            rel_path: "test.rs",
            is_crate_root: false,
            in_tests_dir: false,
        };
        analyze_file(&ctx, &lex(src)).0
    }

    #[test]
    fn d1_fires_on_use_and_path_not_on_comment() {
        let f = run("use std::time::Instant;\n// Instant\nfn f() { let t = Instant::now(); }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::WallClock).count(), 2);
    }

    #[test]
    fn allow_on_same_or_previous_line_suppresses_and_counts() {
        let src = "// analyze:allow(wall_clock): telemetry only\nuse std::time::Instant;\n";
        let ctx = FileCtx {
            rel_path: "t.rs",
            is_crate_root: false,
            in_tests_dir: false,
        };
        let (f, used) = analyze_file(&ctx, &lex(src));
        assert!(f.is_empty(), "unexpected: {f:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let f = run("// analyze:allow(wall_clock): nothing here\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::StaleAllow);
    }

    #[test]
    fn bad_annotation_key_and_missing_reason_are_findings() {
        let f = run("// analyze:allow(wibble): x\nfn f() {}\n");
        assert_eq!(f[0].rule, Rule::BadAnnotation);
        let f = run("// analyze:allow(wall_clock)\nuse std::time::Instant;\n");
        assert!(f.iter().any(|f| f.rule == Rule::BadAnnotation));
    }

    #[test]
    fn d3_gated_ok_ungated_fires_test_scope_exempt() {
        let gated = "fn f<P: Probe>(probe: &mut P) { if P::ENABLED { probe.on_event(1); } }";
        assert!(run(gated).is_empty());
        let ungated = "fn f<P: Probe>(probe: &mut P) { probe.on_event(1); }";
        assert_eq!(run(ungated)[0].rule, Rule::ProbeUngated);
        let chained = "fn f(sim: &mut S) { sim.probe_mut().on_round_end(&i); }";
        assert_eq!(run(chained)[0].rule, Rule::ProbeUngated);
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t(probe: &mut P) { probe.on_event(1); }\n}";
        assert!(run(test_mod).is_empty());
    }

    #[test]
    fn d3_compound_condition_counts_as_gate() {
        let src =
            "fn f<P: Probe>(p: &mut P, n: u32) { if P::ENABLED && n > 0 { p.probe.on_x(n); } }";
        assert!(run(src).is_empty());
        // An `else` branch of a gated `if` is NOT gated.
        let bad = "fn f<P: Probe>(probe: &mut P) { if P::ENABLED { } else { probe.on_x(1); } }";
        assert_eq!(run(bad)[0].rule, Rule::ProbeUngated);
    }

    #[test]
    fn d2_flags_iteration_only_in_export_files() {
        let export = "use serde_json; fn f() { let m: HashMap<u32, u32> = HashMap::new(); \
                      for (k, v) in &m { emit(k, v); } }";
        let f = run(export);
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::UnorderedExport).count(),
            1
        );
        // Same code without the export marker: out of D2 scope.
        let plain = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); \
                     for (k, v) in &m { emit(k, v); } }";
        assert!(run(plain).is_empty());
        // Membership-only use in an export file is fine.
        let lookup = "use serde_json; fn f() { let m = HashMap::new(); m.insert(1, 2); \
                      let _ = m.contains_key(&1); }";
        assert!(run(lookup).is_empty());
        // BTreeMap iteration is fine.
        let btree = "use serde_json; fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); \
                     for (k, v) in &m { emit(k, v); } }";
        assert!(run(btree).is_empty());
    }

    #[test]
    fn d2_method_iteration_and_full_paths() {
        let src = "use serde_json; fn f() { \
                   let s: std::collections::HashSet<u32> = std::collections::HashSet::new(); \
                   for x in s.iter() { emit(x); } }";
        let f = run(src);
        assert!(f.iter().any(|f| f.rule == Rule::UnorderedExport));
    }

    #[test]
    fn d4_fires_on_entropy_names() {
        let f = run("fn f() { let r = StdRng::from_entropy(); }");
        assert_eq!(f[0].rule, Rule::Rng);
    }

    #[test]
    fn u1_crate_root_and_safety_comments() {
        let ctx = FileCtx {
            rel_path: "src/lib.rs",
            is_crate_root: true,
            in_tests_dir: false,
        };
        let (f, _) = analyze_file(&ctx, &lex("pub fn f() {}"));
        assert!(f.iter().any(|f| f.rule == Rule::Unsafe && f.line == 1));
        let (f, _) = analyze_file(&ctx, &lex("#![forbid(unsafe_code)]\npub fn f() {}"));
        assert!(f.is_empty());
        // SAFETY comment within 3 lines above the unsafe token passes.
        let good = "// SAFETY: ffi contract upheld by construction\nunsafe { party() }";
        let bad = "unsafe { party() }";
        assert!(run(good).is_empty());
        assert_eq!(run(bad)[0].rule, Rule::Unsafe);
    }
}
