//! Finding model and the two deterministic renderers (human, JSON).
//!
//! Ordering contract: findings are sorted by `(file, line, rule code,
//! message)` before rendering, so equal trees produce byte-identical
//! reports — the same property the trace journals pin, applied to the
//! analyzer's own output.

use std::fmt::Write as _;

/// The machine-checked rules. `code()` is the short id used in reports;
/// `key()` is the name the allow-annotation grammar uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// D1 — wall-clock types in deterministic code.
    WallClock,
    /// D2 — hash-ordered iteration in an export path.
    UnorderedExport,
    /// D3 — probe instrumentation not gated on `P::ENABLED`.
    ProbeUngated,
    /// D4 — entropy / OS seeding.
    Rng,
    /// U1 — unsafe hygiene (`forbid(unsafe_code)` + `// SAFETY:`).
    Unsafe,
    /// S1 — shim public surface vs the README provenance table.
    ShimSurface,
    /// An `analyze:allow` annotation that no longer suppresses anything.
    StaleAllow,
    /// A malformed `analyze:allow` annotation (unknown rule key or
    /// missing reason).
    BadAnnotation,
}

impl Rule {
    /// Short report id (`D1`…`S1`, `A0`/`A1` for annotation hygiene).
    pub fn code(self) -> &'static str {
        match self {
            Rule::WallClock => "D1",
            Rule::UnorderedExport => "D2",
            Rule::ProbeUngated => "D3",
            Rule::Rng => "D4",
            Rule::Unsafe => "U1",
            Rule::ShimSurface => "S1",
            Rule::StaleAllow => "A0",
            Rule::BadAnnotation => "A1",
        }
    }

    /// Allow-annotation key (`// analyze:allow(<key>): reason`).
    /// `StaleAllow`/`BadAnnotation` are meta-rules and cannot be
    /// allowlisted; `ShimSurface`'s escape hatch is the table itself.
    pub fn key(self) -> &'static str {
        match self {
            Rule::WallClock => "wall_clock",
            Rule::UnorderedExport => "unordered_export",
            Rule::ProbeUngated => "probe_ungated",
            Rule::Rng => "rng",
            Rule::Unsafe => "unsafe",
            Rule::ShimSurface => "shim_surface",
            Rule::StaleAllow => "stale_allow",
            Rule::BadAnnotation => "bad_annotation",
        }
    }

    /// The keys accepted inside an allow annotation.
    pub fn allowable_keys() -> &'static [&'static str] {
        &[
            "wall_clock",
            "unordered_export",
            "probe_ungated",
            "rng",
            "unsafe",
        ]
    }
}

/// One violation (or annotation-hygiene problem) at a source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human explanation (stable text — part of the report contract).
    pub message: String,
}

/// Analysis result over a whole tree.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Surviving findings, sorted (see module docs).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Number of allow annotations that suppressed a live finding.
    pub allows_used: usize,
}

impl Analysis {
    /// Sorts findings into the canonical report order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule.code(), &a.message).cmp(&(
                &b.file,
                b.line,
                b.rule.code(),
                &b.message,
            ))
        });
    }

    /// Renders the human report. Deterministic; ends with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{} {:<16} {}:{}  {}",
                f.rule.code(),
                f.rule.key(),
                f.file,
                f.line,
                f.message
            );
        }
        let _ = writeln!(
            out,
            "shc-analyze: {} finding(s) across {} file(s) scanned ({} allow annotation(s) in use)",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        );
        out
    }

    /// Renders the JSON artifact (hand-rolled — the analyzer is
    /// zero-dependency by design). Key order is fixed.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allows_used\": {},", self.allows_used);
        let _ = writeln!(out, "  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"key\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}",
                f.rule.code(),
                f.rule.key(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the only JSON this crate emits).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_order_is_canonical_and_render_is_deterministic() {
        let mut a = Analysis {
            findings: vec![
                Finding {
                    file: "b.rs".into(),
                    line: 2,
                    rule: Rule::Rng,
                    message: "x".into(),
                },
                Finding {
                    file: "a.rs".into(),
                    line: 9,
                    rule: Rule::WallClock,
                    message: "y".into(),
                },
            ],
            files_scanned: 2,
            allows_used: 0,
        };
        a.sort();
        assert_eq!(a.findings[0].file, "a.rs");
        let h1 = a.render_human();
        let j1 = a.render_json();
        a.sort();
        assert_eq!(h1, a.render_human());
        assert_eq!(j1, a.render_json());
        assert!(j1.contains("\"rule\": \"D4\""));
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
