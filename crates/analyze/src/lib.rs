//! `shc-analyze` — determinism-contract static analysis for the
//! sparse-hypercube workspace.
//!
//! Every headline claim this repository makes — 20/20 paper experiments
//! reproduced, reports byte-identical for 1 vs N worker threads, trace
//! journals byte-diffed in CI — rests on a written determinism
//! contract. Runtime tests can only catch a violation *after* it fires;
//! this crate enforces the contract at the source level, before a
//! nondeterminism source can become a flaky byte-diff.
//!
//! # Rules
//!
//! | Rule | Key | Checks |
//! |------|-----|--------|
//! | D1 | `wall_clock` | `std::time::Instant`/`SystemTime` never enter deterministic code (telemetry/bench sites carry inline allows) |
//! | D2 | `unordered_export` | no hash-ordered iteration in JSON/journal/report export paths |
//! | D3 | `probe_ungated` | every probe call site is gated on `P::ENABLED` so `NoProbe` dead-code-eliminates it |
//! | D4 | `rng` | no entropy/OS seeding — seeds flow from specs |
//! | U1 | `unsafe` | `#![forbid(unsafe_code)]` on crate roots; `// SAFETY:` on any `unsafe` |
//! | S1 | `shim_surface` | shim public surface matches the `shims/README.md` provenance table |
//!
//! Exceptions use the inline grammar
//! `// analyze:allow(<key>): <reason>` — mandatory reason, and a stale
//! annotation (one that no longer suppresses anything) is itself a
//! finding, so the exception list can never rot. See `docs/ANALYSIS.md`
//! for the full catalog, the exact lexical heuristics, and CI wiring.
//!
//! The analyzer is deliberately **zero-dependency** (no registry access
//! in this environment, so no `syn`; and the gate must not be able to
//! break itself through a crate it gates): a hand-rolled comment- and
//! string-aware lexer ([`lexer`]) feeds lexical rules ([`rules`]), a
//! shim-surface differ ([`shim_api`]), and deterministic renderers
//! ([`report`]).
//!
//! # Example
//!
//! ```
//! use shc_analyze::{lexer, rules};
//!
//! let src = "use std::time::Instant;\n";
//! let ctx = rules::FileCtx { rel_path: "x.rs", is_crate_root: false, in_tests_dir: false };
//! let (findings, _) = rules::analyze_file(&ctx, &lexer::lex(src));
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule.code(), "D1");
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod shim_api;

pub use report::{Analysis, Finding, Rule};
pub use scan::analyze_workspace;
