//! Workspace discovery and orchestration: walks the source tree in a
//! deterministic (sorted) order, runs the per-file rules, then the
//! workspace-level S1 shim audit, and folds everything into one sorted
//! [`Analysis`].

use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::report::Analysis;
use crate::rules::{analyze_file, FileCtx};
use crate::shim_api;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Top-level roots scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["src", "tests", "examples", "crates", "shims"];

/// Recursively collects `.rs` files under `dir` (sorted by path so the
/// scan order — and therefore the report — is deterministic).
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|s| s.to_string_lossy().into_owned());
            if name.as_deref().is_some_and(|n| SKIP_DIRS.contains(&n)) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative path with `/` separators (report/JSON stability across
/// platforms).
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// True for files that are crate roots and therefore must carry
/// `#![forbid(unsafe_code)]` (rule U1): every `src/lib.rs`,
/// `src/main.rs`, and `src/bin/*.rs` in the tree.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"))
}

/// True for integration-test files (D3 exempt — tests drive probes
/// directly on purpose).
fn in_tests_dir(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

/// Analyzes the workspace rooted at `root`: every per-file rule over
/// every discovered source file, plus the S1 shim audit.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs_files(&root.join(sub), &mut files)?;
    }
    let mut analysis = Analysis::default();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let lexed = lex(&text);
        let ctx = FileCtx {
            rel_path: &rel,
            is_crate_root: is_crate_root(&rel),
            in_tests_dir: in_tests_dir(&rel),
        };
        let (findings, used) = analyze_file(&ctx, &lexed);
        analysis.findings.extend(findings);
        analysis.allows_used += used;
        analysis.files_scanned += 1;
    }
    let shim_sources = shim_api::lex_shim_sources(root)?;
    if !shim_sources.is_empty() {
        let readme = std::fs::read_to_string(root.join("shims/README.md")).ok();
        analysis
            .findings
            .extend(shim_api::audit_shims(readme.as_deref(), &shim_sources));
    }
    analysis.sort();
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/netsim/src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/exp_perf.rs"));
        assert!(!is_crate_root("crates/netsim/src/engine.rs"));
        assert!(!is_crate_root("crates/netsim/tests/flows.rs"));
    }

    #[test]
    fn tests_dir_detection() {
        assert!(in_tests_dir("tests/smoke.rs"));
        assert!(in_tests_dir("crates/netsim/tests/flows.rs"));
        assert!(!in_tests_dir("crates/netsim/src/engine.rs"));
    }
}
