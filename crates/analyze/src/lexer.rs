//! A hand-rolled, comment- and string-aware Rust lexer.
//!
//! The build environment has no registry access, so `syn` is not an
//! option; this lexer implements exactly the token model the rules in
//! [`crate::rules`] need:
//!
//! * identifiers and keywords (both come out as [`TokKind::Ident`] —
//!   rules match on text),
//! * punctuation, with the handful of two/three-character operators
//!   that matter for pattern matching (`::`, `->`, `=>`, `..`, …)
//!   merged into single tokens,
//! * literals (string / raw string / byte string / char / number)
//!   reduced to opaque tokens so that a forbidden name inside a string
//!   can never produce a finding,
//! * comments, kept **separately** from the token stream with their
//!   line spans, because the allow-annotation grammar and the
//!   `// SAFETY:` convention live in comments.
//!
//! Every token records the 1-based source line it starts on; findings
//! and annotation matching are line-oriented.

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`, …).
    Ident,
    /// Punctuation; multi-character operators are merged (see module docs).
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal (`42`, `0x1f`, `1_000.5e3`, `3u64`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One source token with its starting line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// Token text. For literals this is the raw source slice.
    pub text: String,
    /// Lexical class.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including its `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for `//`).
    pub end_line: u32,
}

/// A fully lexed source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Two/three-character operators merged into single punct tokens.
/// Ordered longest-first so maximal munch is a prefix scan.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply consume to end-of-file (the compiler, not the
/// analyzer, owns syntax errors).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
                end_line: line,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: start_line,
                end_line: line,
            });
            continue;
        }
        // Identifiers, raw identifiers, and string-prefix forms
        // (r"", r#""#, b"", br"", c"", cr"", b'').
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            let prefix_raw = matches!(word.as_str(), "r" | "br" | "cr");
            let prefix_plain = matches!(word.as_str(), "b" | "c");
            if prefix_raw && matches!(next, Some('"') | Some('#')) {
                // Raw (possibly byte/C) string: r##"…"##.
                let lit_start = start;
                let start_line = line;
                let mut hashes = 0usize;
                while i < n && chars[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && chars[i] == '"' {
                    i += 1;
                    'raw: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut j = i + 1;
                            let mut seen = 0usize;
                            while j < n && chars[j] == '#' && seen < hashes {
                                seen += 1;
                                j += 1;
                            }
                            if seen == hashes {
                                i = j;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    out.tokens.push(Token {
                        text: chars[lit_start..i].iter().collect(),
                        kind: TokKind::Str,
                        line: start_line,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through by re-lexing
                // the identifier after the single `#`.
                let id_start = i;
                while i < n && is_ident_cont(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    text: chars[id_start..i].iter().collect(),
                    kind: TokKind::Ident,
                    line,
                });
                continue;
            }
            if prefix_plain && next == Some('"') {
                // b"…" / c"…": cooked string with escapes.
                let start_line = line;
                i += 1; // opening quote
                consume_cooked_string(&chars, &mut i, &mut line, '"');
                out.tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokKind::Str,
                    line: start_line,
                });
                continue;
            }
            if word == "b" && next == Some('\'') {
                let start_line = line;
                i += 1;
                consume_cooked_string(&chars, &mut i, &mut line, '\'');
                out.tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokKind::Char,
                    line: start_line,
                });
                continue;
            }
            out.tokens.push(Token {
                text: word,
                kind: TokKind::Ident,
                line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            consume_cooked_string(&chars, &mut i, &mut line, '"');
            out.tokens.push(Token {
                text: chars[start..i].iter().collect(),
                kind: TokKind::Str,
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote.
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_cont(chars[j]) {
                    j += 1;
                }
                if j >= n || chars[j] != '\'' {
                    out.tokens.push(Token {
                        text: chars[i..j].iter().collect(),
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            let start = i;
            let start_line = line;
            i += 1;
            consume_cooked_string(&chars, &mut i, &mut line, '\'');
            out.tokens.push(Token {
                text: chars[start..i].iter().collect(),
                kind: TokKind::Char,
                line: start_line,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n {
                let d = chars[i];
                if d.is_alphanumeric()
                    || d == '_'
                    || (d == '.'
                        && i + 1 < n
                        && chars[i + 1].is_ascii_digit()
                        && chars[i - 1] != '.')
                {
                    i += 1;
                } else if (d == '+' || d == '-')
                    && matches!(chars[i - 1], 'e' | 'E')
                    && chars[start] != '0'
                {
                    // Exponent sign (1e+3); hex 0xE+1 is an expression,
                    // but hex literals start with 0.
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                text: chars[start..i].iter().collect(),
                kind: TokKind::Num,
                line,
            });
            continue;
        }
        // Punctuation with maximal munch over the merged-operator table.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let oc: Vec<char> = op.chars().collect();
            if i + oc.len() <= n && chars[i..i + oc.len()] == oc[..] {
                out.tokens.push(Token {
                    text: (*op).to_string(),
                    kind: TokKind::Punct,
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if !matched {
            out.tokens.push(Token {
                text: c.to_string(),
                kind: TokKind::Punct,
                line,
            });
            i += 1;
        }
    }
    out
}

/// Consumes a cooked (escape-aware) string/char body up to the closing
/// `delim`, leaving `i` just past it. Counts newlines into `line`.
fn consume_cooked_string(chars: &[char], i: &mut usize, line: &mut u32, delim: char) {
    let n = chars.len();
    while *i < n {
        let c = chars[*i];
        if c == '\\' {
            *i += 2;
            continue;
        }
        if c == '\n' {
            *line += 1;
        }
        *i += 1;
        if c == delim {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // Instant in a comment
            /* SystemTime in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"SystemTime"#;
            let real = Foo;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"Foo".to_string()));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("Instant"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'y'"));
    }

    #[test]
    fn pathsep_is_one_token_and_lines_track() {
        let lx = lex("a::b\nc");
        let texts: Vec<_> = lx.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b", "c"]);
        assert_eq!(lx.tokens[3].line, 2);
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let lx = lex("for i in 0..n {}");
        let texts: Vec<_> = lx.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"..") && texts.contains(&"0") && texts.contains(&"n"));
    }

    #[test]
    fn raw_identifier_lexes() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn block_comment_spans_lines() {
        let lx = lex("/* a\nb\nc */ x");
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[0].end_line, 3);
        assert_eq!(lx.tokens[0].line, 3);
    }
}
