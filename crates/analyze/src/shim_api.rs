//! Rule S1: the shim-surface audit.
//!
//! The offline shims under `shims/` stand in for real registry crates;
//! the whole swap-back story in `shims/README.md` depends on the README
//! provenance table actually describing what each shim exposes. This
//! module extracts every shim's *named public surface* from source and
//! diffs it — in both directions — against the machine-readable table
//! in the README (the fenced block whose info string is
//! `analyze:shim-api`):
//!
//! * an exposed item missing from the table ⇒ undocumented surface
//!   (silent drift from the real crate),
//! * a table entry with no matching item ⇒ stale provenance.
//!
//! "Named public surface" means: `pub fn/struct/enum/union/trait/
//! type/const/static/mod` items (including `pub fn` methods in inherent
//! impls), the implicitly-public `fn`/`type`/`const` members declared
//! directly inside a `pub trait` body, `pub use` re-export leaves, and
//! `#[macro_export]` macros. `pub(crate)`-restricted items and
//! `#[cfg(test)]` scopes are excluded. Item *names* are compared (not
//! full paths or signatures) — coarse, but exactly the granularity of
//! the README table, and regenerable with `shc-analyze --dump-shim-api`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lexer::{lex, Lexed, TokKind};
use crate::report::{Finding, Rule};

/// Item keywords whose following identifier is the item name.
const NAMED_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "union", "trait", "type", "const", "static", "mod",
];

/// Extracts the named public surface of one lexed source file.
/// Returns `name -> first line it was declared on`.
pub fn extract_surface(lexed: &Lexed) -> BTreeMap<String, u32> {
    let toks = &lexed.tokens;
    let mut out: BTreeMap<String, u32> = BTreeMap::new();
    fn add(out: &mut BTreeMap<String, u32>, name: &str, line: u32) {
        out.entry(name.to_string()).or_insert(line);
    }

    // Scope kinds for the brace walk.
    #[derive(Clone, Copy, PartialEq)]
    enum Scope {
        Normal,
        PubTrait,
        Test,
    }
    let mut stack: Vec<Scope> = vec![Scope::Normal];
    let mut pending: Vec<(usize, Scope)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let in_test = stack.contains(&Scope::Test);
        match t.text.as_str() {
            "#" => {
                // `#[cfg(test)]` / `#[test]`: the next item body is a test
                // scope. `#[macro_export]`: collect the macro name.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|u| u.text == "!") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|u| u.text == "[") {
                    let mut depth = 0i32;
                    let mut names_test = false;
                    let mut macro_export = false;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" => names_test = true,
                            "macro_export" => macro_export = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if names_test || macro_export {
                        let mut depth = 0i32;
                        let mut k = j + 1;
                        while k < toks.len() {
                            match toks[k].text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "{" if depth == 0 => {
                                    if names_test {
                                        pending.push((k, Scope::Test));
                                    }
                                    break;
                                }
                                ";" if depth == 0 => break,
                                _ => {
                                    if macro_export
                                        && !in_test
                                        && toks[k].text == "macro_rules"
                                        && toks.get(k + 1).is_some_and(|u| u.text == "!")
                                    {
                                        if let Some(name) = toks.get(k + 2) {
                                            add(&mut out, &name.text, name.line);
                                        }
                                    }
                                }
                            }
                            k += 1;
                        }
                        i = j;
                    }
                }
            }
            "pub" if !in_test => {
                let mut j = i + 1;
                // `pub(crate)` / `pub(super)` / `pub(in …)` are not
                // public surface.
                if toks.get(j).is_some_and(|u| u.text == "(") {
                    i += 1;
                    continue;
                }
                // Skip `unsafe`/`async`/`extern "C"` qualifiers.
                while toks
                    .get(j)
                    .is_some_and(|u| matches!(u.text.as_str(), "unsafe" | "async" | "extern"))
                    || toks.get(j).is_some_and(|u| u.kind == TokKind::Str)
                {
                    j += 1;
                }
                if let Some(kw) = toks.get(j) {
                    if NAMED_ITEM_KEYWORDS.contains(&kw.text.as_str()) {
                        // `pub trait Name` additionally marks its body so
                        // implicitly-public members get collected.
                        if let Some(name) = toks.get(j + 1) {
                            if name.kind == TokKind::Ident {
                                add(&mut out, &name.text, name.line);
                            }
                        }
                        if kw.text == "trait" {
                            let mut depth = 0i32;
                            let mut k = j + 1;
                            while k < toks.len() {
                                match toks[k].text.as_str() {
                                    "(" | "[" => depth += 1,
                                    ")" | "]" => depth -= 1,
                                    "{" if depth == 0 => {
                                        pending.push((k, Scope::PubTrait));
                                        break;
                                    }
                                    ";" if depth == 0 => break,
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                    } else if kw.text == "use" {
                        collect_use_leaves(toks, j + 1, &mut |name, line| {
                            out.entry(name.to_string()).or_insert(line);
                        });
                    }
                }
            }
            "{" => {
                let scope = pending
                    .iter()
                    .find(|(p, _)| *p == i)
                    .map(|(_, s)| *s)
                    .unwrap_or(Scope::Normal);
                pending.retain(|(p, _)| *p != i);
                stack.push(scope);
            }
            "}" if stack.len() > 1 => {
                stack.pop();
            }
            // Implicitly-public members declared directly in a `pub
            // trait` body (depth check: the innermost scope is the trait
            // itself, not a default method body).
            "fn" | "type" | "const"
                if *stack.last().expect("stack nonempty") == Scope::PubTrait =>
            {
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        out.entry(name.text.clone()).or_insert(name.line);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Collects the leaf names of a `pub use` declaration starting at token
/// index `start` (just past `use`): the last path segment, an `as`
/// alias when present, every entry of a `{…}` group (non-nested groups
/// cover the shims), or `*` for a glob.
fn collect_use_leaves(toks: &[crate::lexer::Token], start: usize, add: &mut dyn FnMut(&str, u32)) {
    let mut leaf: Option<(String, u32)> = None;
    let mut j = start;
    while j < toks.len() && toks[j].text != ";" {
        let t = &toks[j];
        match t.text.as_str() {
            "::" => {}
            "as" => {
                // Alias overrides the path leaf.
                if let Some(alias) = toks.get(j + 1) {
                    leaf = Some((alias.text.clone(), alias.line));
                    j += 1;
                }
            }
            // A `{` means the pending segment was a path prefix (`use a::{..}`,
            // `use crate::{..}`), not an importable leaf — discard it.
            "{" => leaf = None,
            "," => {
                if let Some((name, line)) = leaf.take() {
                    add(&name, line);
                }
            }
            "}" => {
                if let Some((name, line)) = leaf.take() {
                    add(&name, line);
                }
            }
            "*" => leaf = Some(("*".to_string(), t.line)),
            _ if t.kind == TokKind::Ident => leaf = Some((t.text.clone(), t.line)),
            _ => {}
        }
        j += 1;
    }
    if let Some((name, line)) = leaf {
        add(&name, line);
    }
}

/// Parses the `analyze:shim-api` fenced block out of `shims/README.md`.
/// Returns `crate -> (set of item names, line of the crate's row)`.
/// A missing block is reported as a finding by [`audit_shims`].
pub fn parse_provenance(md: &str) -> BTreeMap<String, (BTreeSet<String>, u32)> {
    let mut out = BTreeMap::new();
    let mut in_block = false;
    for (idx, raw) in md.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with("```") {
            if in_block {
                break;
            }
            in_block = line.trim_start_matches('`').trim() == "analyze:shim-api";
            continue;
        }
        if !in_block || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, items)) = line.split_once(':') {
            let entry = out
                .entry(name.trim().to_string())
                .or_insert_with(|| (BTreeSet::new(), lineno));
            for item in items.split(',') {
                let item = item.trim();
                if !item.is_empty() {
                    entry.0.insert(item.to_string());
                }
            }
        }
    }
    out
}

/// Runs the S1 audit over `<root>/shims`. `sources` maps each shim
/// crate name to its lexed `src/*.rs` files with repo-relative paths.
pub fn audit_shims(
    readme: Option<&str>,
    sources: &BTreeMap<String, Vec<(String, Lexed)>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(readme) = readme else {
        findings.push(Finding {
            file: "shims/README.md".to_string(),
            line: 1,
            rule: Rule::ShimSurface,
            message: "shims/README.md not found — rule S1 has no provenance table".to_string(),
        });
        return findings;
    };
    let table = parse_provenance(readme);
    if table.is_empty() {
        findings.push(Finding {
            file: "shims/README.md".to_string(),
            line: 1,
            rule: Rule::ShimSurface,
            message: "no `analyze:shim-api` fenced block in shims/README.md — record the \
                      public surface of every shim (regenerate with --dump-shim-api)"
                .to_string(),
        });
        return findings;
    }
    for (krate, files) in sources {
        let mut surface: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for (rel, lexed) in files {
            for (name, line) in extract_surface(lexed) {
                surface.entry(name).or_insert((rel.clone(), line));
            }
        }
        let (documented, table_line) = match table.get(krate) {
            Some((set, line)) => (set.clone(), *line),
            None => {
                findings.push(Finding {
                    file: "shims/README.md".to_string(),
                    line: 1,
                    rule: Rule::ShimSurface,
                    message: format!(
                        "shim crate `{krate}` has no row in the analyze:shim-api table"
                    ),
                });
                continue;
            }
        };
        for (name, (rel, line)) in &surface {
            if !documented.contains(name) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: *line,
                    rule: Rule::ShimSurface,
                    message: format!(
                        "public item `{name}` of shim `{krate}` is not recorded in the \
                         shims/README.md provenance table"
                    ),
                });
            }
        }
        for name in &documented {
            if !surface.contains_key(name) {
                findings.push(Finding {
                    file: "shims/README.md".to_string(),
                    line: table_line,
                    rule: Rule::ShimSurface,
                    message: format!(
                        "provenance table records `{name}` for shim `{krate}` but the shim \
                         exposes no such item (stale entry)"
                    ),
                });
            }
        }
    }
    for krate in table.keys() {
        if !sources.contains_key(krate) {
            findings.push(Finding {
                file: "shims/README.md".to_string(),
                line: table[krate].1,
                rule: Rule::ShimSurface,
                message: format!("provenance table row `{krate}` matches no crate under shims/"),
            });
        }
    }
    findings
}

/// Renders the canonical `analyze:shim-api` block for `--dump-shim-api`
/// (paste into shims/README.md to re-bless the table).
pub fn render_table(sources: &BTreeMap<String, Vec<(String, Lexed)>>) -> String {
    let mut out = String::from("```analyze:shim-api\n");
    for (krate, files) in sources {
        let mut names: BTreeSet<String> = BTreeSet::new();
        for (_, lexed) in files {
            names.extend(extract_surface(lexed).into_keys());
        }
        let list: Vec<String> = names.into_iter().collect();
        out.push_str(&format!("{krate}: {}\n", list.join(", ")));
    }
    out.push_str("```\n");
    out
}

/// Lexes every `src/**/*.rs` of every shim under `<root>/shims`,
/// keyed by crate (directory) name. Paths come back repo-relative.
pub fn lex_shim_sources(root: &Path) -> std::io::Result<BTreeMap<String, Vec<(String, Lexed)>>> {
    let mut out = BTreeMap::new();
    let shims = root.join("shims");
    if !shims.is_dir() {
        return Ok(out);
    }
    let mut dirs: Vec<_> = std::fs::read_dir(&shims)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        let mut files = Vec::new();
        let mut rs_files = Vec::new();
        crate::scan::collect_rs_files(&src, &mut rs_files)?;
        for path in rs_files {
            let text = std::fs::read_to_string(&path)?;
            let rel = crate::scan::rel_path(root, &path);
            files.push((rel, lex(&text)));
        }
        if !files.is_empty() {
            out.insert(name, files);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_items_traits_methods_and_reexports() {
        let src = r#"
            pub struct Foo;
            pub(crate) struct Hidden;
            pub trait Bar {
                type Out;
                const K: u32;
                fn method(&self) -> u32 {
                    fn local_helper() {}
                    local_helper();
                    0
                }
            }
            impl Foo {
                pub fn new() -> Self { Foo }
                fn private(&self) {}
            }
            pub use other::{Alpha, beta as Gamma};
            pub mod inner { pub fn nested() {} }
            #[macro_export]
            macro_rules! shout { () => {}; }
            #[cfg(test)]
            mod tests { pub fn invisible() {} }
        "#;
        let names: Vec<String> = extract_surface(&lex(src)).into_keys().collect();
        for expected in [
            "Foo", "Bar", "Out", "K", "method", "new", "Alpha", "Gamma", "inner", "nested", "shout",
        ] {
            assert!(
                names.contains(&expected.to_string()),
                "missing {expected}: {names:?}"
            );
        }
        for absent in ["Hidden", "private", "local_helper", "invisible", "beta"] {
            assert!(!names.contains(&absent.to_string()), "unexpected {absent}");
        }
    }

    #[test]
    fn provenance_roundtrip_and_both_diff_directions() {
        let mut sources = BTreeMap::new();
        sources.insert(
            "mini".to_string(),
            vec![(
                "shims/mini/src/lib.rs".to_string(),
                lex("pub fn visible() {}\npub struct Extra;"),
            )],
        );
        let good = "x\n```analyze:shim-api\nmini: visible, Extra\n```\n";
        assert!(audit_shims(Some(good), &sources).is_empty());
        // Undocumented item.
        let missing = "```analyze:shim-api\nmini: visible\n```\n";
        let f = audit_shims(Some(missing), &sources);
        assert!(f.iter().any(|f| f.message.contains("`Extra`")));
        // Stale entry.
        let stale = "```analyze:shim-api\nmini: visible, Extra, Ghost\n```\n";
        let f = audit_shims(Some(stale), &sources);
        assert!(f
            .iter()
            .any(|f| f.message.contains("`Ghost`") && f.message.contains("stale")));
        // Unknown crate row + missing row.
        let rows = "```analyze:shim-api\nother: thing\n```\n";
        let f = audit_shims(Some(rows), &sources);
        assert!(f.iter().any(|f| f.message.contains("no row")));
        assert!(f.iter().any(|f| f.message.contains("matches no crate")));
    }

    #[test]
    fn dump_matches_parse() {
        let mut sources = BTreeMap::new();
        sources.insert(
            "mini".to_string(),
            vec![(
                "shims/mini/src/lib.rs".to_string(),
                lex("pub fn a() {}\npub fn b() {}"),
            )],
        );
        let table = render_table(&sources);
        assert!(audit_shims(Some(&table), &sources).is_empty());
    }
}
