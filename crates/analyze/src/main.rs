//! CLI for `shc-analyze`. CI gate:
//!
//! ```text
//! cargo run --release -p shc-analyze -- --deny-all --json analysis.json
//! ```
//!
//! Exit codes: 0 clean (or advisory mode), 1 findings under
//! `--deny-all`, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "shc-analyze — determinism-contract static analysis (see docs/ANALYSIS.md)\n\
     \n\
     USAGE: shc-analyze [--root <dir>] [--deny-all] [--json <path>] [--dump-shim-api]\n\
     \n\
     --root <dir>      workspace root to scan (default: current directory)\n\
     --deny-all        exit 1 if any finding survives (the CI gate)\n\
     --json <path>     also write the findings artifact as JSON\n\
     --dump-shim-api   print the canonical shims/README.md provenance block and exit\n\
     --help            this text\n"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut json_path: Option<PathBuf> = None;
    let mut dump_shim_api = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--json needs a value\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--dump-shim-api" => dump_shim_api = true,
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if dump_shim_api {
        return match shc_analyze::shim_api::lex_shim_sources(&root) {
            Ok(sources) => {
                print!("{}", shc_analyze::shim_api::render_table(&sources));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shc-analyze: {e}");
                ExitCode::from(2)
            }
        };
    }

    let analysis = match shc_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shc-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", analysis.render_human());
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, analysis.render_json()) {
            eprintln!("shc-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if deny_all && !analysis.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
