//! Summary statistics of a sparse hypercube vs. the full hypercube
//! baseline — the quantities behind the paper's headline comparison
//! ("reduce the maximum degree from `n` to at most `(2k−1)·⌈(n−k)^{1/k}⌉`").

use crate::bounds;
use crate::construction::SparseHypercube;
use serde::{Deserialize, Serialize};

/// Degree/edge statistics of a construction compared against `Q_n`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShcStats {
    /// Cube dimension `n` (`N = 2^n`).
    pub n: u32,
    /// Call-length parameter `k`.
    pub k: u32,
    /// The parameter vector `[n_1, …, n]`.
    pub dims: Vec<u32>,
    /// `2^n`.
    pub num_vertices: u64,
    /// Exact maximum degree of the construction.
    pub max_degree: u64,
    /// `Δ(Q_n) = n`.
    pub hypercube_degree: u32,
    /// Exact edge count of the construction.
    pub num_edges: u64,
    /// `|E(Q_n)| = n · 2^(n−1)`.
    pub hypercube_edges: u64,
    /// The applicable paper upper bound on `Δ` (Theorem 5 for `k = 2`,
    /// Theorem 7 for `k >= 3`).
    pub paper_upper_bound: u64,
    /// The applicable paper lower bound on `Δ` (Theorems 2–3).
    pub paper_lower_bound: u64,
}

impl ShcStats {
    /// Gathers the statistics for a constructed graph.
    #[must_use]
    pub fn for_graph(g: &SparseHypercube) -> Self {
        let n = g.n();
        let k = g.k();
        let upper = if k == 2 {
            bounds::thm5_upper_bound(n)
        } else {
            bounds::thm7_upper_bound(k, n)
        };
        Self {
            n,
            k,
            dims: g.params().to_vec(),
            num_vertices: g.num_vertices(),
            max_degree: g.max_degree() as u64,
            hypercube_degree: n,
            num_edges: g.num_edges(),
            hypercube_edges: u64::from(n) << (n - 1),
            paper_upper_bound: upper,
            paper_lower_bound: bounds::lower_bound(k, n),
        }
    }

    /// Fraction of hypercube edges retained (`|E(G)| / |E(Q_n)|`).
    #[must_use]
    pub fn edge_ratio(&self) -> f64 {
        self.num_edges as f64 / self.hypercube_edges as f64
    }

    /// Degree reduction factor (`n / Δ(G)`).
    #[must_use]
    pub fn degree_reduction(&self) -> f64 {
        f64::from(self.hypercube_degree) / self.max_degree as f64
    }

    /// Ratio of achieved degree to the paper's lower bound (the measured
    /// tightness of Corollary 2).
    #[must_use]
    pub fn tightness(&self) -> f64 {
        self.max_degree as f64 / self.paper_lower_bound as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::SparseHypercube;

    #[test]
    fn g153_stats_match_example3() {
        let g = SparseHypercube::construct_base(15, 3);
        let s = ShcStats::for_graph(&g);
        assert_eq!(s.max_degree, 6);
        assert_eq!(s.hypercube_degree, 15);
        assert!(s.degree_reduction() > 2.0, "less than half of Δ(Q15)");
        assert_eq!(s.hypercube_edges, 15 * (1 << 14));
        assert!(s.edge_ratio() < 0.5);
        assert!(s.max_degree <= s.paper_upper_bound);
        assert!(s.max_degree >= s.paper_lower_bound);
    }

    #[test]
    fn stats_bounds_hold_across_sweep() {
        for n in 5..=24u32 {
            let g = SparseHypercube::construct_base(n, bounds::thm5_m_star(n));
            let s = ShcStats::for_graph(&g);
            assert!(
                s.paper_lower_bound <= s.max_degree && s.max_degree <= s.paper_upper_bound,
                "n={n}: {} <= {} <= {}",
                s.paper_lower_bound,
                s.max_degree,
                s.paper_upper_bound
            );
        }
    }

    #[test]
    fn tightness_is_bounded_for_k3() {
        // Corollary 2: Δ = Θ(n^(1/k)); the ratio to the lower bound stays
        // below 2k − 1 + o(1) for the paper parameters.
        for n in 10..=60u32 {
            let dims = bounds::thm7_params(3, n);
            let g = SparseHypercube::construct(&dims);
            let s = ShcStats::for_graph(&g);
            assert!(s.tightness() <= 5.5, "n={n}: tightness {}", s.tightness());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let g = SparseHypercube::construct_base(8, 3);
        let s = ShcStats::for_graph(&g);
        let json = serde_json::to_string(&s).unwrap();
        let back: ShcStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
