//! # shc-core — sparse hypercube constructions
//!
//! The primary contribution of Fujita & Farley, *"Sparse Hypercube — a
//! minimal k-line broadcast graph"* (IPPS/SPDP'99; DAM 127, 2003):
//! subgraphs of the binary `n`-cube that remain minimal k-line broadcast
//! graphs while reducing the maximum degree from `n` to
//! `(2k−1)·⌈(log₂N − k)^(1/k)⌉`.
//!
//! * [`partition`] — the `S_1, …, S_λ` cross-dimension partitions.
//! * [`construction`] — `Construct_BASE(n, m)` (§3) and
//!   `Construct(k; n, n_{k−1}, …, n_1)` (§4) as one leveled structure with
//!   rule-based `O(1)` edge oracles.
//! * [`routing`] — Phase-1 relay routing (Remark 1, generalized), with the
//!   `k − 1` hop bound checked rather than assumed.
//! * [`bounds`] — every closed-form bound of the paper in exact integer
//!   arithmetic (Theorems 1–3, 5, 7; Lemmas 1–2; Corollary 1).
//! * [`params`] — Theorem 5/7 parameter choices plus exact minimum-degree
//!   parameter search.
//! * [`validate`] — structural invariants, rule-level and materialized.
//! * [`stats`] — comparison against the full hypercube baseline.
//!
//! ## Example
//!
//! The paper's Example 3: `Construct_BASE(15, 3)` keeps all `2^15` cube
//! vertices but cuts the maximum degree from 15 to 6, with `O(1)`
//! rule-based edge oracles (no adjacency is materialized):
//!
//! ```
//! use shc_core::SparseHypercube;
//!
//! let g = SparseHypercube::construct_base(15, 3);
//! assert_eq!(g.num_vertices(), 1 << 15);
//! assert_eq!(g.max_degree(), 6);
//! // Base-cube edges survive; higher cross dimensions are sparsified.
//! assert!(g.has_edge(0, 1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod construction;
pub mod params;
pub mod partition;
pub mod routing;
pub mod stats;
pub mod validate;

pub use construction::{Level, SparseHypercube, Vertex};
pub use partition::DimPartition;
pub use routing::route_to_cross_dim;
pub use stats::ShcStats;
