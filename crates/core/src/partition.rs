//! Partition of a cross-dimension range `S = {lo+1, …, hi}` into `λ`
//! near-equal subsets `S_1, …, S_λ` (paper, Step 2 of `Construct_BASE` and
//! Step 3 of `Construct`): `||S_i| − |S_j|| <= 1`, some subsets possibly
//! empty.

use serde::{Deserialize, Serialize};

/// Assignment of each dimension in `lo+1..=hi` to one of `λ` label-indexed
/// subsets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimPartition {
    lo: u32,
    hi: u32,
    num_subsets: u32,
    /// `owner[d]` is the subset of dimension `lo + 1 + d`.
    owner: Vec<u16>,
}

impl DimPartition {
    /// The canonical balanced partition used throughout: dimensions are
    /// taken in **descending** order and split into `λ` consecutive blocks,
    /// earlier blocks taking the extra dimension when `λ` does not divide
    /// `hi − lo`. This reproduces the paper's Example 3 exactly
    /// (`S = {15,…,4}`, `λ = 4` → `S_1 = {15,14,13}, …, S_4 = {6,5,4}`).
    ///
    /// # Panics
    /// Panics if `hi < lo` or `num_subsets == 0`.
    #[must_use]
    pub fn balanced(lo: u32, hi: u32, num_subsets: u32) -> Self {
        assert!(hi >= lo, "invalid range ({lo}, {hi}]");
        assert!(num_subsets >= 1, "need at least one subset");
        assert!(
            num_subsets <= u32::from(u16::MAX),
            "subset index must fit u16"
        );
        let total = (hi - lo) as usize;
        let base = total / num_subsets as usize;
        let rem = total % num_subsets as usize;
        let mut owner = vec![0u16; total];
        let mut next = hi; // assign descending
        for j in 0..num_subsets as usize {
            let size = base + usize::from(j < rem);
            for _ in 0..size {
                owner[(next - lo - 1) as usize] = j as u16;
                next -= 1;
            }
        }
        debug_assert_eq!(next, lo);
        Self {
            lo,
            hi,
            num_subsets,
            owner,
        }
    }

    /// Builds a partition from explicit subsets (`subsets[j]` = dims of
    /// `S_{j+1}`), validating that they exactly cover `lo+1..=hi`.
    ///
    /// # Panics
    /// Panics if the subsets do not partition the range.
    #[must_use]
    pub fn from_subsets(lo: u32, hi: u32, subsets: &[Vec<u32>]) -> Self {
        assert!(hi >= lo, "invalid range ({lo}, {hi}]");
        assert!(!subsets.is_empty(), "need at least one subset");
        let total = (hi - lo) as usize;
        let mut owner = vec![u16::MAX; total];
        let mut count = 0usize;
        for (j, dims) in subsets.iter().enumerate() {
            for &d in dims {
                assert!(d > lo && d <= hi, "dim {d} outside ({lo}, {hi}]");
                let idx = (d - lo - 1) as usize;
                assert_eq!(owner[idx], u16::MAX, "dim {d} assigned twice");
                owner[idx] = j as u16;
                count += 1;
            }
        }
        assert_eq!(count, total, "subsets must cover the whole range");
        Self {
            lo,
            hi,
            num_subsets: subsets.len() as u32,
            owner,
        }
    }

    /// Lower end of the range (exclusive).
    #[must_use]
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Upper end of the range (inclusive).
    #[must_use]
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// Number of subsets `λ`.
    #[must_use]
    pub fn num_subsets(&self) -> u32 {
        self.num_subsets
    }

    /// Subset index owning dimension `dim` (must lie in `lo+1..=hi`).
    #[must_use]
    pub fn owner_of(&self, dim: u32) -> u16 {
        assert!(
            dim > self.lo && dim <= self.hi,
            "dim {dim} outside ({}, {}]",
            self.lo,
            self.hi
        );
        self.owner[(dim - self.lo - 1) as usize]
    }

    /// Dimensions of subset `j`, ascending.
    #[must_use]
    pub fn subset(&self, j: u16) -> Vec<u32> {
        (self.lo + 1..=self.hi)
            .filter(|&d| self.owner_of(d) == j)
            .collect()
    }

    /// All subsets, indexed by label.
    #[must_use]
    pub fn subsets(&self) -> Vec<Vec<u32>> {
        (0..self.num_subsets as u16)
            .map(|j| self.subset(j))
            .collect()
    }

    /// Size of the largest subset — the per-level degree contribution
    /// `max_j |S_j|` in the exact degree formula.
    #[must_use]
    pub fn max_subset_size(&self) -> usize {
        let mut counts = vec![0usize; self.num_subsets as usize];
        for &o in &self.owner {
            counts[o as usize] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Number of dimensions partitioned (`hi − lo`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// `true` when the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_matches_paper_example3() {
        // S = {15,…,4}, λ = 4 → S_1 = {15,14,13}, S_2 = {12,11,10},
        // S_3 = {9,8,7}, S_4 = {6,5,4}.
        let p = DimPartition::balanced(3, 15, 4);
        assert_eq!(p.subset(0), vec![13, 14, 15]);
        assert_eq!(p.subset(1), vec![10, 11, 12]);
        assert_eq!(p.subset(2), vec![7, 8, 9]);
        assert_eq!(p.subset(3), vec![4, 5, 6]);
        assert_eq!(p.max_subset_size(), 3);
    }

    #[test]
    fn balanced_sizes_differ_by_at_most_one() {
        for (lo, hi, lambda) in [(2u32, 9u32, 3u32), (0, 7, 4), (5, 6, 4), (3, 3, 2)] {
            let p = DimPartition::balanced(lo, hi, lambda);
            let sizes: Vec<usize> = p.subsets().iter().map(Vec::len).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "({lo},{hi}] into {lambda}: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), (hi - lo) as usize);
        }
    }

    #[test]
    fn balanced_empty_range() {
        let p = DimPartition::balanced(4, 4, 3);
        assert!(p.is_empty());
        assert_eq!(p.max_subset_size(), 0);
        assert!(p.subsets().iter().all(Vec::is_empty));
    }

    #[test]
    fn balanced_allows_empty_subsets() {
        // Paper: "some subset S_i can be empty (i.e., n−m can be smaller
        // than λ_m)".
        let p = DimPartition::balanced(2, 4, 5);
        let sizes: Vec<usize> = p.subsets().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 0).count(), 3);
        assert_eq!(p.max_subset_size(), 1);
    }

    #[test]
    fn from_subsets_paper_example2() {
        // Example 2: S = {4,3}, S_1 = {3}, S_2 = {4}.
        let p = DimPartition::from_subsets(2, 4, &[vec![3], vec![4]]);
        assert_eq!(p.owner_of(3), 0);
        assert_eq!(p.owner_of(4), 1);
        assert_eq!(p.subset(0), vec![3]);
        assert_eq!(p.subset(1), vec![4]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn from_subsets_rejects_overlap() {
        let _ = DimPartition::from_subsets(2, 4, &[vec![3, 4], vec![4]]);
    }

    #[test]
    #[should_panic(expected = "cover the whole range")]
    fn from_subsets_rejects_gap() {
        let _ = DimPartition::from_subsets(2, 4, &[vec![3], vec![]]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn owner_of_out_of_range_panics() {
        let p = DimPartition::balanced(2, 4, 2);
        let _ = p.owner_of(2);
    }

    #[test]
    fn owner_round_trips_subsets() {
        let p = DimPartition::balanced(1, 11, 3);
        for (j, dims) in p.subsets().into_iter().enumerate() {
            for d in dims {
                assert_eq!(p.owner_of(d), j as u16);
            }
        }
    }
}
