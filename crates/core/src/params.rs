//! Parameter selection for the constructions: the paper's closed-form
//! choices (Theorem 5's `m*`, Theorem 7's `n_i*`) and an exact
//! minimum-degree search over the parameter space, used for the paper's
//! remark that the `2k − 1` coefficient can be improved by choosing the
//! `n_i` "more carefully".

use crate::bounds;
use serde::{Deserialize, Serialize};
use shc_labeling::constructed_lambda;

/// A chosen parameter vector for `Construct(k; …)` plus its predicted
/// degree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamChoice {
    /// `[n_1, …, n_{k−1}, n]`, ascending.
    pub dims: Vec<u32>,
    /// Exact maximum degree of the resulting graph.
    pub max_degree: u64,
}

/// Exact maximum degree of `Construct(k; dims)` without building it:
/// `Δ = n_1 + Σ_ℓ ceil((n_ℓ − n_{ℓ−1}) / λ(n_{ℓ−1} − n_{ℓ−2}))`,
/// with `λ` the constructive label count of `shc-labeling`.
///
/// # Panics
/// Panics if `dims` is not strictly increasing with at least 2 entries.
#[must_use]
pub fn predicted_max_degree(dims: &[u32]) -> u64 {
    assert!(dims.len() >= 2 && dims[0] >= 1, "bad dims {dims:?}");
    assert!(dims.windows(2).all(|w| w[0] < w[1]), "bad dims {dims:?}");
    let mut total = u64::from(dims[0]);
    for l in 1..dims.len() {
        let label_width = if l >= 2 {
            dims[l - 1] - dims[l - 2]
        } else {
            dims[0]
        };
        let lambda = constructed_lambda(label_width);
        total += u64::from((dims[l] - dims[l - 1]).div_ceil(lambda));
    }
    total
}

/// The paper's default parameters: Theorem 5's `m*` for `k = 2`,
/// Theorem 7's `n_i*` for `k >= 3`.
///
/// # Panics
/// Panics unless `k >= 2` and `n >= 2` (and `n > k` for `k >= 3`).
#[must_use]
pub fn paper_params(k: u32, n: u32) -> ParamChoice {
    assert!(k >= 2 && n >= 2, "need k >= 2, n >= 2");
    let dims = if k == 2 {
        vec![bounds::thm5_m_star(n), n]
    } else {
        bounds::thm7_params(k, n)
    };
    let max_degree = predicted_max_degree(&dims);
    ParamChoice { dims, max_degree }
}

/// Exhaustive minimum-degree parameter search for `k = 2`: the best `m`.
#[must_use]
pub fn best_base_params(n: u32) -> ParamChoice {
    assert!(n >= 2, "need n >= 2");
    (1..n)
        .map(|m| {
            let dims = vec![m, n];
            let max_degree = predicted_max_degree(&dims);
            ParamChoice { dims, max_degree }
        })
        .min_by_key(|c| (c.max_degree, c.dims[0]))
        .expect("nonempty range")
}

/// Exact minimum-degree parameter search for general `k` by depth-first
/// enumeration of ascending parameter vectors with branch-and-bound
/// pruning (partial degree already exceeding the incumbent).
///
/// Practical for `k <= 6, n <= 60`.
///
/// # Panics
/// Panics unless `2 <= k < n` and `k <= 8`.
#[must_use]
pub fn optimized_params(k: u32, n: u32) -> ParamChoice {
    assert!(k >= 2 && n > k, "need 2 <= k < n for the search");
    assert!(k <= 8, "search capped at k = 8");
    if k == 2 {
        return best_base_params(n);
    }
    let mut best = paper_params(k, n);
    let mut prefix: Vec<u32> = Vec::with_capacity(k as usize);
    search(k, n, &mut prefix, 0, &mut best);
    best
}

/// Recursive enumeration: `prefix` holds `n_1 < … < n_j` so far;
/// `partial` is the degree contribution fixed by the prefix (base `n_1`
/// plus finished levels).
fn search(k: u32, n: u32, prefix: &mut Vec<u32>, partial: u64, best: &mut ParamChoice) {
    let j = prefix.len() as u32;
    if j == k - 1 {
        // Close with n_k = n: final level label width n_{k−1} − n_{k−2}.
        let label_width = if k >= 3 {
            prefix[prefix.len() - 1] - prefix[prefix.len() - 2]
        } else {
            prefix[0]
        };
        let lambda = constructed_lambda(label_width);
        let total = partial + u64::from((n - prefix[prefix.len() - 1]).div_ceil(lambda));
        if total < best.max_degree {
            let mut dims = prefix.clone();
            dims.push(n);
            *best = ParamChoice {
                dims,
                max_degree: total,
            };
        }
        return;
    }
    let lo = prefix.last().map_or(1, |&x| x + 1);
    // Leave room for the remaining k−1−j parameters strictly below n.
    let hi = n - (k - 1 - j);
    for next in lo..=hi {
        let add = if j == 0 {
            u64::from(next) // base contribution n_1
        } else {
            let label_width = if j >= 2 {
                prefix[prefix.len() - 1] - prefix[prefix.len() - 2]
            } else {
                prefix[0]
            };
            let lambda = constructed_lambda(label_width);
            u64::from((next - prefix[prefix.len() - 1]).div_ceil(lambda))
        };
        let partial2 = partial + add;
        if partial2 >= best.max_degree {
            continue; // prune: degree only grows
        }
        prefix.push(next);
        search(k, n, prefix, partial2, best);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::SparseHypercube;

    #[test]
    fn predicted_matches_constructed() {
        for dims in [
            vec![2u32, 4],
            vec![3, 15],
            vec![2, 4, 7],
            vec![3, 10, 30],
            vec![2, 4, 8, 16],
        ] {
            let g = SparseHypercube::construct(&dims);
            assert_eq!(
                predicted_max_degree(&dims),
                g.max_degree() as u64,
                "dims {dims:?}"
            );
        }
    }

    #[test]
    fn paper_params_satisfy_their_theorems() {
        // Theorem 5: degree within 2·ceil(sqrt(2n+4)) − 4 for k = 2.
        for n in 2..=60u32 {
            let c = paper_params(2, n);
            assert!(
                c.max_degree <= bounds::thm5_upper_bound(n),
                "n={n}: Δ={} > bound {}",
                c.max_degree,
                bounds::thm5_upper_bound(n)
            );
        }
        // Theorem 7 for k = 3..5.
        for k in 3..=5u32 {
            for n in (k + 1)..=60 {
                let c = paper_params(k, n);
                assert!(
                    c.max_degree <= bounds::thm7_upper_bound(k, n),
                    "k={k}, n={n}: Δ={} > bound {}",
                    c.max_degree,
                    bounds::thm7_upper_bound(k, n)
                );
            }
        }
    }

    #[test]
    fn best_base_beats_or_matches_paper_choice() {
        for n in 2..=60u32 {
            let best = best_base_params(n);
            let paper = paper_params(2, n);
            assert!(best.max_degree <= paper.max_degree, "n={n}");
        }
    }

    #[test]
    fn optimized_beats_or_matches_paper_choice() {
        for k in 3..=4u32 {
            for n in [k + 2, 12, 20, 31] {
                if n <= k {
                    continue;
                }
                let opt = optimized_params(k, n);
                let paper = paper_params(k, n);
                assert!(
                    opt.max_degree <= paper.max_degree,
                    "k={k}, n={n}: {} vs {}",
                    opt.max_degree,
                    paper.max_degree
                );
                assert!(opt.dims.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(*opt.dims.last().unwrap(), n);
            }
        }
    }

    #[test]
    fn optimized_k2_matches_exhaustive() {
        for n in [5u32, 9, 16, 33] {
            assert_eq!(optimized_params(2, n), best_base_params(n));
        }
    }

    #[test]
    fn note_after_thm5_case() {
        // Paper note: if λ_m = m+1 and n = m(m+2) then Δ = 2m < 2·sqrt(n).
        // m = 3 (λ=4), n = 15: Δ(G_{15,3}) = 6 = 2m.
        let c = predicted_max_degree(&[3, 15]);
        assert_eq!(c, 6);
        assert!((c as f64) < 2.0 * (15f64).sqrt());
        // m = 7 (λ=8), n = 63: Δ = 14 = 2·7 < 2·sqrt(63) ≈ 15.87.
        let c = predicted_max_degree(&[7, 63]);
        assert_eq!(c, 14);
        assert!((c as f64) < 2.0 * (63f64).sqrt());
    }

    #[test]
    fn best_base_known_small_values() {
        // n = 4: m = 2 gives ceil(2/2)+2 = 3; m=1 gives ceil(3/2)+1 = 3;
        // m=3 gives ceil(1/4)+3 = 4. Best = 3.
        assert_eq!(best_base_params(4).max_degree, 3);
        // n = 15: m = 3 gives 6.
        let c = best_base_params(15);
        assert!(c.max_degree <= 6);
    }
}
