//! Closed-form bounds from the paper (Theorems 1–3, 5, 7; Lemmas 1–2;
//! Corollary 1), implemented in exact integer arithmetic.
//!
//! Floating-point roots are avoided: `ceil_sqrt` / `ceil_root` search for
//! the smallest integer whose power reaches the argument, so the bound
//! tables in EXPERIMENTS.md are exact.

/// `ceil(sqrt(x))` in exact integer arithmetic.
#[must_use]
pub fn ceil_sqrt(x: u64) -> u64 {
    ceil_root(x, 2)
}

/// `ceil(x^(1/k))`: the smallest `r >= 0` with `r^k >= x`.
///
/// # Panics
/// Panics if `k == 0`.
#[must_use]
pub fn ceil_root(x: u64, k: u32) -> u64 {
    assert!(k >= 1, "0th root undefined");
    if x <= 1 {
        return x;
    }
    let mut r = 1u64;
    while pow_sat(r, k) < x {
        r += 1;
    }
    r
}

/// `floor(log2(x))` for `x >= 1`.
#[must_use]
pub fn floor_log2(x: u64) -> u32 {
    assert!(x >= 1, "log2 of 0");
    63 - x.leading_zeros().min(63)
}

/// `ceil(log2(x))` for `x >= 1`.
#[must_use]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        floor_log2(x - 1) + 1
    }
}

fn pow_sat(base: u64, exp: u32) -> u64 {
    let mut acc = 1u64;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

// ---------------------------------------------------------------------------
// Theorem 1
// ---------------------------------------------------------------------------

/// Theorem 1 tree size: `|V| = 3·2^h − 2`.
#[must_use]
pub fn thm1_tree_size(h: u32) -> u64 {
    3 * (1u64 << h) - 2
}

/// Theorem 1's hypothesis: the smallest `k` for which the degree-3 tree
/// argument applies to an `N`-vertex network, `k = 2·ceil(log2((N+2)/3))`
/// (with the inner division exact on the tree sizes; we take
/// `ceil(log2(ceil((N+2)/3)))` for general `N`).
#[must_use]
pub fn thm1_min_k(n_vertices: u64) -> u32 {
    2 * ceil_log2(n_vertices.div_ceil(3).max(1))
}

// ---------------------------------------------------------------------------
// Theorems 2 and 3 (lower bounds)
// ---------------------------------------------------------------------------

/// Theorem 2: for `k ∈ {2,3,4}` and `N = 2^n`, any k-mlbg has
/// `Δ >= ceil(n^(1/k))`.
///
/// # Panics
/// Panics unless `2 <= k <= 4`.
#[must_use]
pub fn thm2_lower_bound(k: u32, n: u32) -> u64 {
    assert!((2..=4).contains(&k), "Theorem 2 covers k = 2, 3, 4");
    ceil_root(u64::from(n), k)
}

/// Theorem 3: for `k >= 5`, `n >= k`, any k-mlbg on `2^n` vertices has
/// `Δ >= (n/3 + 1)^(1/k) + 1`, hence `Δ >= ceil((n/3 + 1)^(1/k)) + 1` when
/// the root is not integral; we return the valid integer bound
/// `min { Δ : Δ >= 3 and 3((Δ−1)^k − 1) >= n }` from the proof's inequality
/// `n <= 3((Δ−1)^k − 1)` (together with the proof's separate `Δ >= 3` step).
#[must_use]
pub fn thm3_lower_bound(k: u32, n: u32) -> u64 {
    assert!(k >= 5, "Theorem 3 covers k >= 5");
    assert!(n >= k, "Theorem 3 assumes n >= k");
    let n = u64::from(n);
    let mut delta = 3u64;
    while 3 * (pow_sat(delta - 1, k).saturating_sub(1)) < n {
        delta += 1;
    }
    delta
}

/// The degree lower bound for any `k`, dispatching between Theorems 2 and 3
/// (and the trivial `Δ >= 1` for `k` beyond both: e.g. `k = 1` handled by
/// the classical `Δ >= n` of 1-line minimum broadcast on `2^n` vertices).
#[must_use]
pub fn lower_bound(k: u32, n: u32) -> u64 {
    match k {
        0 => panic!("k must be positive"),
        1 => u64::from(n), // store-and-forward: the source needs n distinct neighbors
        2..=4 => thm2_lower_bound(k, n),
        _ if n >= k => thm3_lower_bound(k, n),
        _ => 1,
    }
}

/// Theorem 3's cycle infeasibility check: a cycle on `2^n` vertices cannot
/// be a k-mlbg when `2^(n−1) > k·n` (the paper observes `k = 5, n = 6`:
/// `32 > 30`).
#[must_use]
pub fn cycle_infeasible(k: u32, n: u32) -> bool {
    assert!(n >= 1);
    // 2^(n−1) saturates past 63 bits — far beyond any product k·n here.
    let half = 1u64.checked_shl(n - 1).unwrap_or(u64::MAX);
    half > u64::from(k) * u64::from(n)
}

// ---------------------------------------------------------------------------
// Lemmas 1–2 and Theorem 5 (k = 2)
// ---------------------------------------------------------------------------

/// Lemma 1: `Δ(G_{n,m}) <= ceil((n − m)/λ_m) + m`.
#[must_use]
pub fn lemma1_upper_bound(n: u32, m: u32, lambda: u32) -> u64 {
    assert!(m < n && lambda >= 1);
    u64::from((n - m).div_ceil(lambda)) + u64::from(m)
}

/// Theorem 5: for every `n >= 1` there is a 2-mlbg of order `2^n` with
/// `Δ <= 2·ceil(sqrt(2n + 4)) − 4`.
#[must_use]
pub fn thm5_upper_bound(n: u32) -> u64 {
    2 * ceil_sqrt(u64::from(2 * n + 4)) - 4
}

/// Theorem 5's parameter choice: `m* = ceil(sqrt(2n + 4)) − 2`, clamped
/// into the legal range `1..n`.
#[must_use]
pub fn thm5_m_star(n: u32) -> u32 {
    assert!(n >= 2, "m* needs n >= 2");
    let m = (ceil_sqrt(u64::from(2 * n + 4)) as u32).saturating_sub(2);
    m.clamp(1, n - 1)
}

// ---------------------------------------------------------------------------
// Theorem 7 and Corollary 1 (general k)
// ---------------------------------------------------------------------------

/// Theorem 7: for `n > k >= 3` there is a k-mlbg of order `2^n` with
/// `Δ <= (2k − 1)·ceil((n − k)^(1/k))`.
#[must_use]
pub fn thm7_upper_bound(k: u32, n: u32) -> u64 {
    assert!(k >= 3 && n > k, "Theorem 7 needs n > k >= 3");
    u64::from(2 * k - 1) * ceil_root(u64::from(n - k), k)
}

/// Theorem 7's parameter choice: `n_i* = ceil(m^(i/k)) + i − 1` for
/// `i = 1..k−1`, with `m = n − k`. Returns `[n_1, …, n_{k−1}, n]`.
#[must_use]
pub fn thm7_params(k: u32, n: u32) -> Vec<u32> {
    assert!(k >= 3 && n > k, "Theorem 7 needs n > k >= 3");
    let m = u64::from(n - k);
    let mut dims: Vec<u32> = (1..k)
        .map(|i| {
            // ceil(m^(i/k)) = smallest r with r^k >= m^i.
            let target = pow_sat_u64(m, i);
            ceil_root(target, k) as u32 + i - 1
        })
        .collect();
    dims.push(n);
    dims
}

fn pow_sat_u64(base: u64, exp: u32) -> u64 {
    let mut acc = 1u64;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

/// Corollary 1: for `k >= ceil(log2 n)` there is a k-mlbg of order
/// `2^n` with `Δ <= 4·ceil(log2 log2 N) − 2 = 4·ceil(log2 n) − 2`.
#[must_use]
pub fn cor1_upper_bound(n: u32) -> u64 {
    assert!(n >= 2);
    4 * u64::from(ceil_log2(u64::from(n))) - 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roots() {
        assert_eq!(ceil_sqrt(0), 0);
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(9), 3);
        assert_eq!(ceil_root(8, 3), 2);
        assert_eq!(ceil_root(9, 3), 3);
        assert_eq!(ceil_root(27, 3), 3);
        assert_eq!(ceil_root(1, 7), 1);
        assert_eq!(ceil_root(16, 4), 2);
        assert_eq!(ceil_root(17, 4), 3);
    }

    #[test]
    fn logs() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn thm1_values() {
        // Fig. 1: h = 3 gives 22 vertices.
        assert_eq!(thm1_tree_size(3), 22);
        assert_eq!(thm1_tree_size(1), 4);
        // For N = 22: k = 2·ceil(log2(8)) = 6 = 2h.
        assert_eq!(thm1_min_k(22), 6);
    }

    #[test]
    fn thm2_spot_values() {
        // k=2: Δ >= ceil(sqrt(n)).
        assert_eq!(thm2_lower_bound(2, 15), 4);
        assert_eq!(thm2_lower_bound(2, 16), 4);
        assert_eq!(thm2_lower_bound(2, 17), 5);
        // k=3: Δ >= ceil(n^(1/3)).
        assert_eq!(thm2_lower_bound(3, 27), 3);
        assert_eq!(thm2_lower_bound(3, 28), 4);
    }

    #[test]
    fn thm3_monotone_and_consistent() {
        // From the proof: n <= 3((Δ−1)^k − 1). For k=5: Δ=3 covers
        // n <= 3(2^5−1) = 93, so every n in 5..=93 gives Δ >= 3.
        assert_eq!(thm3_lower_bound(5, 10), 3);
        assert_eq!(thm3_lower_bound(5, 93), 3);
        assert_eq!(thm3_lower_bound(5, 94), 4);
        // Lower bound never decreases in n.
        let mut prev = 0;
        for n in 5..200u32 {
            let b = thm3_lower_bound(5, n);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn cycle_infeasibility_paper_case() {
        // Paper: k = 5, n = 6 ⇒ 2^5 = 32 > 30 = kn.
        assert!(cycle_infeasible(5, 6));
        assert!(!cycle_infeasible(5, 5)); // 16 <= 25
        assert!(!cycle_infeasible(6, 6)); // 32 <= 36
        assert!(cycle_infeasible(6, 7)); // 64 > 42
    }

    #[test]
    fn lemma1_spot_values() {
        // G_{4,2}: ceil(2/2) + 2 = 3.
        assert_eq!(lemma1_upper_bound(4, 2, 2), 3);
        // G_{15,3}: ceil(12/4) + 3 = 6 (Example 3).
        assert_eq!(lemma1_upper_bound(15, 3, 4), 6);
    }

    #[test]
    fn thm5_spot_values() {
        // n = 1: bound 2·ceil(sqrt 6) − 4 = 2 (paper's base case).
        assert_eq!(thm5_upper_bound(1), 2);
        // n = 16: 2·ceil(sqrt 36) − 4 = 8.
        assert_eq!(thm5_upper_bound(16), 8);
        // Bound is nondecreasing.
        let mut prev = 0;
        for n in 1..=64 {
            let b = thm5_upper_bound(n);
            assert!(b >= prev, "n={n}");
            prev = b;
        }
    }

    #[test]
    fn thm5_m_star_legal() {
        for n in 2..=64u32 {
            let m = thm5_m_star(n);
            assert!((1..n).contains(&m), "n={n} -> m*={m}");
        }
        // n = 16: sqrt(36) = 6, m* = 4.
        assert_eq!(thm5_m_star(16), 4);
    }

    #[test]
    fn thm7_spot_values() {
        // k=3, n=30: (2·3−1)·ceil(27^(1/3)) = 5·3 = 15.
        assert_eq!(thm7_upper_bound(3, 30), 15);
        // k=4, n=20: 7·ceil(16^(1/4)) = 7·2 = 14.
        assert_eq!(thm7_upper_bound(4, 20), 14);
    }

    #[test]
    fn thm7_params_are_legal_and_match_formula() {
        for k in 3..=5u32 {
            for n in (k + 2)..=40 {
                let dims = thm7_params(k, n);
                assert_eq!(dims.len(), k as usize);
                assert_eq!(*dims.last().unwrap(), n);
                assert!(
                    dims.windows(2).all(|w| w[0] < w[1]),
                    "k={k}, n={n}: {dims:?} strictly increasing"
                );
                assert!(dims[0] >= 1);
            }
        }
        // Spot: k=3, n=30, m=27: n_1 = ceil(27^(1/3)) = 3, n_2 = ceil(729^(1/3)) + 1 = 10.
        assert_eq!(thm7_params(3, 30), vec![3, 10, 30]);
    }

    #[test]
    fn cor1_spot_values() {
        // n = 16: 4·ceil(log2 16) − 2 = 14.
        assert_eq!(cor1_upper_bound(16), 14);
        // n = 17: 4·5 − 2 = 18.
        assert_eq!(cor1_upper_bound(17), 18);
    }

    #[test]
    fn lower_bound_dispatch() {
        assert_eq!(lower_bound(1, 10), 10);
        assert_eq!(lower_bound(2, 16), 4);
        assert_eq!(lower_bound(5, 93), 3);
        assert_eq!(lower_bound(9, 5), 1, "n < k degenerate");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lower_bound_k0_panics() {
        let _ = lower_bound(0, 4);
    }
}
