//! Structural validation of constructed sparse hypercubes: every invariant
//! the paper's proofs rely on, checked directly on the rule-based oracle
//! (and, for small `n`, against the materialized graph).

use crate::construction::{SparseHypercube, Vertex};
use shc_graph::{metrics, traversal, GraphView};
use shc_labeling::verify_condition_a;

/// A failed structural invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructureError {
    /// A level labeling violates Condition A.
    ConditionA {
        /// Level index (0 = innermost level `ℓ = 2`).
        level: usize,
        /// Human-readable witness.
        witness: String,
    },
    /// The edge oracle is asymmetric at `(u, dim)`.
    AsymmetricEdge {
        /// Vertex where asymmetry was detected.
        u: Vertex,
        /// Dimension of the offending edge.
        dim: u32,
    },
    /// A vertex degree disagrees with the neighbor list.
    DegreeMismatch {
        /// Offending vertex.
        u: Vertex,
    },
    /// The formula-derived maximum degree disagrees with a full scan.
    MaxDegreeMismatch {
        /// Value from the closed-form formula.
        formula: usize,
        /// Value from scanning all vertices.
        scanned: usize,
    },
    /// The materialized graph is disconnected (sparse hypercubes are
    /// connected: they contain a spanning sub-hypercube of every copy chain).
    Disconnected,
    /// The materialized graph is not bipartite (impossible for a subgraph
    /// of a hypercube).
    NotBipartite,
    /// Edge count formula disagrees with materialization.
    EdgeCountMismatch {
        /// Value from the closed-form formula.
        formula: u64,
        /// Value from the materialized graph.
        materialized: u64,
    },
}

impl std::fmt::Display for StructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConditionA { level, witness } => {
                write!(f, "level {level} labeling violates Condition A: {witness}")
            }
            Self::AsymmetricEdge { u, dim } => {
                write!(f, "edge oracle asymmetric at u={u:#b}, dim {dim}")
            }
            Self::DegreeMismatch { u } => write!(f, "degree mismatch at u={u:#b}"),
            Self::MaxDegreeMismatch { formula, scanned } => {
                write!(f, "max degree: formula {formula} vs scan {scanned}")
            }
            Self::Disconnected => write!(f, "graph is disconnected"),
            Self::NotBipartite => write!(f, "graph is not bipartite"),
            Self::EdgeCountMismatch {
                formula,
                materialized,
            } => write!(
                f,
                "edge count: formula {formula} vs materialized {materialized}"
            ),
        }
    }
}

impl std::error::Error for StructureError {}

/// Validates the rule-level invariants on a (possibly huge) instance by
/// sampling `sample` vertices deterministically (stride over the vertex
/// space), plus the labelings in full.
///
/// # Errors
/// Returns the first violated invariant.
pub fn validate_structure(g: &SparseHypercube, sample: u64) -> Result<(), StructureError> {
    // 1. Condition A per level.
    for (idx, level) in g.levels().iter().enumerate() {
        if let Err(e) = verify_condition_a(level.labeling()) {
            return Err(StructureError::ConditionA {
                level: idx,
                witness: e.to_string(),
            });
        }
    }
    // 2. Oracle symmetry + degree consistency on a deterministic sample.
    let n_vertices = g.num_vertices();
    let stride = (n_vertices / sample.max(1)).max(1);
    let mut u = 0u64;
    while u < n_vertices {
        for dim in 1..=g.n() {
            let v = u ^ (1u64 << (dim - 1));
            if g.has_dim_edge(u, dim) != g.has_dim_edge(v, dim) {
                return Err(StructureError::AsymmetricEdge { u, dim });
            }
        }
        if g.neighbors(u).len() != g.degree(u) {
            return Err(StructureError::DegreeMismatch { u });
        }
        u += stride;
    }
    Ok(())
}

/// Exhaustive validation against a materialized graph (requires `n <= 20`):
/// connectivity, bipartiteness, degree/edge formulas.
///
/// # Errors
/// Returns the first violated invariant.
pub fn validate_materialized(g: &SparseHypercube) -> Result<(), StructureError> {
    validate_structure(g, g.num_vertices())?;
    let mat = g.to_graph();
    if !traversal::is_connected(&mat) {
        return Err(StructureError::Disconnected);
    }
    if !metrics::is_bipartite(&mat) {
        return Err(StructureError::NotBipartite);
    }
    let scanned = mat.max_degree();
    if scanned != g.max_degree() {
        return Err(StructureError::MaxDegreeMismatch {
            formula: g.max_degree(),
            scanned,
        });
    }
    if mat.num_edges() as u64 != g.num_edges() {
        return Err(StructureError::EdgeCountMismatch {
            formula: g.num_edges(),
            materialized: mat.num_edges() as u64,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::SparseHypercube;

    #[test]
    fn base_instances_validate() {
        for (n, m) in [(4u32, 2u32), (6, 2), (8, 3), (10, 4), (12, 3)] {
            let g = SparseHypercube::construct_base(n, m);
            validate_materialized(&g).unwrap_or_else(|e| panic!("G_{{{n},{m}}}: {e}"));
        }
    }

    #[test]
    fn recursive_instances_validate() {
        for dims in [
            vec![2u32, 4, 7],
            vec![2, 4, 9],
            vec![1, 3, 6, 10],
            vec![2, 4, 8, 13],
        ] {
            let g = SparseHypercube::construct(&dims);
            validate_materialized(&g).unwrap_or_else(|e| panic!("{dims:?}: {e}"));
        }
    }

    #[test]
    fn large_instance_sampled_validation() {
        // n = 32 cannot be materialized; rule-level checks still run.
        let g = SparseHypercube::construct_base(32, 6);
        validate_structure(&g, 4096).expect("sampled validation");
    }

    #[test]
    fn large_recursive_sampled_validation() {
        let g = SparseHypercube::construct(&[3, 9, 27, 48]);
        validate_structure(&g, 2048).expect("sampled validation");
    }

    #[test]
    fn error_display() {
        let e = StructureError::MaxDegreeMismatch {
            formula: 5,
            scanned: 6,
        };
        assert!(e.to_string().contains("formula 5"));
    }
}
