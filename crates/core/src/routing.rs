//! Phase-1 relay routing (paper, Schemes `Broadcast_2` / `Broadcast_k`).
//!
//! During Phase 1 at cross dimension `i`, an informed vertex `w` must place
//! a call of length at most `k` that ends at a vertex differing from some
//! vertex of `w`'s copy in dimension `i`. The paper's Remark 1 (and its
//! recursive generalization) guarantees a vertex `v` owning the
//! `i`-dimensional cross edge within `k − 1` hops of `w` **inside `w`'s
//! copy**. Rather than hard-coding the constructive witness, we run a
//! bounded BFS over the rule-generated neighbors restricted to the copy and
//! take the closest owner — the existence bound is then *checked*, making
//! the theorem's routing claim an empirically verified invariant.

use crate::construction::{SparseHypercube, Vertex};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Error produced when no owner of the requested dimension lies within the
/// hop budget — impossible for correctly constructed graphs (Theorem 6),
/// so its appearance signals a construction bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NoRouteError {
    /// Origin vertex.
    pub from: Vertex,
    /// Requested cross dimension.
    pub dim: u32,
    /// Hop budget that was exhausted.
    pub max_hops: u32,
}

impl std::fmt::Display for NoRouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no vertex owning dimension {} within {} hops of {:#b}",
            self.dim, self.max_hops, self.from
        )
    }
}

impl std::error::Error for NoRouteError {}

/// Finds the call path for Phase 1: from `w`, a shortest path of at most
/// `max_hops` edges inside `w`'s copy (hops restricted to dimensions
/// `<= copy_max_dim`) to a vertex `v` owning cross dimension `dim`, extended
/// by the cross edge. The returned path is `[w, …, v, v ⊕ e_dim]` with
/// length `<= max_hops + 1`.
///
/// # Errors
/// Returns [`NoRouteError`] when no owner lies within the budget.
pub fn route_to_cross_dim(
    g: &SparseHypercube,
    w: Vertex,
    dim: u32,
    copy_max_dim: u32,
    max_hops: u32,
) -> Result<Vec<Vertex>, NoRouteError> {
    debug_assert!(dim > copy_max_dim, "cross dim must leave the copy");
    let flip = 1u64 << (dim - 1);
    // Fast path: w itself owns the edge (paper case (i)).
    if g.has_dim_edge(w, dim) {
        return Ok(vec![w, w ^ flip]);
    }
    // Bounded BFS inside the copy (paper case (ii), generalized).
    let mut parent: HashMap<Vertex, Vertex> = HashMap::new();
    let mut queue: VecDeque<(Vertex, u32)> = VecDeque::new();
    parent.insert(w, w);
    queue.push_back((w, 0));
    while let Some((u, d)) = queue.pop_front() {
        if d == max_hops {
            continue;
        }
        for v in g.neighbors_within(u, copy_max_dim) {
            if parent.contains_key(&v) {
                continue;
            }
            parent.insert(v, u);
            if g.has_dim_edge(v, dim) {
                // Reconstruct w → … → v, then append the cross edge.
                let mut path = vec![v];
                let mut cur = v;
                while cur != w {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                path.push(v ^ flip);
                return Ok(path);
            }
            queue.push_back((v, d + 1));
        }
    }
    Err(NoRouteError {
        from: w,
        dim,
        max_hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::SparseHypercube;
    use crate::partition::DimPartition;
    use shc_labeling::constructions::paper_example1_q2;

    fn g42_paper() -> SparseHypercube {
        SparseHypercube::construct_base_with(
            4,
            2,
            paper_example1_q2(),
            Some(DimPartition::from_subsets(2, 4, &[vec![3], vec![4]])),
        )
    }

    #[test]
    fn paper_example4_first_call() {
        // Example 4: from 0000, dimension 4: 0000 lacks the dim-4 edge, so
        // it places a length-2 call through a Q2 neighbor owning dim 4.
        // The paper picks relay 0010 (reaching 1010); relay 0001 (reaching
        // 1001) is equally legal — the scheme's choice of ⊕_j w is free.
        let g = g42_paper();
        let path = route_to_cross_dim(&g, 0b0000, 4, 2, 1).unwrap();
        assert_eq!(path.len(), 3, "length-2 call");
        assert_eq!(path[0], 0b0000);
        assert!(
            path[1] == 0b0010 || path[1] == 0b0001,
            "relay must be a Q2 neighbor with label c2, got {:04b}",
            path[1]
        );
        assert_eq!(path[2], path[1] ^ 0b1000, "cross edge along dimension 4");
    }

    #[test]
    fn direct_edge_short_circuits() {
        // 0000 owns dim 3 (label c1, S_1 = {3}): direct call of length 1.
        let g = g42_paper();
        let path = route_to_cross_dim(&g, 0b0000, 3, 2, 1).unwrap();
        assert_eq!(path, vec![0b0000, 0b0100]);
    }

    #[test]
    fn base_graphs_route_within_one_hop() {
        // Remark 1: in G_{n,m}, every (vertex, cross dim) routes with at
        // most 1 relay hop.
        for (n, m) in [(5u32, 2u32), (7, 3), (9, 4), (11, 3)] {
            let g = SparseHypercube::construct_base(n, m);
            for u in 0..(1u64 << n) {
                for dim in (m + 1)..=n {
                    let path = route_to_cross_dim(&g, u, dim, m, 1)
                        .unwrap_or_else(|e| panic!("G_{{{n},{m}}}: {e}"));
                    assert!(path.len() <= 3, "call length <= 2");
                    // Path ends across dimension `dim`.
                    let last = path[path.len() - 1];
                    let prev = path[path.len() - 2];
                    assert_eq!(last ^ prev, 1u64 << (dim - 1));
                }
            }
        }
    }

    #[test]
    fn recursive_graphs_route_within_k_minus_1_hops() {
        // Theorem 6's routing invariant for k = 3.
        let g = SparseHypercube::construct(&[2, 4, 9]);
        let n = 9u32;
        for u in 0..(1u64 << n) {
            for dim in 5..=n {
                let path = route_to_cross_dim(&g, u, dim, 4, 2).unwrap_or_else(|e| panic!("{e}"));
                assert!(path.len() <= 4, "call length <= 3, got {}", path.len() - 1);
                // Hops before the last stay inside the copy (dims <= 4).
                for wdw in path.windows(2).take(path.len() - 2) {
                    assert!((wdw[0] ^ wdw[1]).trailing_zeros() < 4);
                }
            }
        }
    }

    #[test]
    fn budget_zero_fails_when_no_direct_edge() {
        let g = g42_paper();
        let err = route_to_cross_dim(&g, 0b0000, 4, 2, 0).unwrap_err();
        assert_eq!(err.dim, 4);
        assert!(err.to_string().contains("no vertex owning"));
    }

    #[test]
    fn paths_are_valid_edge_walks() {
        let g = SparseHypercube::construct(&[2, 4, 7]);
        let mat = g.to_graph();
        use shc_graph::GraphView;
        for u in 0..(1u64 << 7) {
            for dim in 5..=7u32 {
                let path = route_to_cross_dim(&g, u, dim, 4, 2).unwrap();
                for w in path.windows(2) {
                    assert!(
                        mat.has_edge(w[0] as u32, w[1] as u32),
                        "hop {:?} not an edge",
                        w
                    );
                }
            }
        }
    }
}
