//! Property-based tests for the sparse hypercube constructions.

use proptest::prelude::*;
use shc_core::{bounds, params, routing, validate, SparseHypercube};
use shc_graph::GraphView;

/// Strategy: legal (n, m) for materializable base constructions.
fn arb_base() -> impl Strategy<Value = (u32, u32)> {
    (3u32..=12).prop_flat_map(|n| (Just(n), 1u32..n))
}

/// Strategy: legal ascending dims for k = 3 with n <= 11.
fn arb_k3_dims() -> impl Strategy<Value = Vec<u32>> {
    (1u32..=4)
        .prop_flat_map(|n1| ((n1 + 1)..=6).prop_map(move |n2| (n1, n2)))
        .prop_flat_map(|(n1, n2)| ((n2 + 1)..=11).prop_map(move |n| vec![n1, n2, n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn base_structure_validates((n, m) in arb_base()) {
        let g = SparseHypercube::construct_base(n, m);
        prop_assert!(validate::validate_materialized(&g).is_ok());
    }

    #[test]
    fn base_degree_obeys_lemma1((n, m) in arb_base()) {
        let g = SparseHypercube::construct_base(n, m);
        let lambda = g.levels()[0].labeling().num_labels();
        prop_assert!(
            g.max_degree() as u64 <= bounds::lemma1_upper_bound(n, m, lambda),
            "Lemma 1 violated at ({n},{m})"
        );
    }

    #[test]
    fn base_is_spanning_subgraph_of_hypercube((n, m) in arb_base()) {
        let g = SparseHypercube::construct_base(n, m).to_graph();
        let q = shc_graph::builders::hypercube(n);
        prop_assert_eq!(g.num_vertices(), q.num_vertices());
        for (u, v) in g.edge_iter() {
            prop_assert!(q.has_edge(u, v), "edge ({u},{v}) not in Q_{n}");
        }
    }

    #[test]
    fn k3_structure_validates(dims in arb_k3_dims()) {
        let g = SparseHypercube::construct(&dims);
        prop_assert!(validate::validate_materialized(&g).is_ok(), "dims {:?}", dims);
    }

    #[test]
    fn k3_rule1_makes_copies(dims in arb_k3_dims()) {
        // Rule 1: the suffix-n_2 structure is the same in every copy —
        // dim-edge presence for dims <= n_2 depends only on the suffix.
        let g = SparseHypercube::construct(&dims);
        let n = *dims.last().unwrap();
        let n2 = dims[1];
        let suffix_mask = (1u64 << n2) - 1;
        for u in 0..(1u64 << n) {
            for dim in 1..=n2 {
                prop_assert_eq!(
                    g.has_dim_edge(u, dim),
                    g.has_dim_edge(u & suffix_mask, dim),
                    "copy equivalence at u={:b}, dim {}", u, dim
                );
            }
        }
    }

    #[test]
    fn base_routing_within_one_relay((n, m) in arb_base(), u_raw: u64, dim_raw: u32) {
        let g = SparseHypercube::construct_base(n, m);
        let u = u_raw & ((1u64 << n) - 1);
        let dim = m + 1 + dim_raw % (n - m);
        let path = routing::route_to_cross_dim(&g, u, dim, m, 1);
        prop_assert!(path.is_ok(), "Remark 1 must hold at ({n},{m}), u={u:b}, dim {dim}");
        let path = path.unwrap();
        prop_assert!(path.len() <= 3);
        // Every hop is an edge of the graph.
        for w in path.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn k3_routing_within_two_relays(dims in arb_k3_dims(), u_raw: u64, dim_raw: u32) {
        let g = SparseHypercube::construct(&dims);
        let n = *dims.last().unwrap();
        let n2 = dims[1];
        let u = u_raw & ((1u64 << n) - 1);
        let dim = n2 + 1 + dim_raw % (n - n2);
        let path = routing::route_to_cross_dim(&g, u, dim, n2, 2);
        prop_assert!(path.is_ok(), "generalized Remark 1 at {:?}", dims);
        prop_assert!(path.unwrap().len() <= 4, "call length <= 3");
    }

    #[test]
    fn predicted_degree_matches_graph(dims in arb_k3_dims()) {
        let g = SparseHypercube::construct(&dims);
        prop_assert_eq!(
            params::predicted_max_degree(&dims),
            g.max_degree() as u64
        );
        prop_assert_eq!(g.to_graph().max_degree(), g.max_degree());
    }

    #[test]
    fn degree_scan_consistent((n, m) in arb_base()) {
        let g = SparseHypercube::construct_base(n, m);
        let mat = g.to_graph();
        for u in 0..(1u64 << n) {
            prop_assert_eq!(g.degree(u), mat.degree(u as u32), "vertex {}", u);
        }
    }

    #[test]
    fn cross_dims_produce_exactly_the_neighbors((n, m) in arb_base(), u_raw: u64) {
        let g = SparseHypercube::construct_base(n, m);
        let u = u_raw & ((1u64 << n) - 1);
        let nbrs = g.neighbors(u);
        prop_assert_eq!(nbrs.len(), g.degree(u));
        for &v in &nbrs {
            prop_assert!(g.has_edge(u, v), "neighbor {} of {}", v, u);
            prop_assert!(g.has_edge(v, u), "symmetry");
        }
    }
}
