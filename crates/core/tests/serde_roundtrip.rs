//! Serialization round-trips for the construction types: a sparse
//! hypercube's parameters, labelings and partitions fully describe it, so
//! a serde round-trip must preserve the edge oracle exactly.

use shc_core::{DimPartition, SparseHypercube};

fn assert_same_graph(a: &SparseHypercube, b: &SparseHypercube) {
    assert_eq!(a.params(), b.params());
    assert_eq!(a.max_degree(), b.max_degree());
    assert_eq!(a.num_edges(), b.num_edges());
    let n = a.n();
    for u in (0..a.num_vertices()).step_by(7) {
        for dim in 1..=n {
            assert_eq!(
                a.has_dim_edge(u, dim),
                b.has_dim_edge(u, dim),
                "u={u}, dim={dim}"
            );
        }
    }
}

#[test]
fn base_construction_roundtrip() {
    let g = SparseHypercube::construct_base(10, 3);
    let json = serde_json::to_string(&g).expect("serialize");
    let back: SparseHypercube = serde_json::from_str(&json).expect("deserialize");
    assert_same_graph(&g, &back);
}

#[test]
fn recursive_construction_roundtrip() {
    let g = SparseHypercube::construct(&[2, 4, 9, 14]);
    let json = serde_json::to_string(&g).expect("serialize");
    let back: SparseHypercube = serde_json::from_str(&json).expect("deserialize");
    assert_same_graph(&g, &back);
}

#[test]
fn partition_roundtrip() {
    let p = DimPartition::balanced(3, 15, 4);
    let json = serde_json::to_string(&p).expect("serialize");
    let back: DimPartition = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(p, back);
    assert_eq!(back.subset(0), vec![13, 14, 15]);
}

#[test]
fn custom_labeling_construction_roundtrip() {
    use shc_labeling::constructions::paper_example1_q3;
    let g = SparseHypercube::construct_base_with(9, 3, paper_example1_q3(), None);
    let json = serde_json::to_string(&g).expect("serialize");
    let back: SparseHypercube = serde_json::from_str(&json).expect("deserialize");
    assert_same_graph(&g, &back);
}
