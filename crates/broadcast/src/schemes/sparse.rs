//! Schemes `Broadcast_2` (paper §3) and `Broadcast_k` (paper §4) on sparse
//! hypercubes, unified over the leveled construction.
//!
//! Processing order (for `Construct(k; n, n_{k−1}, …, n_1)`):
//!
//! * **Cross phases**, level `ℓ = k` down to `2`: for each dimension
//!   `i = n_ℓ` down to `n_{ℓ−1} + 1`, every informed vertex `w` places one
//!   call ending across dimension `i`: directly if `w` owns the cross edge,
//!   otherwise relayed through at most `ℓ − 1` hops inside `w`'s copy
//!   (`route_to_cross_dim`). Call length `<= ℓ <= k`.
//! * **Base phase**: dimensions `n_1` down to `1`, direct calls inside the
//!   complete inner subcubes.
//!
//! Total rounds: exactly `n = log2 N` — minimum time. For `k = 2` this is
//! verbatim the paper's `Broadcast_2` (Phase 1 / Phase 2).

use crate::model::{Call, Round, Schedule, Vertex};
use shc_core::routing::route_to_cross_dim;
use shc_core::SparseHypercube;

/// Generates the `Broadcast_k` schedule for `g` from `source`.
///
/// # Panics
/// Panics if `source` is out of range, if `n > 28` (the schedule would not
/// fit memory), or — indicating a construction bug — if a Phase-1 relay
/// cannot be found within `k − 1` hops (Theorem 6 guarantees one).
#[must_use]
pub fn broadcast_scheme(g: &SparseHypercube, source: Vertex) -> Schedule {
    let n = g.n();
    assert!(n <= 28, "schedule materialization capped at n = 28");
    assert!(source < g.num_vertices(), "source out of range");
    let dims = g.params();
    let k = dims.len();
    let mut schedule = Schedule::new(source);
    let mut informed: Vec<Vertex> = Vec::with_capacity(1 << n);
    informed.push(source);

    // Cross phases, outermost level first.
    for l in (2..=k).rev() {
        let hi = dims[l - 1];
        let lo = dims[l - 2];
        let max_hops = (l - 1) as u32;
        for dim in ((lo + 1)..=hi).rev() {
            let mut round = Round::default();
            round.calls.reserve(informed.len());
            let prev = informed.len();
            for idx in 0..prev {
                let w = informed[idx];
                let path = route_to_cross_dim(g, w, dim, lo, max_hops)
                    .expect("Theorem 6: a relay exists within k-1 hops");
                informed.push(*path.last().expect("nonempty path"));
                round.calls.push(Call::new(path));
            }
            schedule.rounds.push(round);
        }
    }

    // Base phase: complete subcube, direct calls.
    for dim in (1..=dims[0]).rev() {
        let flip = 1u64 << (dim - 1);
        let mut round = Round::default();
        round.calls.reserve(informed.len());
        let prev = informed.len();
        for idx in 0..prev {
            let w = informed[idx];
            let v = w ^ flip;
            round.calls.push(Call::new(vec![w, v]));
            informed.push(v);
        }
        schedule.rounds.push(round);
    }

    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_minimum_time, verify_schedule};
    use shc_core::{DimPartition, SparseHypercube};
    use shc_labeling::constructions::paper_example1_q2;

    fn g42_paper() -> SparseHypercube {
        SparseHypercube::construct_base_with(
            4,
            2,
            paper_example1_q2(),
            Some(DimPartition::from_subsets(2, 4, &[vec![3], vec![4]])),
        )
    }

    #[test]
    fn example4_broadcast_in_g42() {
        // Example 4 / Fig. 4: broadcast from 0000 in G_{4,2} takes 4 time
        // units; the first two rounds cross dimensions 4 then 3, the final
        // two rounds broadcast within the 2-cubes.
        let g = g42_paper();
        let s = broadcast_scheme(&g, 0b0000);
        let r = verify_minimum_time(&g, &s, 2).unwrap();
        assert_eq!(r.rounds, 4);
        assert_eq!(r.informed_after_round, vec![2, 4, 8, 16]);
        assert_eq!(r.max_call_len, 2);
        // Round 1: single call crossing dimension 4 via a relay.
        assert_eq!(s.rounds[0].calls.len(), 1);
        let first = &s.rounds[0].calls[0];
        assert_eq!(first.caller(), 0b0000);
        assert_eq!(first.len(), 2, "0000 lacks the dim-4 edge: length-2 call");
        assert_eq!(
            first.receiver() & 0b1000,
            0b1000,
            "receiver is in the upper half"
        );
    }

    #[test]
    fn theorem4_broadcast2_minimum_time_sweep() {
        // Theorem 4: Broadcast_2 is minimum-time for every Construct_BASE
        // graph; checked for all (n, m), several sources.
        for n in 3..=9u32 {
            for m in 1..n {
                let g = SparseHypercube::construct_base(n, m);
                for source in [0u64, 1, (1 << n) - 1, 1 << (n - 1), 5 % (1 << n)] {
                    let s = broadcast_scheme(&g, source);
                    let r = verify_minimum_time(&g, &s, 2)
                        .unwrap_or_else(|e| panic!("G_{{{n},{m}}} from {source}: {e}"));
                    assert_eq!(r.rounds, n as usize);
                }
            }
        }
    }

    #[test]
    fn theorem6_broadcast_k_minimum_time_k3() {
        for dims in [
            vec![1u32, 2, 5],
            vec![2, 4, 7],
            vec![2, 4, 9],
            vec![3, 5, 8],
        ] {
            let g = SparseHypercube::construct(&dims);
            let n = g.n();
            for source in [0u64, (1 << n) - 1, 0b101 % (1 << n)] {
                let s = broadcast_scheme(&g, source);
                let r = verify_minimum_time(&g, &s, 3)
                    .unwrap_or_else(|e| panic!("{dims:?} from {source}: {e}"));
                assert_eq!(r.rounds, n as usize);
                assert!(r.max_call_len <= 3);
            }
        }
    }

    #[test]
    fn theorem6_broadcast_k_minimum_time_k4() {
        for dims in [vec![1u32, 2, 3, 6], vec![1, 3, 5, 9], vec![2, 4, 6, 10]] {
            let g = SparseHypercube::construct(&dims);
            let n = g.n();
            for source in [0u64, (1 << n) - 1] {
                let s = broadcast_scheme(&g, source);
                let r = verify_minimum_time(&g, &s, 4)
                    .unwrap_or_else(|e| panic!("{dims:?} from {source}: {e}"));
                assert_eq!(r.rounds, n as usize);
                assert!(r.max_call_len <= 4);
            }
        }
    }

    #[test]
    fn property1_schedule_valid_under_larger_k() {
        // Paper Property 1: minimum-time k-line schemes remain valid for
        // k + 1.
        let g = SparseHypercube::construct_base(6, 2);
        let s = broadcast_scheme(&g, 0);
        for k in 2..=6usize {
            assert!(verify_schedule(&g, &s, k).is_ok(), "k={k}");
        }
    }

    #[test]
    fn informed_doubles_every_round() {
        let g = SparseHypercube::construct_base(7, 3);
        let s = broadcast_scheme(&g, 42);
        let r = verify_minimum_time(&g, &s, 2).unwrap();
        let expect: Vec<u64> = (1..=7).map(|t| 1u64 << t).collect();
        assert_eq!(r.informed_after_round, expect);
    }

    #[test]
    fn phase1_calls_stay_in_copy_until_cross() {
        // Every Phase-1 call's intermediate hops stay inside the caller's
        // copy (dims <= m), with exactly the final hop crossing.
        let g = SparseHypercube::construct_base(6, 2);
        let s = broadcast_scheme(&g, 0);
        for round in &s.rounds[..4] {
            for call in &round.calls {
                let path = &call.path;
                for w in path.windows(2).take(path.len() - 2) {
                    assert!(
                        (w[0] ^ w[1]).trailing_zeros() < 2,
                        "relay hop must stay in the 2-cube"
                    );
                }
                let last = path[path.len() - 1] ^ path[path.len() - 2];
                assert!(last.trailing_zeros() >= 2, "final hop crosses");
            }
        }
    }
}
