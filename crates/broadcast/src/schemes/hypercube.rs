//! The classical binomial-tree broadcast on the full hypercube `Q_n` under
//! 1-line (store-and-forward) communication — the baseline the sparse
//! hypercube is measured against (paper §3: `Q_n` "is known to have a
//! minimum-time broadcasting property under the 1-line model").

use crate::model::{Call, Round, Schedule, Vertex};

/// Minimum-time 1-line broadcast on `Q_n` from `source`: in round `t`
/// (`t = 1..=n`), every informed vertex calls its neighbor across
/// dimension `n − t + 1`. All calls of a round use distinct edges of one
/// dimension class, so the schedule is conflict-free, and the informed set
/// exactly doubles each round.
///
/// # Panics
/// Panics if `n > 28` (schedule materialization) or `source >= 2^n`.
#[must_use]
pub fn hypercube_broadcast(n: u32, source: Vertex) -> Schedule {
    assert!(n <= 28, "schedule materialization capped at n = 28");
    assert!(source < (1u64 << n), "source out of range");
    let mut schedule = Schedule::new(source);
    let mut informed: Vec<Vertex> = Vec::with_capacity(1 << n);
    informed.push(source);
    for dim in (1..=n).rev() {
        let flip = 1u64 << (dim - 1);
        let mut round = Round::default();
        round.calls.reserve(informed.len());
        let prev = informed.len();
        for idx in 0..prev {
            let w = informed[idx];
            let v = w ^ flip;
            round.calls.push(Call::new(vec![w, v]));
            informed.push(v);
        }
        schedule.rounds.push(round);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use crate::verify::verify_minimum_time;
    use shc_graph::builders::hypercube;

    #[test]
    fn broadcast_is_minimum_time_for_all_sources_q4() {
        let q = hypercube(4);
        let o = GraphOracle::new(&q);
        for source in 0..16u64 {
            let s = hypercube_broadcast(4, source);
            let r = verify_minimum_time(&o, &s, 1).unwrap_or_else(|e| {
                panic!("source {source}: {e}");
            });
            assert_eq!(r.rounds, 4);
            assert_eq!(r.max_call_len, 1);
            assert_eq!(r.total_calls, 15);
        }
    }

    #[test]
    fn informed_doubles_every_round() {
        let s = hypercube_broadcast(5, 7);
        let q = hypercube(5);
        let o = GraphOracle::new(&q);
        let r = verify_minimum_time(&o, &s, 1).unwrap();
        assert_eq!(r.informed_after_round, vec![2, 4, 8, 16, 32]);
    }

    #[test]
    fn n_zero_single_vertex() {
        let s = hypercube_broadcast(0, 0);
        assert_eq!(s.num_rounds(), 0);
    }

    #[test]
    fn calls_per_round_binomial_pattern() {
        let s = hypercube_broadcast(3, 0);
        assert_eq!(s.calls_per_round(), vec![1, 2, 4]);
    }
}
