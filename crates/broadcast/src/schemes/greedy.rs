//! Greedy adaptive k-line broadcast on *arbitrary* graphs.
//!
//! The paper's schemes exploit the sparse hypercube's structure; this
//! module provides the structure-free baseline: each round, every informed
//! vertex greedily grabs the **farthest** still-uninformed vertex reachable
//! within `k` hops over edges not yet occupied this round (farthest-first
//! mirrors recursive doubling: jump far early, fill in locally later —
//! nearest-first provably wastes rounds, e.g. on `C_8` at `k = 2`). Two
//! uses:
//!
//! * a *baseline* to compare the constructive schemes against (it matches
//!   minimum time on well-connected graphs but can fall behind — the gap
//!   is what Theorems 4/6 buy);
//! * a *fault-tolerance probe*: run it on a sparse hypercube with failed
//!   edges and measure the slowdown (the paper's §5 robustness concern).
//!
//! The scheduler always terminates: when no call can be placed in a round
//! and vertices remain uninformed, it reports how far it got.

use crate::model::{Call, Round, Schedule, Vertex};
use shc_graph::{BitSet, GraphView, Node};
use std::collections::{HashSet, VecDeque};

/// Outcome of a greedy run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyOutcome {
    /// The schedule produced (valid whether or not it completed).
    pub schedule: Schedule,
    /// Vertices informed at the end.
    pub informed: u64,
    /// `true` iff every reachable vertex was informed.
    pub complete: bool,
}

/// Runs the greedy scheduler on a materialized graph from `source` with
/// call-length bound `k`, for at most `max_rounds` rounds.
///
/// # Panics
/// Panics if `source` is out of range or `k == 0`.
#[must_use]
pub fn greedy_broadcast<G: GraphView>(
    g: &G,
    source: Node,
    k: usize,
    max_rounds: usize,
) -> GreedyOutcome {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(k >= 1, "k must be positive");
    let mut informed = BitSet::new(n);
    informed.insert(source as usize);
    let mut schedule = Schedule::new(Vertex::from(source));

    for _ in 0..max_rounds {
        if informed.is_full() {
            break;
        }
        let mut round = Round::default();
        let mut used_edges: HashSet<(Node, Node)> = HashSet::new();
        let mut claimed: BitSet = informed.clone(); // receivers already spoken for
        let callers: Vec<Node> = informed.iter().map(|v| v as Node).collect();
        let mut placed = Vec::new();
        for &caller in &callers {
            if let Some(path) = farthest_target(g, caller, k, &claimed, &used_edges) {
                for w in path.windows(2) {
                    let e = norm(w[0], w[1]);
                    used_edges.insert(e);
                }
                let target = *path.last().expect("nonempty");
                claimed.insert(target as usize);
                placed.push(target);
                round
                    .calls
                    .push(Call::new(path.into_iter().map(Vertex::from).collect()));
            }
        }
        if round.calls.is_empty() {
            break; // no progress possible
        }
        for t in placed {
            informed.insert(t as usize);
        }
        schedule.rounds.push(round);
    }

    let count = informed.count() as u64;
    GreedyOutcome {
        complete: count == n as u64,
        informed: count,
        schedule,
    }
}

fn norm(a: Node, b: Node) -> (Node, Node) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// BFS from `caller` over edges unused this round, up to `k` hops,
/// returning the path to the **farthest** unclaimed vertex (ties broken by
/// BFS discovery order); `None` when nothing is reachable.
fn farthest_target<G: GraphView>(
    g: &G,
    caller: Node,
    k: usize,
    claimed: &BitSet,
    used_edges: &HashSet<(Node, Node)>,
) -> Option<Vec<Node>> {
    let n = g.num_vertices();
    let mut parent = vec![Node::MAX; n];
    let mut depth = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    parent[caller as usize] = caller;
    depth[caller as usize] = 0;
    queue.push_back(caller);
    let mut best: Option<Node> = None;
    while let Some(u) = queue.pop_front() {
        let d = depth[u as usize];
        if d as usize == k {
            continue;
        }
        for &v in g.neighbors(u) {
            if parent[v as usize] != Node::MAX || used_edges.contains(&norm(u, v)) {
                continue;
            }
            parent[v as usize] = u;
            depth[v as usize] = d + 1;
            if !claimed.contains(v as usize) {
                // BFS explores in distance order: later finds are farther.
                best = Some(v);
            }
            queue.push_back(v);
        }
    }
    let target = best?;
    let mut path = vec![target];
    let mut cur = target;
    while cur != caller {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Convenience wrapper: greedy broadcast judged against the minimum round
/// count, validated by the standard verifier.
///
/// Returns `(rounds_used, minimum_rounds, complete)`.
#[must_use]
pub fn greedy_rounds<G: GraphView>(g: &G, source: Node, k: usize) -> (usize, usize, bool) {
    let n = g.num_vertices() as u64;
    let min_rounds = shc_core::bounds::ceil_log2(n) as usize;
    // Allow generous slack before giving up.
    let outcome = greedy_broadcast(g, source, k, 4 * min_rounds + 8);
    (outcome.schedule.num_rounds(), min_rounds, outcome.complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use crate::verify::verify_schedule;
    use shc_core::SparseHypercube;
    use shc_graph::builders::{cycle, hypercube, path, star};

    fn assert_valid<G: GraphView>(g: &G, outcome: &GreedyOutcome, k: usize) {
        let o = GraphOracle::new(g);
        if outcome.complete {
            verify_schedule(&o, &outcome.schedule, k).expect("greedy schedule valid");
        }
    }

    #[test]
    fn greedy_matches_minimum_on_hypercube() {
        let g = hypercube(5);
        for source in [0u32, 7, 31] {
            let (rounds, min_rounds, complete) = greedy_rounds(&g, source, 1);
            assert!(complete);
            assert_eq!(rounds, min_rounds, "hypercube is a 1-mlbg");
        }
    }

    #[test]
    fn greedy_on_star_with_k2() {
        let g = star(16);
        let outcome = greedy_broadcast(&g, 3, 2, 10);
        assert!(outcome.complete);
        assert_eq!(outcome.schedule.num_rounds(), 4);
        assert_valid(&g, &outcome, 2);
    }

    #[test]
    fn greedy_on_path_needs_more_rounds_at_small_k() {
        // P16 from an end with k = 1: greedy (like any scheme) needs ~15
        // rounds — far above log2 16 = 4.
        let g = path(16);
        let (rounds, min_rounds, complete) = greedy_rounds(&g, 0, 1);
        assert!(complete);
        assert!(rounds > min_rounds);
        assert_eq!(rounds, 15);
    }

    #[test]
    fn greedy_on_cycle_k2_is_near_minimum() {
        // C8 ∈ G_2 (the exact solver proves it), but greedy resolves
        // caller/target contention in fixed order and can strand one
        // caller for a round — the gap between a baseline and the
        // constructive schemes is exactly what this measures.
        let g = cycle(8);
        let (rounds, min_rounds, complete) = greedy_rounds(&g, 0, 2);
        assert!(complete);
        assert!(
            (min_rounds..=min_rounds + 1).contains(&rounds),
            "expected {min_rounds} or {}, got {rounds}",
            min_rounds + 1
        );
    }

    #[test]
    fn greedy_on_sparse_hypercube_completes() {
        // Greedy has no knowledge of the construction; it may or may not
        // hit minimum time, but it must complete and validate.
        let g = SparseHypercube::construct_base(8, 3).to_graph();
        let outcome = greedy_broadcast(&g, 0, 2, 40);
        assert!(outcome.complete);
        assert_valid(&g, &outcome, 2);
    }

    #[test]
    fn greedy_respects_max_rounds() {
        let g = path(64);
        let outcome = greedy_broadcast(&g, 0, 1, 3);
        assert!(!outcome.complete);
        assert_eq!(outcome.schedule.num_rounds(), 3);
        assert_eq!(outcome.informed, 4);
    }

    #[test]
    fn greedy_handles_disconnected_graphs() {
        let g = shc_graph::AdjGraph::from_edges(4, [(0, 1)]);
        let outcome = greedy_broadcast(&g, 0, 2, 10);
        assert!(!outcome.complete, "unreachable vertices stay uninformed");
        assert_eq!(outcome.informed, 2);
    }

    #[test]
    fn greedy_single_vertex() {
        let g = shc_graph::AdjGraph::with_vertices(1);
        let outcome = greedy_broadcast(&g, 0, 1, 5);
        assert!(outcome.complete);
        assert_eq!(outcome.schedule.num_rounds(), 0);
    }
}
