//! Broadcast schemes: the paper's constructions and the baselines they are
//! compared against.
//!
//! * [`sparse`] — Schemes `Broadcast_2` / `Broadcast_k` on sparse
//!   hypercubes (Theorems 4 and 6).
//! * [`hypercube`] — classical binomial 1-line broadcast on `Q_n`.
//! * [`tree`] — minimum-time line broadcast on trees (Theorem 1).
//! * [`star`] — the edge-minimal 2-mlbg schedule on stars (§2).
//! * [`greedy`] — structure-free adaptive baseline; fault-tolerance probe.

pub mod greedy;
pub mod hypercube;
pub mod sparse;
pub mod star;
pub mod tree;

pub use greedy::{greedy_broadcast, greedy_rounds, GreedyOutcome};
pub use hypercube::hypercube_broadcast;
pub use sparse::broadcast_scheme;
pub use star::star_broadcast;
pub use tree::{tree_line_broadcast, TreeSchedError};
