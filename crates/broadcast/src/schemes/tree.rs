//! Minimum-time line broadcast on trees — the executable content of the
//! paper's Theorem 1 (degree-3 trees are k-mlbgs for
//! `k >= 2·ceil(log2((N+2)/3))`, via Farley's unbounded line-broadcast
//! result, the paper's reference \[14\]).
//!
//! ## Algorithm: recursive region splitting
//!
//! Each informed vertex owns a *region* (a subset of still-relevant
//! vertices). Every round, each region with more than one member splits in
//! two: the informed vertex `v` calls a vertex `u` in the other half.
//! Conflict-freedom comes from a structural invariant: the regions'
//! **Steiner trees are pairwise edge-disjoint** (they may share cut
//! vertices, through which calls "switch"). A split picks a cut vertex `w`
//! of the region's Steiner tree and distributes whole branches of
//! `ST − w` to the two sides, so the children's Steiner trees share only
//! `w` — never an edge — and all call paths stay inside their own region's
//! Steiner tree.
//!
//! Balancing is budget-driven: a region with `d` rounds remaining may keep
//! at most `2^(d−1)` members per side. Branch distribution is an exact
//! subset-sum; when no cut vertex admits a feasible split the scheduler
//! reports failure honestly (it is a sufficient procedure, not a decision
//! procedure). For the paper's Theorem-1 trees the slack
//! `2^ceil(log2 N) − N >= 2^h + 2` makes splits feasible throughout — a
//! fact the tests verify for every `h` and every source.

use crate::model::{Call, Round, Schedule, Vertex};
use shc_core::bounds::ceil_log2;
use shc_graph::traversal::{bfs_distances, shortest_path};
use shc_graph::{AdjGraph, GraphView, Node};
use std::collections::{HashMap, HashSet, VecDeque};

/// Scheduling failure: some region could not split within its budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeSchedError {
    /// Round at which the failure occurred (0-based).
    pub round: usize,
    /// Members in the stuck region.
    pub region_size: usize,
    /// Rounds that were left.
    pub deadline: usize,
}

impl std::fmt::Display for TreeSchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round {}: region of {} members cannot split within {} rounds",
            self.round, self.region_size, self.deadline
        )
    }
}

impl std::error::Error for TreeSchedError {}

struct Region {
    members: Vec<Node>,
    informed: Node,
    /// Vertices of the Steiner tree spanning `members ∪ {informed}`.
    steiner: Vec<Node>,
}

impl Region {
    fn new(tree: &AdjGraph, members: Vec<Node>, informed: Node) -> Self {
        debug_assert!(members.contains(&informed));
        let steiner = steiner_vertices(tree, &members, informed);
        Self {
            members,
            informed,
            steiner,
        }
    }
}

/// Union of the tree paths from `anchor` to every member — the Steiner
/// tree's vertex set (the anchor is itself a member).
fn steiner_vertices(tree: &AdjGraph, members: &[Node], anchor: Node) -> Vec<Node> {
    // Parent pointers from a BFS rooted at the anchor.
    let mut parent: Vec<Node> = vec![Node::MAX; tree.num_vertices()];
    let mut queue = VecDeque::new();
    parent[anchor as usize] = anchor;
    queue.push_back(anchor);
    while let Some(x) = queue.pop_front() {
        for &y in tree.neighbors(x) {
            if parent[y as usize] == Node::MAX {
                parent[y as usize] = x;
                queue.push_back(y);
            }
        }
    }
    let mut marked: HashSet<Node> = HashSet::with_capacity(2 * members.len());
    marked.insert(anchor);
    for &m in members {
        let mut cur = m;
        while marked.insert(cur) {
            cur = parent[cur as usize];
        }
    }
    let mut out: Vec<Node> = marked.into_iter().collect();
    out.sort_unstable();
    out
}

/// One candidate split: which cut vertex, which branches go to B, and the
/// resulting side sizes.
struct SplitPlan {
    cut: Node,
    /// Branch ids (indices into the branch list) assigned to side B.
    b_branches: Vec<usize>,
    /// Whether the cut vertex itself (if a member) counts toward B.
    cut_to_b: bool,
    max_side: usize,
}

/// Branches of `steiner − w`, each as (vertex set, member weight,
/// contains-informed flag).
fn branches_at(
    tree: &AdjGraph,
    steiner: &HashSet<Node>,
    members: &HashSet<Node>,
    w: Node,
    informed: Node,
) -> Vec<(Vec<Node>, usize, bool)> {
    let mut seen: HashSet<Node> = HashSet::new();
    seen.insert(w);
    let mut out = Vec::new();
    for &start in tree.neighbors(w) {
        if !steiner.contains(&start) || seen.contains(&start) {
            continue;
        }
        // DFS this branch.
        let mut verts = Vec::new();
        let mut weight = 0usize;
        let mut has_informed = false;
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(x) = stack.pop() {
            verts.push(x);
            if members.contains(&x) {
                weight += 1;
            }
            if x == informed {
                has_informed = true;
            }
            for &y in tree.neighbors(x) {
                if steiner.contains(&y) && seen.insert(y) {
                    stack.push(y);
                }
            }
        }
        out.push((verts, weight, has_informed));
    }
    out
}

/// Exact subset-sum over branch weights with parent pointers for
/// reconstruction: `dp[s] = Some((item, prev_sum))` when `s` is reachable.
fn subset_sum(weights: &[usize], cap: usize) -> Vec<Option<(usize, usize)>> {
    let mut dp: Vec<Option<(usize, usize)>> = vec![None; cap + 1];
    dp[0] = Some((usize::MAX, 0));
    for (i, &w) in weights.iter().enumerate() {
        if w == 0 || w > cap {
            continue;
        }
        for s in (w..=cap).rev() {
            if dp[s].is_none() && dp[s - w].is_some() {
                dp[s] = Some((i, s - w));
            }
        }
    }
    dp
}

/// Finds the most balanced feasible split of `region` with both sides at
/// most `cap` members.
fn split_region(tree: &AdjGraph, region: &Region, cap: usize) -> Option<SplitPlan> {
    let total = region.members.len();
    let member_set: HashSet<Node> = region.members.iter().copied().collect();
    let steiner_set: HashSet<Node> = region.steiner.iter().copied().collect();
    let mut best: Option<SplitPlan> = None;

    for &w in &region.steiner {
        let branches = branches_at(tree, &steiner_set, &member_set, w, region.informed);
        if branches.is_empty() {
            continue;
        }
        let w_member = member_set.contains(&w);
        let v_branch = branches.iter().position(|b| b.2);
        debug_assert!(v_branch.is_some() || region.informed == w);

        // Weights of the freely assignable branches (informed's branch is
        // pinned to side A).
        let free: Vec<usize> = branches
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != v_branch)
            .map(|(_, b)| b.1)
            .collect();
        let free_ids: Vec<usize> = (0..branches.len())
            .filter(|i| Some(*i) != v_branch)
            .collect();

        // The cut vertex, when a member, may count to either side; when it
        // is the informed vertex it must stay on side A.
        // A non-member cut contributes no weight; the informed vertex must
        // stay on side A. Only a non-informed member cut may count to B.
        let cut_choices: &[bool] = if w_member && w != region.informed {
            &[false, true]
        } else {
            &[false]
        };

        for &cut_to_b in cut_choices {
            let a_fixed =
                v_branch.map_or(0, |i| branches[i].1) + usize::from(w_member && !cut_to_b);
            let b_fixed = usize::from(w_member && cut_to_b);
            let dp = subset_sum(&free, cap);
            // b = b_fixed + s must satisfy 1 <= b <= cap and
            // total - b <= cap.
            for (s, entry) in dp.iter().enumerate() {
                if entry.is_none() {
                    continue;
                }
                let b = b_fixed + s;
                let a = total - b;
                if b == 0 || b > cap || a > cap || a < a_fixed {
                    continue;
                }
                // `a < a_fixed` cannot happen (a = total − b and all
                // non-chosen weight is on side A), kept as a guard.
                let max_side = a.max(b);
                if best.as_ref().is_none_or(|p| max_side < p.max_side) {
                    // Reconstruct the chosen free-branch indices.
                    let mut chosen = Vec::new();
                    let mut cur = s;
                    while cur != 0 {
                        let (item, prev) = dp[cur].expect("reachable");
                        chosen.push(free_ids[item]);
                        cur = prev;
                    }
                    best = Some(SplitPlan {
                        cut: w,
                        b_branches: chosen,
                        cut_to_b,
                        max_side,
                    });
                }
            }
        }
    }
    best
}

/// Builds a minimum-time line-broadcast schedule on `tree` from `source`.
/// Call lengths are bounded by the tree's diameter, so the schedule is a
/// valid k-line broadcast for any `k >= diam(tree)` (Theorem 1 instantiates
/// this with `diam <= 2h`).
///
/// # Errors
/// Returns [`TreeSchedError`] if the region-splitting heuristic gets stuck
/// (does not occur for the paper's Theorem-1 trees; see tests).
///
/// # Panics
/// Panics if `tree` is not a tree or `source` is out of range.
pub fn tree_line_broadcast(tree: &AdjGraph, source: Node) -> Result<Schedule, TreeSchedError> {
    let n = tree.num_vertices();
    assert!(n >= 1, "empty tree");
    assert_eq!(tree.num_edges(), n - 1, "not a tree (edge count)");
    assert!(
        shc_graph::traversal::is_connected(tree),
        "not a tree (disconnected)"
    );
    assert!((source as usize) < n, "source out of range");

    let total_rounds = ceil_log2(n as u64) as usize;
    let mut schedule = Schedule::new(Vertex::from(source));
    let mut regions = vec![Region::new(tree, (0..n as Node).collect(), source)];

    for round_idx in 0..total_rounds {
        if regions.iter().all(|r| r.members.len() <= 1) {
            break;
        }
        let deadline = total_rounds - round_idx;
        let cap = 1usize << (deadline - 1);
        let mut round = Round::default();
        let mut next_regions = Vec::with_capacity(2 * regions.len());

        for region in regions {
            if region.members.len() <= 1 {
                next_regions.push(region);
                continue;
            }
            let plan = split_region(tree, &region, cap).ok_or(TreeSchedError {
                round: round_idx,
                region_size: region.members.len(),
                deadline,
            })?;

            // Materialize the side-B vertex set.
            let member_set: HashSet<Node> = region.members.iter().copied().collect();
            let steiner_set: HashSet<Node> = region.steiner.iter().copied().collect();
            let branches = branches_at(tree, &steiner_set, &member_set, plan.cut, region.informed);
            let mut b_vertices: HashSet<Node> = HashSet::new();
            for &bi in &plan.b_branches {
                b_vertices.extend(branches[bi].0.iter().copied());
            }
            let b_members: Vec<Node> = region
                .members
                .iter()
                .copied()
                .filter(|&x| b_vertices.contains(&x) || (plan.cut_to_b && x == plan.cut))
                .collect();
            let a_members: Vec<Node> = region
                .members
                .iter()
                .copied()
                .filter(|&x| !b_members.contains(&x))
                .collect();
            debug_assert!(!b_members.is_empty() && a_members.contains(&region.informed));

            // Callee: the B member nearest the cut vertex.
            let u = if plan.cut_to_b {
                plan.cut
            } else {
                let dist = bfs_distances(tree, plan.cut);
                b_members
                    .iter()
                    .copied()
                    .min_by_key(|&x| dist[x as usize])
                    .expect("side B nonempty")
            };

            let path = shortest_path(tree, region.informed, u).expect("tree is connected");
            round
                .calls
                .push(Call::new(path.into_iter().map(Vertex::from).collect()));

            next_regions.push(Region::new(tree, a_members, region.informed));
            next_regions.push(Region::new(tree, b_members, u));
        }

        schedule.rounds.push(round);
        regions = next_regions;
    }

    if let Some(stuck) = regions.iter().find(|r| r.members.len() > 1) {
        return Err(TreeSchedError {
            round: total_rounds,
            region_size: stuck.members.len(),
            deadline: 0,
        });
    }
    Ok(schedule)
}

/// Convenience: the smallest `k` for which the produced schedule is valid —
/// its longest call. Useful for reporting against Theorem 1's `2h` bound.
#[must_use]
pub fn schedule_call_bound(schedule: &Schedule) -> usize {
    schedule.max_call_len()
}

/// Per-source map of longest-call lengths, `None` entries for sources where
/// scheduling failed.
#[must_use]
pub fn max_call_lengths_per_source(tree: &AdjGraph) -> Vec<Option<usize>> {
    let mut lengths = HashMap::new();
    for source in 0..tree.num_vertices() as Node {
        if let Ok(s) = tree_line_broadcast(tree, source) {
            lengths.insert(source, s.max_call_len());
        }
    }
    (0..tree.num_vertices() as Node)
        .map(|v| lengths.get(&v).copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use crate::verify::verify_minimum_time;
    use shc_graph::builders::{path, random_tree, star, theorem1_tree};
    use shc_graph::metrics;

    #[test]
    fn path_graphs_schedule() {
        for n in [2usize, 3, 4, 7, 8, 9, 16, 31] {
            let t = path(n);
            let o = GraphOracle::new(&t);
            for source in [0, (n - 1) as Node, (n / 2) as Node] {
                let s = tree_line_broadcast(&t, source)
                    .unwrap_or_else(|e| panic!("path({n}) from {source}: {e}"));
                verify_minimum_time(&o, &s, n)
                    .unwrap_or_else(|e| panic!("path({n}) from {source}: {e}"));
            }
        }
    }

    #[test]
    fn stars_schedule_with_length_2_calls() {
        for n in [2usize, 5, 9, 17] {
            let t = star(n);
            let o = GraphOracle::new(&t);
            for source in 0..n as Node {
                let s = tree_line_broadcast(&t, source)
                    .unwrap_or_else(|e| panic!("star({n}) from {source}: {e}"));
                let r = verify_minimum_time(&o, &s, 2)
                    .unwrap_or_else(|e| panic!("star({n}) from {source}: {e}"));
                assert!(r.max_call_len <= 2);
            }
        }
    }

    #[test]
    fn theorem1_trees_all_sources() {
        // Theorem 1: the tree is a 2h-mlbg — broadcast completes in
        // ceil(log2 N) rounds from EVERY source with calls of length <= 2h.
        for h in 1..=5u32 {
            let t = theorem1_tree(h);
            let o = GraphOracle::new(&t);
            let diam = metrics::diameter(&t).unwrap() as usize;
            assert!(diam <= 2 * h as usize);
            for source in 0..t.num_vertices() as Node {
                let s = tree_line_broadcast(&t, source)
                    .unwrap_or_else(|e| panic!("h={h}, source {source}: {e}"));
                let r = verify_minimum_time(&o, &s, 2 * h as usize)
                    .unwrap_or_else(|e| panic!("h={h}, source {source}: {e}"));
                assert!(r.max_call_len <= diam);
            }
        }
    }

    #[test]
    fn theorem1_tree_h6_center_and_leaf() {
        let t = theorem1_tree(6); // 190 vertices
        let o = GraphOracle::new(&t);
        for source in [0, 1, (t.num_vertices() - 1) as Node] {
            let s = tree_line_broadcast(&t, source).unwrap();
            verify_minimum_time(&o, &s, 12).unwrap();
        }
    }

    #[test]
    fn single_vertex_tree() {
        let t = AdjGraph::with_vertices(1);
        let s = tree_line_broadcast(&t, 0).unwrap();
        assert_eq!(s.num_rounds(), 0);
    }

    #[test]
    fn two_vertex_tree() {
        let t = path(2);
        let s = tree_line_broadcast(&t, 1).unwrap();
        assert_eq!(s.num_rounds(), 1);
        assert_eq!(s.rounds[0].calls[0].path, vec![1, 0]);
    }

    #[test]
    fn random_trees_mostly_schedule() {
        // The splitter is a sufficient procedure; on random trees it should
        // succeed overwhelmingly (failures would indicate a bug rather than
        // genuine infeasibility at these sizes). Any schedule produced must
        // validate.
        let mut rng = rand::rngs::mock::StepRng::new(0xDEADBEEF, 0x9E3779B97F4A7C15);
        let mut ok = 0usize;
        let mut total = 0usize;
        for n in [5usize, 9, 12, 17, 24, 31, 40] {
            let t = random_tree(n, &mut rng);
            let o = GraphOracle::new(&t);
            for source in 0..n as Node {
                total += 1;
                if let Ok(s) = tree_line_broadcast(&t, source) {
                    verify_minimum_time(&o, &s, n)
                        .unwrap_or_else(|e| panic!("random tree n={n} source {source}: {e}"));
                    ok += 1;
                }
            }
        }
        assert!(
            ok * 10 >= total * 9,
            "region splitting should succeed on >= 90% of random instances ({ok}/{total})"
        );
    }

    #[test]
    fn error_display() {
        let e = TreeSchedError {
            round: 2,
            region_size: 5,
            deadline: 1,
        };
        assert!(e.to_string().contains("region of 5"));
    }
}
