//! Minimum-time 2-line broadcast on the star `K_{1,N−1}` — the paper's §2
//! observation that the star is the *edge-minimal* member of `G_k` for
//! every `k >= 2`: informed leaves call uninformed leaves *through* the
//! center (length-2 calls switching at the hub), so the informed set
//! doubles even though the center has all the edges.

use crate::model::{Call, Round, Schedule, Vertex};

/// Builds the doubling schedule on a star with `n` vertices (center 0,
/// leaves `1..n`) from any `source`.
///
/// # Panics
/// Panics if `n == 0` or `source >= n`.
#[must_use]
pub fn star_broadcast(n: u64, source: Vertex) -> Schedule {
    assert!(n >= 1, "empty star");
    assert!(source < n, "source out of range");
    let mut schedule = Schedule::new(source);
    let mut informed: Vec<Vertex> = vec![source];
    let mut uninformed: Vec<Vertex> = (0..n).filter(|&v| v != source).collect();
    // Inform the center early if the source is a leaf: the center reaches
    // leaves with length-1 calls, leaves need length 2.
    uninformed.sort_unstable(); // center (0) first
    while !uninformed.is_empty() {
        let mut round = Round::default();
        let mut next_uninformed = Vec::new();
        let mut targets = uninformed.into_iter();
        for &caller in &informed {
            match targets.next() {
                Some(t) => {
                    let path = if caller == 0 || t == 0 {
                        vec![caller, t] // direct spoke edge
                    } else {
                        vec![caller, 0, t] // switch through the center
                    };
                    round.calls.push(Call::new(path));
                }
                None => break,
            }
        }
        next_uninformed.extend(targets);
        for call in &round.calls {
            informed.push(call.receiver());
        }
        schedule.rounds.push(round);
        uninformed = next_uninformed;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use crate::verify::verify_minimum_time;
    use shc_graph::builders::star;

    #[test]
    fn star_is_2mlbg_from_every_source() {
        for n in [2u64, 3, 5, 8, 16, 33] {
            let g = star(n as usize);
            let o = GraphOracle::new(&g);
            for source in 0..n {
                let s = star_broadcast(n, source);
                let r = verify_minimum_time(&o, &s, 2)
                    .unwrap_or_else(|e| panic!("star({n}) from {source}: {e}"));
                assert!(r.max_call_len <= 2);
            }
        }
    }

    #[test]
    fn center_source_uses_short_calls_first() {
        let s = star_broadcast(8, 0);
        assert_eq!(s.rounds[0].calls[0].len(), 1);
    }

    #[test]
    fn leaf_source_informs_center_first() {
        let s = star_broadcast(8, 3);
        let first = &s.rounds[0].calls[0];
        assert_eq!(first.receiver(), 0, "center informed in round 1");
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn single_vertex_star() {
        let s = star_broadcast(1, 0);
        assert_eq!(s.num_rounds(), 0);
    }

    #[test]
    fn doubling_pattern() {
        let s = star_broadcast(16, 0);
        assert_eq!(s.calls_per_round(), vec![1, 2, 4, 8]);
    }
}
