//! [`EdgeOracle`]: the minimal graph interface the schedule validator
//! needs. Implemented by rule-generated sparse hypercubes (no
//! materialization, so `n` up to 60 works) and by any materialized
//! [`shc_graph::GraphView`] graph.

use crate::model::Vertex;
use shc_core::SparseHypercube;
use shc_graph::{GraphView, Node};

/// Edge membership plus vertex count — all the validator needs.
pub trait EdgeOracle {
    /// Number of vertices (vertex ids are `0..num_vertices`).
    fn num_vertices(&self) -> u64;

    /// Undirected edge test.
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool;
}

impl EdgeOracle for SparseHypercube {
    fn num_vertices(&self) -> u64 {
        SparseHypercube::num_vertices(self)
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        SparseHypercube::has_edge(self, u, v)
    }
}

/// Adapter exposing a materialized graph as an [`EdgeOracle`].
pub struct GraphOracle<'a, G: GraphView> {
    graph: &'a G,
}

impl<'a, G: GraphView> GraphOracle<'a, G> {
    /// Wraps a graph reference.
    #[must_use]
    pub fn new(graph: &'a G) -> Self {
        Self { graph }
    }
}

impl<G: GraphView> EdgeOracle for GraphOracle<'_, G> {
    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = self.graph.num_vertices() as u64;
        if u >= n || v >= n {
            return false;
        }
        self.graph.has_edge(u as Node, v as Node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::cycle;

    #[test]
    fn graph_oracle_delegates() {
        let g = cycle(5);
        let o = GraphOracle::new(&g);
        assert_eq!(EdgeOracle::num_vertices(&o), 5);
        assert!(o.has_edge(0, 1));
        assert!(o.has_edge(4, 0));
        assert!(!o.has_edge(0, 2));
        assert!(!o.has_edge(0, 99), "out of range is not an edge");
    }

    #[test]
    fn sparse_hypercube_oracle() {
        let g = SparseHypercube::construct_base(4, 2);
        assert_eq!(EdgeOracle::num_vertices(&g), 16);
        assert!(EdgeOracle::has_edge(&g, 0, 1));
    }
}
