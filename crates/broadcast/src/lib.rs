//! # shc-broadcast — the k-line communication model, executable
//!
//! Definition 1 of Fujita & Farley's paper as machine-checked code:
//! schedules are explicit routed calls, the [`verify`] module replays them
//! against the model's rules (edge-disjoint, receiver-disjoint, length
//! `<= k`, informed callers, `ceil(log2 N)` rounds), and the [`schemes`]
//! module generates the paper's broadcast schemes plus baselines. An exact
//! search ([`solver`]) cross-checks tiny instances independently of the
//! constructions, and [`degrade`] replays fixed schedules over damaged
//! topologies for the robustness/fault-injection studies.
//!
//! ## Example
//!
//! Generate the paper's 2-line broadcast scheme on a sparse hypercube
//! and machine-check Definition 1 (edge-disjoint, receiver-disjoint,
//! length ≤ k, informed callers, minimum time):
//!
//! ```
//! use shc_broadcast::{broadcast_scheme, verify_minimum_time};
//! use shc_core::SparseHypercube;
//!
//! let g = SparseHypercube::construct_base(7, 3);
//! let schedule = broadcast_scheme(&g, 5);
//! let report = verify_minimum_time(&g, &schedule, 2).unwrap();
//! assert_eq!(report.rounds, 7); // = log2 |V|, the minimum
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod degrade;
pub mod model;
pub mod oracle;
pub mod schemes;
pub mod solver;
pub mod verify;

pub use degrade::{replay_degraded, DegradeReport};
pub use model::{Call, Round, Schedule, Vertex};
pub use oracle::{EdgeOracle, GraphOracle};
pub use schemes::{broadcast_scheme, hypercube_broadcast, star_broadcast, tree_line_broadcast};
pub use solver::{broadcast_time, solve_min_time, BroadcastTime, SolveOutcome};
pub use verify::{verify_minimum_time, verify_schedule, StrictError, VerifyReport, Violation};
