//! Schedule replay under *degraded* topologies.
//!
//! A schedule computed on an intact graph meets reality only at execution
//! time: by then links may have failed and nodes crashed. This module
//! replays a fixed schedule against a liveness predicate and accounts for
//! the cascade — a call is **severed** when one of its edges is dead, and
//! every later call placed by a vertex that never got informed is **void**
//! (its caller has nothing to forward). The result quantifies how much of
//! the broadcast actually lands, which the robustness experiments and the
//! `shc-runtime` fault scenarios aggregate over Monte Carlo fault draws.

use crate::model::{Schedule, Vertex};
use std::collections::HashSet;

/// Outcome of replaying one schedule over a damaged topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradeReport {
    /// Vertices that actually received the message (source included).
    pub informed: HashSet<Vertex>,
    /// Calls delivered intact.
    pub delivered_calls: usize,
    /// Calls lost because an edge on their path is dead.
    pub severed_calls: usize,
    /// Calls voided because their caller was never informed (the cascade
    /// of an earlier severed call).
    pub voided_calls: usize,
    /// 1 + index of the last round that delivered anything (0 when the
    /// whole schedule was lost).
    pub rounds_used: usize,
}

impl DegradeReport {
    /// Fraction of `total_vertices` informed at the end.
    #[must_use]
    pub fn informed_fraction(&self, total_vertices: u64) -> f64 {
        if total_vertices == 0 {
            0.0
        } else {
            self.informed.len() as f64 / total_vertices as f64
        }
    }

    /// `true` iff every call was delivered (an undamaged replay).
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.severed_calls == 0 && self.voided_calls == 0
    }
}

/// Replays `schedule` over a topology described by `edge_alive`: a call
/// delivers iff its caller is informed and every hop of its path is alive.
/// Crashed nodes are expressed through the predicate (all incident edges
/// dead); an unreachable receiver then stays uninformed and its own later
/// calls void.
pub fn replay_degraded<F>(schedule: &Schedule, mut edge_alive: F) -> DegradeReport
where
    F: FnMut(Vertex, Vertex) -> bool,
{
    let mut informed: HashSet<Vertex> = HashSet::new();
    informed.insert(schedule.source);
    let mut report = DegradeReport {
        informed: HashSet::new(),
        delivered_calls: 0,
        severed_calls: 0,
        voided_calls: 0,
        rounds_used: 0,
    };
    for (t, round) in schedule.rounds.iter().enumerate() {
        // Receivers informed this round only become callers next round —
        // matching Definition 1's synchronous semantics — so collect them
        // aside and merge after the round closes.
        let mut newly = Vec::new();
        for call in &round.calls {
            if !informed.contains(&call.caller()) {
                report.voided_calls += 1;
                continue;
            }
            if call.path.windows(2).all(|w| edge_alive(w[0], w[1])) {
                report.delivered_calls += 1;
                report.rounds_used = t + 1;
                newly.push(call.receiver());
            } else {
                report.severed_calls += 1;
            }
        }
        informed.extend(newly);
    }
    report.informed = informed;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Call, Round};

    /// 0 → 1 in round 1; {0 → 2, 1 → 3} in round 2 (a Q_2 broadcast).
    fn doubling_schedule() -> Schedule {
        Schedule {
            source: 0,
            rounds: vec![
                Round {
                    calls: vec![Call::new(vec![0, 1])],
                },
                Round {
                    calls: vec![Call::new(vec![0, 2]), Call::new(vec![1, 3])],
                },
            ],
        }
    }

    #[test]
    fn undamaged_replay_is_lossless() {
        let s = doubling_schedule();
        let r = replay_degraded(&s, |_, _| true);
        assert!(r.is_lossless());
        assert_eq!(r.delivered_calls, 3);
        assert_eq!(r.rounds_used, 2);
        assert_eq!(r.informed.len(), 4);
        assert!((r.informed_fraction(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn severed_call_cascades_to_void() {
        let s = doubling_schedule();
        // Kill edge {0,1}: round 1 is severed, so vertex 1's round-2 call
        // to 3 is void — 3 never hears, even though edge {1,3} is alive.
        let r = replay_degraded(&s, |u, v| (u, v) != (0, 1) && (v, u) != (0, 1));
        assert_eq!(r.severed_calls, 1);
        assert_eq!(r.voided_calls, 1);
        assert_eq!(r.delivered_calls, 1);
        assert_eq!(r.informed, HashSet::from([0, 2]));
        assert_eq!(r.rounds_used, 2);
    }

    #[test]
    fn same_round_receiver_cannot_relay_yet() {
        // 0 → 1 and 1 → 2 in the *same* round: 1 is not yet informed when
        // it places its call, so the relay voids (synchronous semantics).
        let s = Schedule {
            source: 0,
            rounds: vec![Round {
                calls: vec![Call::new(vec![0, 1]), Call::new(vec![1, 2])],
            }],
        };
        let r = replay_degraded(&s, |_, _| true);
        assert_eq!(r.delivered_calls, 1);
        assert_eq!(r.voided_calls, 1);
        assert!(!r.informed.contains(&2));
    }

    #[test]
    fn total_damage_informs_only_source() {
        let s = doubling_schedule();
        let r = replay_degraded(&s, |_, _| false);
        assert_eq!(r.informed, HashSet::from([0]));
        assert_eq!(r.rounds_used, 0);
        assert_eq!(r.severed_calls, 2);
        assert_eq!(r.voided_calls, 1, "vertex 1 never informed");
    }

    #[test]
    fn multi_hop_call_severed_by_middle_edge() {
        let s = Schedule {
            source: 0,
            rounds: vec![Round {
                calls: vec![Call::new(vec![0, 1, 2])],
            }],
        };
        let r = replay_degraded(&s, |u, v| (u.min(v), u.max(v)) != (1, 2));
        assert_eq!(r.severed_calls, 1);
        assert!(!r.informed.contains(&2));
    }
}
