//! The k-line communication model (paper, Definition 1): synchronous
//! rounds; each vertex may place one call along a path of at most `k`
//! edges; calls in the same round must be pairwise edge-disjoint and
//! receiver-disjoint.
//!
//! Schedules are *explicit*: every call carries its full routed path, so
//! the validator can check Definition 1 verbatim instead of trusting the
//! scheme.

use serde::{Deserialize, Serialize};

/// Vertices are bit strings packed into `u64`, matching `shc-core`.
pub type Vertex = u64;

/// One call: a routed path from the caller `path[0]` to the receiver
/// `path.last()`, occupying every edge along the way for the round.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Call {
    /// The routed path, `len() >= 2`.
    pub path: Vec<Vertex>,
}

impl Call {
    /// Creates a call from a routed path.
    ///
    /// # Panics
    /// Panics if the path has fewer than two vertices.
    #[must_use]
    pub fn new(path: Vec<Vertex>) -> Self {
        assert!(path.len() >= 2, "a call needs a caller and a receiver");
        Self { path }
    }

    /// The calling vertex.
    #[must_use]
    pub fn caller(&self) -> Vertex {
        self.path[0]
    }

    /// The receiving vertex.
    #[must_use]
    pub fn receiver(&self) -> Vertex {
        *self.path.last().expect("nonempty path")
    }

    /// Call length in edges (the paper's "length of a call").
    #[must_use]
    pub fn len(&self) -> usize {
        self.path.len() - 1
    }

    /// Calls are never empty; provided for clippy symmetry with `len`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The undirected edges occupied by the call, normalized as
    /// `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.path.windows(2).map(|w| {
            if w[0] < w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            }
        })
    }
}

/// The calls placed in one time unit.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round {
    /// Calls placed simultaneously in this round.
    pub calls: Vec<Call>,
}

impl Round {
    /// Number of calls in the round.
    #[must_use]
    pub fn num_calls(&self) -> usize {
        self.calls.len()
    }
}

/// A complete broadcast schedule from `source`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Originating vertex.
    pub source: Vertex,
    /// Rounds in time order.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// Creates an empty schedule for `source`.
    #[must_use]
    pub fn new(source: Vertex) -> Self {
        Self {
            source,
            rounds: Vec::new(),
        }
    }

    /// Number of time units used.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total number of calls across all rounds.
    #[must_use]
    pub fn num_calls(&self) -> usize {
        self.rounds.iter().map(Round::num_calls).sum()
    }

    /// Longest call in the schedule (edges); 0 for an empty schedule.
    #[must_use]
    pub fn max_call_len(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.calls.iter())
            .map(Call::len)
            .max()
            .unwrap_or(0)
    }

    /// The set of vertices informed after replaying the schedule
    /// (source plus every receiver), ignoring validity.
    #[must_use]
    pub fn informed_vertices(&self) -> std::collections::HashSet<Vertex> {
        let mut informed = std::collections::HashSet::new();
        informed.insert(self.source);
        for round in &self.rounds {
            for call in &round.calls {
                informed.insert(call.receiver());
            }
        }
        informed
    }

    /// Per-round call counts — for the doubling-pattern assertions
    /// (`|U|` at most doubles per round; exactly doubles when `N = 2^n`).
    #[must_use]
    pub fn calls_per_round(&self) -> Vec<usize> {
        self.rounds.iter().map(Round::num_calls).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_accessors() {
        let c = Call::new(vec![1, 5, 7]);
        assert_eq!(c.caller(), 1);
        assert_eq!(c.receiver(), 7);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        let edges: Vec<_> = c.edges().collect();
        assert_eq!(edges, vec![(1, 5), (5, 7)]);
    }

    #[test]
    fn call_edges_normalized() {
        let c = Call::new(vec![9, 2, 4]);
        let edges: Vec<_> = c.edges().collect();
        assert_eq!(edges, vec![(2, 9), (2, 4)]);
    }

    #[test]
    #[should_panic(expected = "caller and a receiver")]
    fn singleton_call_rejected() {
        let _ = Call::new(vec![3]);
    }

    #[test]
    fn schedule_counters() {
        let mut s = Schedule::new(0);
        s.rounds.push(Round {
            calls: vec![Call::new(vec![0, 1])],
        });
        s.rounds.push(Round {
            calls: vec![Call::new(vec![0, 2]), Call::new(vec![1, 0, 2, 3])],
        });
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.num_calls(), 3);
        assert_eq!(s.max_call_len(), 3);
        assert_eq!(s.calls_per_round(), vec![1, 2]);
        let informed = s.informed_vertices();
        assert_eq!(informed.len(), 4);
        assert!(informed.contains(&3));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new(7);
        assert_eq!(s.num_rounds(), 0);
        assert_eq!(s.max_call_len(), 0);
        assert_eq!(s.informed_vertices().len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Schedule {
            source: 1,
            rounds: vec![Round {
                calls: vec![Call::new(vec![1, 2])],
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
