//! Exact minimum-time k-line broadcast search for tiny graphs.
//!
//! A depth-first search over rounds: each round enumerates conflict-free
//! sets of calls (edge-disjoint, receiver-disjoint, one per informed
//! caller) and recurses; failed `(informed-set, round)` states are
//! memoized. Exponential — intended for `|V| <= 12`-ish cross-checks of
//! the constructive schemes and for small membership certificates
//! (e.g. "C_8 ∈ G_2 but C_8 ∉ G_1").

use crate::model::{Call, Round, Schedule, Vertex};
use shc_core::bounds::ceil_log2;
use shc_graph::{AdjGraph, GraphView, Node};
use std::collections::HashSet;

/// Result of the exact search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A minimum-time schedule exists (and here it is).
    Found(Schedule),
    /// Exhaustively proven impossible within `ceil(log2 N)` rounds.
    Infeasible,
    /// The node budget ran out before the search concluded.
    BudgetExceeded,
}

impl SolveOutcome {
    /// `true` for [`SolveOutcome::Found`].
    #[must_use]
    pub fn is_found(&self) -> bool {
        matches!(self, Self::Found(_))
    }
}

/// Result of the iterative-deepening broadcast-time computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BroadcastTime {
    /// `b_k(G, v)`: the exact minimum number of rounds, with a witness.
    Exact(usize, Schedule),
    /// Search exceeded the node budget before deciding.
    Unknown,
}

/// Computes the exact k-line broadcast time `b_k(G, v)` for a small graph
/// by iterative deepening from the information-theoretic minimum up to
/// `max_rounds`. `BroadcastTime::Unknown` when the budget runs out or no
/// schedule exists within `max_rounds` (e.g. disconnected graphs).
///
/// # Panics
/// Panics under the same conditions as [`solve_min_time`], including a
/// `source` outside `0..n` (the informed set is a bitmask over `0..n`, so
/// an out-of-range source would silently corrupt it — or overflow the
/// shift — instead of searching).
#[must_use]
pub fn broadcast_time(
    graph: &AdjGraph,
    source: Node,
    k: usize,
    max_rounds: usize,
    node_budget: usize,
) -> BroadcastTime {
    let n = graph.num_vertices();
    assert!((1..=24).contains(&n), "exact solver capped at 24 vertices");
    assert!(
        (source as usize) < n,
        "source {source} out of range for a {n}-vertex graph"
    );
    assert!(k >= 1);
    let floor = ceil_log2(n as u64) as usize;
    for rounds in floor..=max_rounds.max(floor) {
        let mut s = Searcher {
            graph,
            k,
            n,
            total_rounds: rounds,
            budget: node_budget,
            nodes: 0,
            failed: HashSet::new(),
            exhausted: false,
        };
        let informed = 1u32 << source;
        let mut sched_rounds: Vec<Round> = Vec::new();
        if s.search(informed, 0, &mut sched_rounds) {
            return BroadcastTime::Exact(
                sched_rounds.len(),
                Schedule {
                    source: Vertex::from(source),
                    rounds: sched_rounds,
                },
            );
        }
        if s.exhausted {
            return BroadcastTime::Unknown;
        }
    }
    BroadcastTime::Unknown
}

struct Searcher<'a> {
    graph: &'a AdjGraph,
    k: usize,
    n: usize,
    total_rounds: usize,
    budget: usize,
    nodes: usize,
    failed: HashSet<(u32, u8)>,
    exhausted: bool,
}

/// Searches for a minimum-time k-line broadcast on `graph` from `source`,
/// spending at most `node_budget` search nodes.
///
/// # Panics
/// Panics if the graph has more than 24 vertices or is empty, or if
/// `source` is not a vertex of the graph (an out-of-range source would
/// plant a phantom bit in the informed-set mask — returning wrong
/// schedules for `source < 32` and overflowing the shift beyond).
#[must_use]
pub fn solve_min_time(
    graph: &AdjGraph,
    source: Node,
    k: usize,
    node_budget: usize,
) -> SolveOutcome {
    let n = graph.num_vertices();
    assert!(n >= 1, "empty graph");
    assert!(n <= 24, "exact solver capped at 24 vertices");
    assert!(
        (source as usize) < n,
        "source {source} out of range for a {n}-vertex graph"
    );
    assert!(k >= 1);
    let total_rounds = ceil_log2(n as u64) as usize;
    let mut s = Searcher {
        graph,
        k,
        n,
        total_rounds,
        budget: node_budget,
        nodes: 0,
        failed: HashSet::new(),
        exhausted: false,
    };
    let informed = 1u32 << source;
    let mut rounds: Vec<Round> = Vec::new();
    if s.search(informed, 0, &mut rounds) {
        return SolveOutcome::Found(Schedule {
            source: Vertex::from(source),
            rounds,
        });
    }
    if s.exhausted {
        SolveOutcome::BudgetExceeded
    } else {
        SolveOutcome::Infeasible
    }
}

impl Searcher<'_> {
    fn full_mask(&self) -> u32 {
        if self.n == 32 {
            u32::MAX
        } else {
            (1u32 << self.n) - 1
        }
    }

    fn search(&mut self, informed: u32, round: usize, rounds: &mut Vec<Round>) -> bool {
        if informed == self.full_mask() {
            return true;
        }
        if round == self.total_rounds {
            return false;
        }
        self.nodes += 1;
        if self.nodes > self.budget {
            self.exhausted = true;
            return false;
        }
        let key = (informed, round as u8);
        if self.failed.contains(&key) {
            return false;
        }
        // Doubling prune: even perfect doubling cannot finish in time.
        let rounds_left = self.total_rounds - round;
        let reachable = (u64::from(informed.count_ones())) << rounds_left;
        if reachable < self.n as u64 {
            self.failed.insert(key);
            return false;
        }

        let callers: Vec<Node> = (0..self.n as Node)
            .filter(|&v| informed >> v & 1 == 1)
            .collect();
        // Candidate calls per caller.
        let candidates: Vec<Vec<Vec<Node>>> = callers
            .iter()
            .map(|&c| self.calls_from(c, informed))
            .collect();

        let mut chosen: Vec<Vec<Node>> = Vec::new();
        let found = self.assign(
            informed,
            round,
            &callers,
            &candidates,
            0,
            &mut HashSet::new(),
            &mut 0u32,
            &mut chosen,
            rounds,
        );
        if !found && !self.exhausted {
            self.failed.insert(key);
        }
        found
    }

    /// Enumerates edge-distinct paths of length 1..=k from `caller` ending
    /// at uninformed vertices.
    fn calls_from(&self, caller: Node, informed: u32) -> Vec<Vec<Node>> {
        let mut out = Vec::new();
        let mut path = vec![caller];
        let mut edges: HashSet<(Node, Node)> = HashSet::new();
        self.extend_path(&mut path, &mut edges, informed, &mut out);
        out
    }

    fn extend_path(
        &self,
        path: &mut Vec<Node>,
        edges: &mut HashSet<(Node, Node)>,
        informed: u32,
        out: &mut Vec<Vec<Node>>,
    ) {
        if path.len() > self.k {
            return;
        }
        let last = *path.last().expect("nonempty");
        for &next in self.graph.neighbors(last) {
            let e = if last < next {
                (last, next)
            } else {
                (next, last)
            };
            if edges.contains(&e) {
                continue;
            }
            edges.insert(e);
            path.push(next);
            if informed >> next & 1 == 0 {
                out.push(path.clone());
            }
            self.extend_path(path, edges, informed, out);
            path.pop();
            edges.remove(&e);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assign(
        &mut self,
        informed: u32,
        round: usize,
        callers: &[Node],
        candidates: &[Vec<Vec<Node>>],
        idx: usize,
        used_edges: &mut HashSet<(Node, Node)>,
        receivers: &mut u32,
        chosen: &mut Vec<Vec<Node>>,
        rounds: &mut Vec<Round>,
    ) -> bool {
        if self.exhausted {
            return false;
        }
        if idx == callers.len() {
            if chosen.is_empty() {
                return false; // an idle round cannot help
            }
            let new_informed = informed | *receivers;
            rounds.push(Round {
                calls: chosen
                    .iter()
                    .map(|p| Call::new(p.iter().map(|&v| Vertex::from(v)).collect()))
                    .collect(),
            });
            if self.search(new_informed, round + 1, rounds) {
                return true;
            }
            rounds.pop();
            return false;
        }
        // Try each candidate call of this caller, then the skip option.
        for path in &candidates[idx] {
            let receiver = *path.last().expect("nonempty");
            if *receivers >> receiver & 1 == 1 {
                continue;
            }
            let path_edges: Vec<(Node, Node)> = path
                .windows(2)
                .map(|w| {
                    if w[0] < w[1] {
                        (w[0], w[1])
                    } else {
                        (w[1], w[0])
                    }
                })
                .collect();
            if path_edges.iter().any(|e| used_edges.contains(e)) {
                continue;
            }
            for &e in &path_edges {
                used_edges.insert(e);
            }
            *receivers |= 1 << receiver;
            chosen.push(path.clone());

            if self.assign(
                informed,
                round,
                callers,
                candidates,
                idx + 1,
                used_edges,
                receivers,
                chosen,
                rounds,
            ) {
                return true;
            }

            chosen.pop();
            *receivers &= !(1 << receiver);
            for e in &path_edges {
                used_edges.remove(e);
            }
        }
        // Skip this caller.
        self.assign(
            informed,
            round,
            callers,
            candidates,
            idx + 1,
            used_edges,
            receivers,
            chosen,
            rounds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use crate::verify::verify_minimum_time;
    use shc_graph::builders::{cycle, hypercube, path, star, theorem1_tree};

    const BUDGET: usize = 2_000_000;

    fn assert_found(g: &AdjGraph, source: Node, k: usize) {
        match solve_min_time(g, source, k, BUDGET) {
            SolveOutcome::Found(s) => {
                let o = GraphOracle::new(g);
                verify_minimum_time(&o, &s, k).expect("solver schedule must validate");
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn hypercube_q3_is_1mlbg() {
        let g = hypercube(3);
        for source in 0..8 {
            assert_found(&g, source, 1);
        }
    }

    // Regression: a source in `n..32` used to plant a phantom bit in the
    // informed-set mask and return wrong schedules; a source `>= 32` used
    // to panic with an unhelpful shift overflow. Both must now fail fast
    // with a clear message.
    #[test]
    #[should_panic(expected = "source 7 out of range for a 4-vertex graph")]
    fn solve_rejects_phantom_source() {
        let _ = solve_min_time(&cycle(4), 7, 1, BUDGET);
    }

    #[test]
    #[should_panic(expected = "source 40 out of range for a 4-vertex graph")]
    fn solve_rejects_shift_overflow_source() {
        let _ = solve_min_time(&cycle(4), 40, 1, BUDGET);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn broadcast_time_rejects_out_of_range_source() {
        let _ = broadcast_time(&path(5), 5, 1, 8, BUDGET);
    }

    #[test]
    fn path4_not_1mlbg_but_2mlbg() {
        let g = path(4);
        assert_eq!(solve_min_time(&g, 0, 1, BUDGET), SolveOutcome::Infeasible);
        assert_found(&g, 0, 2);
    }

    #[test]
    fn cycle8_in_g2_not_g1() {
        let g = cycle(8);
        assert_eq!(solve_min_time(&g, 0, 1, BUDGET), SolveOutcome::Infeasible);
        assert_found(&g, 0, 2);
    }

    #[test]
    fn star_is_2mlbg() {
        let g = star(8);
        for source in [0, 1, 7] {
            assert_found(&g, source, 2);
        }
    }

    #[test]
    fn star_leaf_not_1mlbg() {
        // With k = 1 a star cannot double: the center is the only possible
        // caller target hub.
        let g = star(8);
        assert_eq!(solve_min_time(&g, 1, 1, BUDGET), SolveOutcome::Infeasible);
    }

    #[test]
    fn theorem1_tree_h1_is_2mlbg() {
        // h = 1: 4 vertices, diameter 2; Theorem 1 says it is a 2-mlbg.
        let g = theorem1_tree(1);
        for source in 0..4 {
            assert_found(&g, source, 2);
        }
    }

    #[test]
    fn theorem1_tree_h2_needs_k4_from_leaf() {
        // h = 2: 10 vertices, diameter 4. From a deep leaf the exact search
        // finds a schedule at k = 4 (Theorem 1's bound is k >= 2h = 4).
        let g = theorem1_tree(2);
        assert_found(&g, 3, 4);
    }

    #[test]
    fn property2_monotone() {
        // G_k ⊆ G_{k+1}: whatever is feasible at k stays feasible at k+1.
        let g = cycle(8);
        assert_found(&g, 0, 2);
        assert_found(&g, 0, 3);
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        let g = theorem1_tree(2);
        assert_eq!(solve_min_time(&g, 3, 2, 1), SolveOutcome::BudgetExceeded);
    }

    #[test]
    fn single_vertex_trivially_found() {
        let g = AdjGraph::with_vertices(1);
        assert!(solve_min_time(&g, 0, 1, 10).is_found());
    }

    #[test]
    fn broadcast_time_matches_min_time_when_feasible() {
        // Q3 at k=1 is minimum-time: b_1(Q3, v) = 3.
        let g = hypercube(3);
        match broadcast_time(&g, 0, 1, 8, BUDGET) {
            BroadcastTime::Exact(rounds, sched) => {
                assert_eq!(rounds, 3);
                let o = GraphOracle::new(&g);
                crate::verify::verify_schedule(&o, &sched, 1).expect("valid");
            }
            BroadcastTime::Unknown => panic!("budget too small"),
        }
    }

    #[test]
    fn broadcast_time_beyond_minimum() {
        // P4 from an end at k=1 needs 3 rounds (> log2 4 = 2) — the
        // iterative deepening finds the true b_1.
        let g = path(4);
        match broadcast_time(&g, 0, 1, 8, BUDGET) {
            BroadcastTime::Exact(rounds, sched) => {
                assert_eq!(rounds, 3);
                let o = GraphOracle::new(&g);
                let r = crate::verify::verify_schedule(&o, &sched, 1).expect("valid");
                assert!(!r.is_minimum_time());
            }
            BroadcastTime::Unknown => panic!("budget too small"),
        }
    }

    #[test]
    fn broadcast_time_on_cycle_k1() {
        // b_1(C8, v): informed set grows by at most 2 per round after the
        // first; known value ceil(8/2) = 4.
        let g = cycle(8);
        match broadcast_time(&g, 0, 1, 10, BUDGET) {
            BroadcastTime::Exact(rounds, _) => assert_eq!(rounds, 4),
            BroadcastTime::Unknown => panic!("budget too small"),
        }
    }

    #[test]
    fn broadcast_time_unknown_when_capped() {
        // Disconnected graph: no finite broadcast time.
        let g = AdjGraph::from_edges(4, [(0, 1)]);
        assert_eq!(broadcast_time(&g, 0, 1, 6, BUDGET), BroadcastTime::Unknown);
    }
}
