//! The schedule validator: Definition 1 of the paper, checked verbatim.
//!
//! A schedule is a *valid k-line broadcast* from `source` iff, replaying
//! round by round:
//!
//! 1. every call's path is a walk along existing edges with no repeated
//!    edge, of length at most `k`;
//! 2. every caller is already informed;
//! 3. no vertex places more than one call per round;
//! 4. no two calls in a round share an edge (edge-disjointness);
//! 5. no two calls in a round share a receiver (single reception);
//! 6. after the last round, every vertex is informed.
//!
//! It is *minimum time* iff additionally `rounds == ceil(log2 N)`
//! (Definition 2). Calling an already-informed vertex is legal but useless;
//! the report counts such calls so schemes can assert zero waste.

use crate::model::{Schedule, Vertex};
use crate::oracle::EdgeOracle;
use serde::{Deserialize, Serialize};
use shc_core::bounds::ceil_log2;
use shc_graph::BitSet;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Why a schedule failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A path hop is not an edge of the graph.
    NotAnEdge {
        /// Round index (0-based).
        round: usize,
        /// The offending hop.
        edge: (Vertex, Vertex),
    },
    /// A call repeats an edge inside its own path.
    SelfOverlap {
        /// Round index.
        round: usize,
        /// The repeated edge.
        edge: (Vertex, Vertex),
    },
    /// A call exceeds the length bound `k`.
    CallTooLong {
        /// Round index.
        round: usize,
        /// Caller of the offending call.
        caller: Vertex,
        /// Actual length.
        len: usize,
        /// Permitted maximum.
        k: usize,
    },
    /// A call was placed by an uninformed vertex.
    UninformedCaller {
        /// Round index.
        round: usize,
        /// The uninformed caller.
        caller: Vertex,
    },
    /// A vertex placed two calls in one round.
    MultipleCalls {
        /// Round index.
        round: usize,
        /// The over-active caller.
        caller: Vertex,
    },
    /// Two calls in a round share an edge.
    EdgeConflict {
        /// Round index.
        round: usize,
        /// The contended edge.
        edge: (Vertex, Vertex),
    },
    /// Two calls in a round share a receiver.
    ReceiverConflict {
        /// Round index.
        round: usize,
        /// The doubly-called receiver.
        receiver: Vertex,
    },
    /// The schedule ends with uninformed vertices.
    Incomplete {
        /// How many vertices never learned the message.
        missing: u64,
        /// One example.
        example: Vertex,
    },
    /// A path endpoint exceeds the graph's vertex range.
    VertexOutOfRange {
        /// Round index.
        round: usize,
        /// The offending vertex id.
        vertex: Vertex,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotAnEdge { round, edge } => {
                write!(f, "round {round}: hop {edge:?} is not an edge")
            }
            Self::SelfOverlap { round, edge } => {
                write!(
                    f,
                    "round {round}: call reuses edge {edge:?} within its path"
                )
            }
            Self::CallTooLong {
                round,
                caller,
                len,
                k,
            } => write!(
                f,
                "round {round}: call from {caller} has length {len} > k = {k}"
            ),
            Self::UninformedCaller { round, caller } => {
                write!(f, "round {round}: caller {caller} is not informed")
            }
            Self::MultipleCalls { round, caller } => {
                write!(f, "round {round}: vertex {caller} places two calls")
            }
            Self::EdgeConflict { round, edge } => {
                write!(f, "round {round}: edge {edge:?} used by two calls")
            }
            Self::ReceiverConflict { round, receiver } => {
                write!(f, "round {round}: receiver {receiver} called twice")
            }
            Self::Incomplete { missing, example } => {
                write!(f, "{missing} vertices uninformed (e.g. {example})")
            }
            Self::VertexOutOfRange { round, vertex } => {
                write!(f, "round {round}: vertex {vertex} out of range")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Statistics of a successfully validated schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Rounds used.
    pub rounds: usize,
    /// The minimum possible (`ceil(log2 N)`).
    pub min_rounds: usize,
    /// Total calls placed.
    pub total_calls: usize,
    /// Longest call (edges).
    pub max_call_len: usize,
    /// Calls whose receiver was already informed (legal but wasted).
    pub redundant_calls: usize,
    /// Number of informed vertices after each round.
    pub informed_after_round: Vec<u64>,
}

impl VerifyReport {
    /// `true` iff the schedule is a *minimum-time* broadcast
    /// (Definition 2: exactly `ceil(log2 N)` rounds).
    #[must_use]
    pub fn is_minimum_time(&self) -> bool {
        self.rounds == self.min_rounds
    }
}

/// Validates `schedule` as a k-line broadcast on `graph` (see module docs).
///
/// # Errors
/// Returns the first [`Violation`] encountered, scanning rounds in order.
///
/// # Panics
/// Panics if the graph has more than `2^28` vertices (the informed set is
/// materialized as a bitset).
pub fn verify_schedule<G: EdgeOracle>(
    graph: &G,
    schedule: &Schedule,
    k: usize,
) -> Result<VerifyReport, Violation> {
    let n_vertices = graph.num_vertices();
    assert!(n_vertices <= 1 << 28, "validator capped at 2^28 vertices");
    assert!(k >= 1, "k must be positive");
    let mut informed = BitSet::new(n_vertices as usize);
    informed.insert(schedule.source as usize);

    let mut total_calls = 0usize;
    let mut max_call_len = 0usize;
    let mut redundant = 0usize;
    let mut informed_after = Vec::with_capacity(schedule.rounds.len());

    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        let mut round_edges: HashSet<(Vertex, Vertex)> = HashSet::new();
        let mut receivers: HashSet<Vertex> = HashSet::new();
        let mut callers: HashMap<Vertex, ()> = HashMap::new();
        let mut newly: Vec<Vertex> = Vec::with_capacity(round.calls.len());

        for call in &round.calls {
            // Range checks.
            for &v in &call.path {
                if v >= n_vertices {
                    return Err(Violation::VertexOutOfRange {
                        round: round_idx,
                        vertex: v,
                    });
                }
            }
            // (1) path validity and per-call edge uniqueness.
            if call.len() > k {
                return Err(Violation::CallTooLong {
                    round: round_idx,
                    caller: call.caller(),
                    len: call.len(),
                    k,
                });
            }
            // Ordered on purpose: this set is *iterated* below, and with
            // several conflicting edges in one call the first
            // `EdgeConflict` reported must not depend on hash order
            // (rule D2 — `Violation` is serialized into reports).
            let mut own_edges: BTreeSet<(Vertex, Vertex)> = BTreeSet::new();
            for (a, b) in call.edges() {
                if !graph.has_edge(a, b) {
                    return Err(Violation::NotAnEdge {
                        round: round_idx,
                        edge: (a, b),
                    });
                }
                if !own_edges.insert((a, b)) {
                    return Err(Violation::SelfOverlap {
                        round: round_idx,
                        edge: (a, b),
                    });
                }
            }
            // (2) informed caller.
            if !informed.contains(call.caller() as usize) {
                return Err(Violation::UninformedCaller {
                    round: round_idx,
                    caller: call.caller(),
                });
            }
            // (3) one call per caller.
            if callers.insert(call.caller(), ()).is_some() {
                return Err(Violation::MultipleCalls {
                    round: round_idx,
                    caller: call.caller(),
                });
            }
            // (4) edge-disjointness across calls.
            for e in own_edges {
                if !round_edges.insert(e) {
                    return Err(Violation::EdgeConflict {
                        round: round_idx,
                        edge: e,
                    });
                }
            }
            // (5) receiver-disjointness.
            if !receivers.insert(call.receiver()) {
                return Err(Violation::ReceiverConflict {
                    round: round_idx,
                    receiver: call.receiver(),
                });
            }
            if informed.contains(call.receiver() as usize) {
                redundant += 1;
            }
            newly.push(call.receiver());
            total_calls += 1;
            max_call_len = max_call_len.max(call.len());
        }
        // Inform receivers only after the whole round (synchronous model).
        for v in newly {
            informed.insert(v as usize);
        }
        informed_after.push(informed.count() as u64);
    }

    // (6) completeness.
    let informed_count = informed.count() as u64;
    if informed_count != n_vertices {
        let example = (0..n_vertices)
            .find(|&v| !informed.contains(v as usize))
            .unwrap_or(0);
        return Err(Violation::Incomplete {
            missing: n_vertices - informed_count,
            example,
        });
    }

    Ok(VerifyReport {
        rounds: schedule.rounds.len(),
        min_rounds: ceil_log2(n_vertices) as usize,
        total_calls,
        max_call_len,
        redundant_calls: redundant,
        informed_after_round: informed_after,
    })
}

/// Convenience: validate and additionally require minimum time
/// (Definition 2) and zero redundant calls.
///
/// # Errors
/// Returns a violation, or a synthesized `Incomplete`-style error message
/// via `Err(String)` is avoided — failures of the extra conditions are
/// reported through [`StrictError`].
pub fn verify_minimum_time<G: EdgeOracle>(
    graph: &G,
    schedule: &Schedule,
    k: usize,
) -> Result<VerifyReport, StrictError> {
    let report = verify_schedule(graph, schedule, k).map_err(StrictError::Invalid)?;
    if !report.is_minimum_time() {
        return Err(StrictError::NotMinimumTime {
            rounds: report.rounds,
            min_rounds: report.min_rounds,
        });
    }
    if report.redundant_calls > 0 {
        return Err(StrictError::RedundantCalls {
            count: report.redundant_calls,
        });
    }
    Ok(report)
}

/// Failure modes of [`verify_minimum_time`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrictError {
    /// The schedule violates Definition 1.
    Invalid(Violation),
    /// Valid but slower than `ceil(log2 N)`.
    NotMinimumTime {
        /// Rounds used.
        rounds: usize,
        /// Minimum possible.
        min_rounds: usize,
    },
    /// Valid but wastes calls on informed receivers.
    RedundantCalls {
        /// Number of wasted calls.
        count: usize,
    },
}

impl std::fmt::Display for StrictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid(v) => write!(f, "invalid schedule: {v}"),
            Self::NotMinimumTime { rounds, min_rounds } => {
                write!(f, "used {rounds} rounds, minimum is {min_rounds}")
            }
            Self::RedundantCalls { count } => write!(f, "{count} redundant calls"),
        }
    }
}

impl std::error::Error for StrictError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Call, Round};
    use crate::oracle::GraphOracle;
    use shc_graph::builders::{cycle, path, star};

    fn schedule(source: Vertex, rounds: Vec<Vec<Vec<Vertex>>>) -> Schedule {
        Schedule {
            source,
            rounds: rounds
                .into_iter()
                .map(|calls| Round {
                    calls: calls.into_iter().map(Call::new).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn valid_path_broadcast() {
        // P4: 0-1-2-3, source 0, k = 2:
        // round 1: 0 -> 2 (length 2); round 2: 0 -> 1, 2 -> 3.
        let g = path(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1, 2]], vec![vec![0, 1], vec![2, 3]]]);
        let r = verify_schedule(&o, &s, 2).unwrap();
        assert_eq!(r.rounds, 2);
        assert_eq!(r.min_rounds, 2);
        assert!(r.is_minimum_time());
        assert_eq!(r.total_calls, 3);
        assert_eq!(r.max_call_len, 2);
        assert_eq!(r.redundant_calls, 0);
        assert_eq!(r.informed_after_round, vec![2, 4]);
        verify_minimum_time(&o, &s, 2).unwrap();
    }

    #[test]
    fn rejects_non_edge() {
        let g = path(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 2]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 2),
            Err(Violation::NotAnEdge { round: 0, .. })
        ));
    }

    #[test]
    fn rejects_too_long_call() {
        let g = path(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1, 2, 3]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 2),
            Err(Violation::CallTooLong { len: 3, k: 2, .. })
        ));
    }

    #[test]
    fn rejects_uninformed_caller() {
        let g = path(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![3, 2]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 2),
            Err(Violation::UninformedCaller { caller: 3, .. })
        ));
    }

    #[test]
    fn rejects_edge_conflict() {
        // Star: two calls switching through the center sharing a leaf edge.
        let g = star(4);
        let o = GraphOracle::new(&g);
        let s = schedule(
            1,
            vec![
                vec![vec![1, 0, 2]],
                // 1 -> 3 via center uses edges {1,0},{0,3}; 2 -> 3 would
                // conflict on receiver; craft an edge conflict instead:
                // 1 -> 2's edge {0,2} reused by 2 -> 0? receiver informed..
                vec![vec![1, 0, 3], vec![2, 0, 3]],
            ],
        );
        let err = verify_schedule(&o, &s, 2).unwrap_err();
        // Both calls end at 3: receiver conflict fires first (edge {0,3}
        // also clashes, but the receiver check precedes edge bookkeeping
        // for the second call only if the edge was recorded first — either
        // violation is acceptable; assert it's one of the two).
        assert!(
            matches!(err, Violation::ReceiverConflict { receiver: 3, .. })
                || matches!(err, Violation::EdgeConflict { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_pure_edge_conflict() {
        let g = star(5);
        let o = GraphOracle::new(&g);
        // Round 2: 1 -> 3 via 0 and 2 -> 4 via 0 are edge-disjoint; but
        // 1 -> 4 via 0 and 2 -> 4's edge {0,4} clash.
        let s = schedule(
            1,
            vec![
                vec![vec![1, 0, 2]],
                vec![vec![1, 0, 4], vec![2, 0, 4 /*unused*/]],
            ],
        );
        let err = verify_schedule(&o, &s, 2).unwrap_err();
        assert!(
            matches!(err, Violation::EdgeConflict { edge: (0, 4), .. })
                || matches!(err, Violation::ReceiverConflict { receiver: 4, .. })
        );
    }

    #[test]
    fn rejects_multiple_calls_per_caller() {
        let g = star(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1], vec![0, 2]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 1),
            Err(Violation::MultipleCalls { caller: 0, .. })
        ));
    }

    #[test]
    fn rejects_incomplete() {
        let g = path(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 2),
            Err(Violation::Incomplete { missing: 2, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let g = path(3);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 9]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 2),
            Err(Violation::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn rejects_self_overlap() {
        let g = path(3);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1, 0, 1, 2]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 9),
            Err(Violation::SelfOverlap { .. })
        ));
    }

    #[test]
    fn counts_redundant_calls() {
        let g = cycle(4);
        let o = GraphOracle::new(&g);
        // Round 1: 0->1. Round 2: 0->3, 1->2. Round 3: 0->1 again (legal,
        // wasted).
        let s = schedule(
            0,
            vec![
                vec![vec![0, 1]],
                vec![vec![0, 3], vec![1, 2]],
                vec![vec![0, 1]],
            ],
        );
        let r = verify_schedule(&o, &s, 1).unwrap();
        assert_eq!(r.redundant_calls, 1);
        assert!(!r.is_minimum_time());
        assert!(matches!(
            verify_minimum_time(&o, &s, 1),
            Err(StrictError::NotMinimumTime {
                rounds: 3,
                min_rounds: 2
            })
        ));
    }

    #[test]
    fn same_round_informed_cannot_forward() {
        // The receiver of a round-t call may not call in round t (it only
        // becomes informed at the end of the round) — synchronous model.
        let g = path(3);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1], vec![1, 2]]]);
        assert!(matches!(
            verify_schedule(&o, &s, 1),
            Err(Violation::UninformedCaller { caller: 1, .. })
        ));
    }

    #[test]
    fn property_1_monotone_in_k() {
        // Paper Property 1: a valid k-line schedule is a valid (k+1)-line
        // schedule.
        let g = path(4);
        let o = GraphOracle::new(&g);
        let s = schedule(0, vec![vec![vec![0, 1, 2]], vec![vec![0, 1], vec![2, 3]]]);
        for k in 2..6 {
            assert!(verify_schedule(&o, &s, k).is_ok(), "k={k}");
        }
    }

    #[test]
    fn violation_displays() {
        let v = Violation::EdgeConflict {
            round: 3,
            edge: (1, 2),
        };
        assert!(v.to_string().contains("round 3"));
        let e = StrictError::RedundantCalls { count: 2 };
        assert!(e.to_string().contains("redundant"));
    }
}
