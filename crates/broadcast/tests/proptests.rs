//! Property-based tests for the broadcast layer: verifier soundness
//! (mutated schedules must be rejected), scheme correctness over random
//! parameters, and solver/scheme agreement.

use proptest::prelude::*;
use shc_broadcast::schemes::greedy::greedy_broadcast;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_broadcast::{verify_minimum_time, verify_schedule, GraphOracle, Violation};
use shc_core::SparseHypercube;
use shc_graph::builders::prufer_to_tree;
use shc_graph::{GraphView, Node};

fn arb_base() -> impl Strategy<Value = (u32, u32)> {
    (3u32..=10).prop_flat_map(|n| (Just(n), 1u32..n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheme_valid_for_random_params_and_sources((n, m) in arb_base(), src_raw: u64) {
        let g = SparseHypercube::construct_base(n, m);
        let source = src_raw & ((1u64 << n) - 1);
        let s = broadcast_scheme(&g, source);
        let r = verify_minimum_time(&g, &s, 2)
            .map_err(|e| TestCaseError::fail(format!("({n},{m}): {e}")))?;
        prop_assert_eq!(r.rounds, n as usize);
        prop_assert_eq!(r.redundant_calls, 0);
    }

    #[test]
    fn verifier_rejects_dropped_call((n, m) in arb_base(), which: usize) {
        // Soundness: removing any single call leaves someone uninformed.
        let g = SparseHypercube::construct_base(n, m);
        let mut s = broadcast_scheme(&g, 0);
        let total: usize = s.num_calls();
        let target = which % total;
        let mut seen = 0usize;
        for round in &mut s.rounds {
            if target < seen + round.calls.len() {
                round.calls.remove(target - seen);
                break;
            }
            seen += round.calls.len();
        }
        let err = verify_schedule(&g, &s, 2);
        prop_assert!(err.is_err(), "dropping a call must invalidate");
        // The failure is either an uninformed caller downstream or an
        // incomplete broadcast.
        match err.unwrap_err() {
            Violation::Incomplete { .. } | Violation::UninformedCaller { .. } => {}
            other => prop_assert!(false, "unexpected violation {other:?}"),
        }
    }

    #[test]
    fn verifier_rejects_duplicated_call((n, m) in arb_base(), which: usize) {
        // Soundness: duplicating a call within its round must trip the
        // edge- or receiver-disjointness check.
        let g = SparseHypercube::construct_base(n, m);
        let mut s = broadcast_scheme(&g, 0);
        let round_idx = which % s.rounds.len();
        let call = s.rounds[round_idx].calls[0].clone();
        s.rounds[round_idx].calls.push(call);
        let err = verify_schedule(&g, &s, 2).unwrap_err();
        match err {
            Violation::EdgeConflict { .. }
            | Violation::ReceiverConflict { .. }
            | Violation::MultipleCalls { .. } => {}
            other => prop_assert!(false, "unexpected violation {other:?}"),
        }
    }

    #[test]
    fn verifier_rejects_shortened_k((n, m) in arb_base()) {
        // A Broadcast_2 schedule with a relayed call cannot pass at k = 1.
        let g = SparseHypercube::construct_base(n, m);
        let s = broadcast_scheme(&g, 0);
        if s.max_call_len() == 2 {
            let too_long = matches!(
                verify_schedule(&g, &s, 1),
                Err(Violation::CallTooLong { .. })
            );
            prop_assert!(too_long, "relayed call must fail at k = 1");
        }
    }

    #[test]
    fn greedy_completes_on_random_trees(seq in proptest::collection::vec(0usize..12, 10), src in 0u32..12) {
        // Greedy with k = diameter always completes on connected graphs.
        let tree = prufer_to_tree(12, &seq);
        let out = greedy_broadcast(&tree, src % 12, 11, 64);
        prop_assert!(out.complete);
        let o = GraphOracle::new(&tree);
        verify_schedule(&o, &out.schedule, 11)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    #[test]
    fn scheme_covers_every_vertex_exactly_once((n, m) in arb_base()) {
        // Each vertex (except the source) is the receiver of exactly one
        // call — the "exact doubling" structure of minimum-time broadcast
        // on 2^n vertices.
        let g = SparseHypercube::construct_base(n, m);
        let s = broadcast_scheme(&g, 3 % (1 << n));
        let mut received = vec![0u32; 1 << n];
        for round in &s.rounds {
            for call in &round.calls {
                received[call.receiver() as usize] += 1;
            }
        }
        for (v, &cnt) in received.iter().enumerate() {
            let expected = u32::from(v as u64 != s.source);
            prop_assert_eq!(cnt, expected, "vertex {}", v);
        }
    }

    #[test]
    fn tree_schedules_use_tree_edges_only(seq in proptest::collection::vec(0usize..10, 8), src in 0u32..10) {
        use shc_broadcast::tree_line_broadcast;
        let tree = prufer_to_tree(10, &seq);
        if let Ok(s) = tree_line_broadcast(&tree, src % 10) {
            for round in &s.rounds {
                for call in &round.calls {
                    for w in call.path.windows(2) {
                        prop_assert!(tree.has_edge(w[0] as Node, w[1] as Node));
                    }
                }
            }
        }
    }
}
