//! Property-based tests for the circuit engine: conservation laws,
//! capacity invariants, and schedule-replay consistency with the
//! broadcast validator.

use proptest::prelude::*;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_core::SparseHypercube;
use shc_graph::builders::hypercube;
use shc_netsim::{Engine, MaterializedNet, NetTopology, Outcome};

fn arb_base_params() -> impl Strategy<Value = (u32, u32)> {
    (4u32..=9).prop_flat_map(|n| (Just(n), 1u32..n.min(5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_of_valid_schedule_never_blocks((n, m) in arb_base_params(), src_raw: u64) {
        let g = SparseHypercube::construct_base(n, m);
        let source = src_raw & ((1u64 << n) - 1);
        let schedule = broadcast_scheme(&g, source);
        let stats = shc_netsim::replay_schedule(&g, &schedule, 1);
        prop_assert_eq!(stats.blocked, 0);
        prop_assert_eq!(stats.established, schedule.num_calls());
        prop_assert_eq!(stats.rounds, n as usize);
        // Latency proxy: between 1 (all direct) and 2 (a relay somewhere)
        // per round for Broadcast_2.
        prop_assert!(stats.mean_round_latency() >= 1.0);
        prop_assert!(stats.mean_round_latency() <= 2.0);
    }

    #[test]
    fn capacity_is_never_exceeded(dilation in 1u32..4, requests in proptest::collection::vec((0u64..16, 0u64..16), 1..24)) {
        let net = MaterializedNet::new(hypercube(4));
        let mut sim = Engine::new(&net, dilation);
        sim.begin_round();
        for (src, dst) in requests {
            if src != dst {
                let _ = sim.request(src, dst, 4);
            }
        }
        for &load in sim.usage_snapshot().values() {
            prop_assert!(load <= dilation, "link over capacity");
        }
        let stats = sim.finish();
        prop_assert!(stats.peak_link_load <= dilation);
    }

    #[test]
    fn established_plus_blocked_equals_requests(reqs in proptest::collection::vec((0u64..32, 0u64..32), 0..40)) {
        let net = MaterializedNet::new(hypercube(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let mut issued = 0usize;
        for (src, dst) in reqs {
            if src != dst {
                let _ = sim.request(src, dst, 5);
                issued += 1;
            }
        }
        let stats = sim.finish();
        prop_assert_eq!(stats.established + stats.blocked, issued);
    }

    #[test]
    fn adaptive_routes_are_real_paths(src in 0u64..32, dst in 0u64..32) {
        prop_assume!(src != dst);
        let net = MaterializedNet::new(hypercube(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        match sim.request(src, dst, 5) {
            Outcome::Established(path) => {
                prop_assert_eq!(*path.first().unwrap(), src);
                prop_assert_eq!(*path.last().unwrap(), dst);
                for w in path.windows(2) {
                    prop_assert!(net.has_edge(w[0], w[1]));
                }
                // Shortest path in a clean network = Hamming distance.
                prop_assert_eq!(path.len() as u32 - 1, (src ^ dst).count_ones());
            }
            Outcome::Blocked(r) => prop_assert!(false, "clean network blocked: {:?}", r),
        }
    }

    #[test]
    fn dilation_monotone_blocking((n, m) in arb_base_params()) {
        let g = SparseHypercube::construct_base(n, m);
        let schedules: Vec<_> = [0u64, (1 << n) - 1]
            .iter()
            .map(|&s| broadcast_scheme(&g, s))
            .collect();
        let mut prev = usize::MAX;
        for dilation in [1u32, 2, 4] {
            let stats = shc_netsim::replay_competing(&g, &schedules, dilation);
            prop_assert!(stats.blocked <= prev);
            prev = stats.blocked;
        }
    }
}
