//! Property-based tests for the circuit engine: conservation laws,
//! capacity invariants, schedule-replay consistency with the broadcast
//! validator, and exact equivalence of the flat edge-indexed load
//! accounting with a reference `HashMap`-based model.

use proptest::prelude::*;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_core::SparseHypercube;
use shc_graph::builders::hypercube;
use shc_graph::AdjGraph;
use shc_netsim::{Engine, FaultedNet, MaterializedNet, NetTopology, Outcome, SimStats};
use std::collections::{HashMap, VecDeque};

/// Reference link-load accounting: the pre-refactor engine, verbatim —
/// occupancy in a `HashMap<(Vertex, Vertex), u32>` keyed by normalized
/// vertex pairs, BFS state in per-request hash maps. The flat
/// edge-indexed engine must reproduce its outcomes and stats bit for
/// bit.
struct RefEngine<'a, T: NetTopology> {
    net: &'a T,
    dilation: u32,
    usage: HashMap<(u64, u64), u32>,
    round_peak: u32,
    round_max_hops: u64,
    stats: SimStats,
    round_open: bool,
}

fn norm(u: u64, v: u64) -> (u64, u64) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl<'a, T: NetTopology> RefEngine<'a, T> {
    fn new(net: &'a T, dilation: u32) -> Self {
        Self {
            net,
            dilation,
            usage: HashMap::new(),
            round_peak: 0,
            round_max_hops: 0,
            stats: SimStats::default(),
            round_open: false,
        }
    }

    fn set_dilation(&mut self, dilation: u32) {
        self.dilation = dilation;
    }

    fn begin_round(&mut self) {
        if self.round_open {
            self.close_round();
        }
        self.usage.clear();
        self.round_peak = 0;
        self.round_max_hops = 0;
        self.round_open = true;
    }

    fn close_round(&mut self) {
        if self.round_open {
            self.stats.rounds += 1;
            self.stats.peak_link_load = self.stats.peak_link_load.max(self.round_peak);
            self.stats.sum_round_peak += u64::from(self.round_peak);
            self.stats.weighted_latency += self.round_max_hops;
            self.round_open = false;
        }
    }

    fn available(&self, u: u64, v: u64) -> u32 {
        let used = self.usage.get(&norm(u, v)).copied().unwrap_or(0);
        self.dilation.saturating_sub(used)
    }

    fn occupy(&mut self, path: &[u64]) {
        for w in path.windows(2) {
            let e = norm(w[0], w[1]);
            let cnt = self.usage.entry(e).or_insert(0);
            *cnt += 1;
            self.round_peak = self.round_peak.max(*cnt);
        }
        self.stats.established += 1;
        self.stats.total_hops += path.len() - 1;
        self.round_max_hops = self.round_max_hops.max((path.len() - 1) as u64);
    }

    fn request_path(&mut self, path: &[u64]) -> Outcome {
        for w in path.windows(2) {
            if !self.net.has_edge(w[0], w[1]) {
                self.stats.blocked += 1;
                return Outcome::Blocked(shc_netsim::BlockReason::NotAnEdge((w[0], w[1])));
            }
        }
        let mut need: HashMap<(u64, u64), u32> = HashMap::new();
        for w in path.windows(2) {
            *need.entry(norm(w[0], w[1])).or_insert(0) += 1;
        }
        for (&e, &cnt) in &need {
            if self.available(e.0, e.1) < cnt {
                self.stats.blocked += 1;
                return Outcome::Blocked(shc_netsim::BlockReason::Saturated);
            }
        }
        self.occupy(path);
        Outcome::Established(path.to_vec())
    }

    fn request(&mut self, src: u64, dst: u64, max_len: u32) -> Outcome {
        let mut parent: HashMap<u64, u64> = HashMap::new();
        let mut queue: VecDeque<(u64, u32)> = VecDeque::new();
        parent.insert(src, src);
        queue.push_back((src, 0));
        let mut any_route_capacity_blind = false;
        while let Some((x, d)) = queue.pop_front() {
            if d == max_len {
                continue;
            }
            for y in self.net.neighbors(x) {
                if y == dst {
                    any_route_capacity_blind = true;
                }
                if parent.contains_key(&y) || self.available(x, y) == 0 {
                    continue;
                }
                parent.insert(y, x);
                if y == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    self.occupy(&path);
                    return Outcome::Established(path);
                }
                queue.push_back((y, d + 1));
            }
        }
        self.stats.blocked += 1;
        if any_route_capacity_blind {
            Outcome::Blocked(shc_netsim::BlockReason::Saturated)
        } else {
            Outcome::Blocked(shc_netsim::BlockReason::NoRoute)
        }
    }

    fn finish(mut self) -> SimStats {
        self.close_round();
        self.stats
    }
}

/// One step of a randomized engine script.
#[derive(Clone, Debug)]
enum Op {
    /// Adaptive request (indices are reduced modulo the vertex count).
    Request { src: u64, dst: u64, max_len: u32 },
    /// Fixed-path request along a (possibly invalid) vertex sequence.
    Path(Vec<u64>),
    /// Start the next round.
    NextRound,
    /// Mid-run dilation shift.
    SetDilation(u32),
}

fn arb_ops(max_v: u64) -> impl Strategy<Value = Vec<Op>> {
    // (selector, src, dst, bound, path): the selector picks the op kind
    // with a 5/3/1/1 weighting (the shim has no `prop_oneof`).
    let op = (
        0u8..10,
        0..max_v,
        0..max_v,
        1u32..8,
        proptest::collection::vec(0..max_v, 2..6),
    )
        .prop_map(|(sel, src, dst, bound, path)| match sel {
            0..=4 => Op::Request {
                src,
                dst,
                max_len: bound,
            },
            5..=7 => Op::Path(path),
            8 => Op::NextRound,
            _ => Op::SetDilation(1 + bound % 3),
        });
    proptest::collection::vec(op, 1..40)
}

/// Drives the same script through both engines and asserts identical
/// admission outcomes, identical final stats, and identical per-round
/// usage snapshots.
fn assert_engines_agree<T: NetTopology>(
    net: &T,
    dilation: u32,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let n = net.num_vertices();
    let mut fast = Engine::new(net, dilation);
    let mut refr = RefEngine::new(net, dilation);
    fast.begin_round();
    refr.begin_round();
    for op in ops {
        match op {
            Op::Request { src, dst, max_len } => {
                let (src, dst) = (src % n, dst % n);
                if src == dst {
                    continue;
                }
                let a = fast.request(src, dst, *max_len);
                let b = refr.request(src, dst, *max_len);
                prop_assert_eq!(a, b, "adaptive outcome diverged");
            }
            Op::Path(raw) => {
                let path: Vec<u64> = raw.iter().map(|v| v % n).collect();
                if path.windows(2).any(|w| w[0] == w[1]) {
                    continue; // self-hop: both reject as NotAnEdge anyway
                }
                let a = fast.request_path(&path);
                let b = refr.request_path(&path);
                prop_assert_eq!(a, b, "fixed-path outcome diverged");
            }
            Op::NextRound => {
                prop_assert_eq!(
                    &fast.usage_snapshot(),
                    &refr.usage,
                    "round snapshot diverged"
                );
                fast.begin_round();
                refr.begin_round();
            }
            Op::SetDilation(d) => {
                fast.set_dilation(*d);
                refr.set_dilation(*d);
            }
        }
    }
    prop_assert_eq!(
        &fast.usage_snapshot(),
        &refr.usage,
        "final snapshot diverged"
    );
    prop_assert_eq!(fast.finish(), refr.finish(), "stats diverged");
    Ok(())
}

fn arb_base_params() -> impl Strategy<Value = (u32, u32)> {
    (4u32..=9).prop_flat_map(|n| (Just(n), 1u32..n.min(5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_of_valid_schedule_never_blocks((n, m) in arb_base_params(), src_raw: u64) {
        let g = SparseHypercube::construct_base(n, m);
        let source = src_raw & ((1u64 << n) - 1);
        let schedule = broadcast_scheme(&g, source);
        let stats = shc_netsim::replay_schedule(&g, &schedule, 1);
        prop_assert_eq!(stats.blocked, 0);
        prop_assert_eq!(stats.established, schedule.num_calls());
        prop_assert_eq!(stats.rounds, n as usize);
        // Latency proxy: between 1 (all direct) and 2 (a relay somewhere)
        // per round for Broadcast_2.
        prop_assert!(stats.mean_round_latency() >= 1.0);
        prop_assert!(stats.mean_round_latency() <= 2.0);
    }

    #[test]
    fn capacity_is_never_exceeded(dilation in 1u32..4, requests in proptest::collection::vec((0u64..16, 0u64..16), 1..24)) {
        let net = MaterializedNet::new(hypercube(4));
        let mut sim = Engine::new(&net, dilation);
        sim.begin_round();
        for (src, dst) in requests {
            if src != dst {
                let _ = sim.request(src, dst, 4);
            }
        }
        for &load in sim.usage_snapshot().values() {
            prop_assert!(load <= dilation, "link over capacity");
        }
        let stats = sim.finish();
        prop_assert!(stats.peak_link_load <= dilation);
    }

    #[test]
    fn established_plus_blocked_equals_requests(reqs in proptest::collection::vec((0u64..32, 0u64..32), 0..40)) {
        let net = MaterializedNet::new(hypercube(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let mut issued = 0usize;
        for (src, dst) in reqs {
            if src != dst {
                let _ = sim.request(src, dst, 5);
                issued += 1;
            }
        }
        let stats = sim.finish();
        prop_assert_eq!(stats.established + stats.blocked, issued);
    }

    #[test]
    fn adaptive_routes_are_real_paths(src in 0u64..32, dst in 0u64..32) {
        prop_assume!(src != dst);
        let net = MaterializedNet::new(hypercube(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        match sim.request(src, dst, 5) {
            Outcome::Established(path) => {
                prop_assert_eq!(*path.first().unwrap(), src);
                prop_assert_eq!(*path.last().unwrap(), dst);
                for w in path.windows(2) {
                    prop_assert!(net.has_edge(w[0], w[1]));
                }
                // Shortest path in a clean network = Hamming distance.
                prop_assert_eq!(path.len() as u32 - 1, (src ^ dst).count_ones());
            }
            Outcome::Blocked(r) => prop_assert!(false, "clean network blocked: {:?}", r),
        }
    }

    #[test]
    fn flat_engine_matches_reference_on_random_graphs(
        n in 4u64..32,
        edges in proptest::collection::vec((0u32..32, 0u32..32), 3..80),
        dilation in 1u32..4,
        ops in arb_ops(32),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|&(u, v)| u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        let net = MaterializedNet::new(AdjGraph::from_edges(n as usize, edges));
        assert_engines_agree(&net, dilation, &ops)?;
    }

    #[test]
    fn flat_engine_matches_reference_under_faults(
        edges in proptest::collection::vec((0u32..24, 0u32..24), 8..60),
        dead in proptest::collection::vec((0u64..24, 0u64..24), 0..8),
        crashed in proptest::collection::vec(0u64..24, 0..4),
        dilation in 1u32..3,
        ops in arb_ops(24),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let base = MaterializedNet::new(AdjGraph::from_edges(24, edges));
        let damaged = FaultedNet::new(&base, dead, crashed);
        assert_engines_agree(&damaged, dilation, &ops)?;
    }

    #[test]
    fn flat_engine_matches_reference_on_sparse_hypercubes(
        (n, m) in arb_base_params(),
        dilation in 1u32..3,
        ops in arb_ops(1 << 9),
    ) {
        // The rule-generated topology enumerates neighbors in dimension
        // order, not sorted order — the frozen link table must preserve
        // it so adaptive routes stay bit-identical.
        let g = SparseHypercube::construct_base(n, m);
        assert_engines_agree(&g, dilation, &ops)?;
    }

    #[test]
    fn dilation_monotone_blocking((n, m) in arb_base_params()) {
        let g = SparseHypercube::construct_base(n, m);
        let schedules: Vec<_> = [0u64, (1 << n) - 1]
            .iter()
            .map(|&s| broadcast_scheme(&g, s))
            .collect();
        let mut prev = usize::MAX;
        for dilation in [1u32, 2, 4] {
            let stats = shc_netsim::replay_competing(&g, &schedules, dilation);
            prop_assert!(stats.blocked <= prev);
            prev = stats.blocked;
        }
    }
}
