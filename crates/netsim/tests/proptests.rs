//! Property-based tests for the circuit engine: conservation laws,
//! capacity invariants, schedule-replay consistency with the broadcast
//! validator, and exact equivalence of the flat edge-indexed load
//! accounting with a reference `HashMap`-based model.

use proptest::prelude::*;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_core::SparseHypercube;
use shc_graph::builders::hypercube;
use shc_graph::AdjGraph;
use shc_netsim::{
    Engine, EngineProbe, FaultedNet, ImplicitCubeNet, MaterializedNet, NetTopology, Outcome,
    RouteSearch, SimStats,
};
use std::collections::{HashMap, VecDeque};

/// Occupied links as sorted `(u, v, load)` triples via the borrowed
/// `for_each_usage` visitor. Sorted because the two substrates under
/// comparison may walk neighbors in different orders.
fn usage_sorted<T: NetTopology, P: EngineProbe>(sim: &Engine<'_, T, P>) -> Vec<(u64, u64, u32)> {
    let mut v = Vec::new();
    sim.for_each_usage(|u, w, load| v.push((u, w, load)));
    v.sort_unstable();
    v
}

/// Reference link-load accounting: the pre-refactor engine, verbatim —
/// occupancy in a `HashMap<(Vertex, Vertex), u32>` keyed by normalized
/// vertex pairs, BFS state in per-request hash maps. The flat
/// edge-indexed engine must reproduce its outcomes and stats bit for
/// bit.
struct RefEngine<'a, T: NetTopology> {
    net: &'a T,
    dilation: u32,
    usage: HashMap<(u64, u64), u32>,
    round_peak: u32,
    round_max_hops: u64,
    stats: SimStats,
    round_open: bool,
}

fn norm(u: u64, v: u64) -> (u64, u64) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl<'a, T: NetTopology> RefEngine<'a, T> {
    fn new(net: &'a T, dilation: u32) -> Self {
        Self {
            net,
            dilation,
            usage: HashMap::new(),
            round_peak: 0,
            round_max_hops: 0,
            stats: SimStats::default(),
            round_open: false,
        }
    }

    fn set_dilation(&mut self, dilation: u32) {
        self.dilation = dilation;
    }

    fn begin_round(&mut self) {
        if self.round_open {
            self.close_round();
        }
        self.usage.clear();
        self.round_peak = 0;
        self.round_max_hops = 0;
        self.round_open = true;
    }

    fn close_round(&mut self) {
        if self.round_open {
            self.stats.rounds += 1;
            self.stats.peak_link_load = self.stats.peak_link_load.max(self.round_peak);
            self.stats.sum_round_peak += u64::from(self.round_peak);
            self.stats.weighted_latency += self.round_max_hops;
            self.round_open = false;
        }
    }

    fn available(&self, u: u64, v: u64) -> u32 {
        let used = self.usage.get(&norm(u, v)).copied().unwrap_or(0);
        self.dilation.saturating_sub(used)
    }

    fn occupy(&mut self, path: &[u64]) {
        for w in path.windows(2) {
            let e = norm(w[0], w[1]);
            let cnt = self.usage.entry(e).or_insert(0);
            *cnt += 1;
            self.round_peak = self.round_peak.max(*cnt);
        }
        self.stats.established += 1;
        self.stats.total_hops += path.len() - 1;
        self.round_max_hops = self.round_max_hops.max((path.len() - 1) as u64);
    }

    fn request_path(&mut self, path: &[u64]) -> Outcome {
        for w in path.windows(2) {
            if !self.net.has_edge(w[0], w[1]) {
                self.stats.blocked += 1;
                return Outcome::Blocked(shc_netsim::BlockReason::NotAnEdge((w[0], w[1])));
            }
        }
        let mut need: HashMap<(u64, u64), u32> = HashMap::new();
        for w in path.windows(2) {
            *need.entry(norm(w[0], w[1])).or_insert(0) += 1;
        }
        for (&e, &cnt) in &need {
            if self.available(e.0, e.1) < cnt {
                self.stats.blocked += 1;
                return Outcome::Blocked(shc_netsim::BlockReason::Saturated);
            }
        }
        self.occupy(path);
        Outcome::Established(path.to_vec())
    }

    fn request(&mut self, src: u64, dst: u64, max_len: u32) -> Outcome {
        let mut parent: HashMap<u64, u64> = HashMap::new();
        let mut queue: VecDeque<(u64, u32)> = VecDeque::new();
        parent.insert(src, src);
        queue.push_back((src, 0));
        let mut any_route_capacity_blind = false;
        while let Some((x, d)) = queue.pop_front() {
            if d == max_len {
                continue;
            }
            for y in self.net.neighbors(x) {
                if y == dst {
                    any_route_capacity_blind = true;
                }
                if parent.contains_key(&y) || self.available(x, y) == 0 {
                    continue;
                }
                parent.insert(y, x);
                if y == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    self.occupy(&path);
                    return Outcome::Established(path);
                }
                queue.push_back((y, d + 1));
            }
        }
        self.stats.blocked += 1;
        if any_route_capacity_blind {
            Outcome::Blocked(shc_netsim::BlockReason::Saturated)
        } else {
            Outcome::Blocked(shc_netsim::BlockReason::NoRoute)
        }
    }

    fn finish(mut self) -> SimStats {
        self.close_round();
        self.stats
    }
}

/// One step of a randomized engine script.
#[derive(Clone, Debug)]
enum Op {
    /// Adaptive request (indices are reduced modulo the vertex count).
    Request { src: u64, dst: u64, max_len: u32 },
    /// Fixed-path request along a (possibly invalid) vertex sequence.
    Path(Vec<u64>),
    /// Start the next round.
    NextRound,
    /// Mid-run dilation shift.
    SetDilation(u32),
}

fn arb_ops(max_v: u64) -> impl Strategy<Value = Vec<Op>> {
    // (selector, src, dst, bound, path): the selector picks the op kind
    // with a 5/3/1/1 weighting (the shim has no `prop_oneof`).
    let op = (
        0u8..10,
        0..max_v,
        0..max_v,
        1u32..8,
        proptest::collection::vec(0..max_v, 2..6),
    )
        .prop_map(|(sel, src, dst, bound, path)| match sel {
            0..=4 => Op::Request {
                src,
                dst,
                max_len: bound,
            },
            5..=7 => Op::Path(path),
            8 => Op::NextRound,
            _ => Op::SetDilation(1 + bound % 3),
        });
    proptest::collection::vec(op, 1..40)
}

/// Drives the same script through both engines and asserts identical
/// admission outcomes, identical final stats, and identical per-round
/// usage snapshots.
fn assert_engines_agree<T: NetTopology>(
    net: &T,
    dilation: u32,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let n = net.num_vertices();
    let mut fast = Engine::new(net, dilation);
    let mut refr = RefEngine::new(net, dilation);
    fast.begin_round();
    refr.begin_round();
    for op in ops {
        match op {
            Op::Request { src, dst, max_len } => {
                let (src, dst) = (src % n, dst % n);
                if src == dst {
                    continue;
                }
                // Pinned to the legacy search: the reference model
                // reproduces its exploration order (and so its exact
                // routes) — the accounting equivalence being tested here
                // needs both sides to occupy identical links. The new
                // searches are compared against this same legacy search
                // in `search_strategies` below.
                let a = fast.request_with(RouteSearch::Unidirectional, src, dst, *max_len);
                let b = refr.request(src, dst, *max_len);
                prop_assert_eq!(a, b, "adaptive outcome diverged");
            }
            Op::Path(raw) => {
                let path: Vec<u64> = raw.iter().map(|v| v % n).collect();
                if path.windows(2).any(|w| w[0] == w[1]) {
                    continue; // self-hop: both reject as NotAnEdge anyway
                }
                let a = fast.request_path(&path);
                let b = refr.request_path(&path);
                prop_assert_eq!(a, b, "fixed-path outcome diverged");
            }
            Op::NextRound => {
                prop_assert_eq!(
                    &fast.usage_snapshot(),
                    &refr.usage,
                    "round snapshot diverged"
                );
                fast.begin_round();
                refr.begin_round();
            }
            Op::SetDilation(d) => {
                fast.set_dilation(*d);
                refr.set_dilation(*d);
            }
        }
    }
    prop_assert_eq!(
        &fast.usage_snapshot(),
        &refr.usage,
        "final snapshot diverged"
    );
    prop_assert_eq!(fast.finish(), refr.finish(), "stats diverged");
    Ok(())
}

fn arb_base_params() -> impl Strategy<Value = (u32, u32)> {
    (4u32..=9).prop_flat_map(|n| (Just(n), 1u32..n.min(5)))
}

/// Independent shortest-path oracle for the search-equivalence tests:
/// BFS over links with spare capacity (`usage` is an engine snapshot),
/// returning the distance from `src` to `dst` within `max_len` and the
/// number of distinct shortest routes (saturating; only `== 1` matters).
fn shortest_route_census<T: NetTopology>(
    net: &T,
    usage: &HashMap<(u64, u64), u32>,
    dilation: u32,
    src: u64,
    dst: u64,
    max_len: u32,
) -> Option<(u32, u64)> {
    let mut dist: HashMap<u64, u32> = HashMap::new();
    let mut count: HashMap<u64, u64> = HashMap::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    dist.insert(src, 0);
    count.insert(src, 1);
    queue.push_back(src);
    while let Some(x) = queue.pop_front() {
        let d = dist[&x];
        if d == max_len {
            continue;
        }
        let c = count[&x];
        for y in net.neighbors(x) {
            if usage.get(&norm(x, y)).copied().unwrap_or(0) >= dilation {
                continue;
            }
            match dist.get(&y) {
                None => {
                    dist.insert(y, d + 1);
                    count.insert(y, c);
                    queue.push_back(y);
                }
                Some(&dy) if dy == d + 1 => {
                    let cy = count.get_mut(&y).unwrap();
                    *cy = cy.saturating_add(c);
                }
                Some(_) => {}
            }
        }
    }
    dist.get(&dst).map(|&d| (d, count[&dst]))
}

/// Preloads identical congestion into an engine (fixed paths behave
/// identically under every search strategy), then issues one adaptive
/// request with the given strategy.
fn preload_and_request<T: NetTopology>(
    net: &T,
    dilation: u32,
    preload: &[Vec<u64>],
    strategy: RouteSearch,
    src: u64,
    dst: u64,
    max_len: u32,
) -> (Outcome, HashMap<(u64, u64), u32>) {
    let mut sim = Engine::new(net, dilation);
    sim.begin_round();
    for path in preload {
        if path.len() >= 2 && path.windows(2).all(|w| w[0] != w[1]) {
            let _ = sim.request_path(path);
        }
    }
    let before = sim.usage_snapshot();
    (sim.request_with(strategy, src, dst, max_len), before)
}

/// The PR-4 search-equivalence property: every strategy agrees with the
/// independent census on routability and route *length*; established
/// routes are real, capacity-respecting paths; and where the shortest
/// route is unique, every strategy returns the legacy search's exact
/// route.
fn assert_searches_agree<T: NetTopology>(
    net: &T,
    dilation: u32,
    preload: &[Vec<u64>],
    src: u64,
    dst: u64,
    max_len: u32,
    strategies: &[RouteSearch],
) -> Result<(), TestCaseError> {
    let (legacy, before) = preload_and_request(
        net,
        dilation,
        preload,
        RouteSearch::Unidirectional,
        src,
        dst,
        max_len,
    );
    let census = shortest_route_census(net, &before, dilation, src, dst, max_len);
    for &strategy in strategies {
        let (outcome, before2) =
            preload_and_request(net, dilation, preload, strategy, src, dst, max_len);
        prop_assert_eq!(&before2, &before, "preload must be strategy-independent");
        match (&outcome, &census) {
            (Outcome::Established(path), Some((d, routes))) => {
                prop_assert!(legacy.is_established(), "legacy disagrees on routability");
                prop_assert_eq!(
                    path.len() as u32 - 1,
                    *d,
                    "{:?}: not a shortest route",
                    strategy
                );
                prop_assert_eq!(*path.first().unwrap(), src);
                prop_assert_eq!(*path.last().unwrap(), dst);
                let mut load: HashMap<(u64, u64), u32> = HashMap::new();
                for w in path.windows(2) {
                    prop_assert!(net.has_edge(w[0], w[1]), "{:?}: phantom hop", strategy);
                    *load.entry(norm(w[0], w[1])).or_insert(0) += 1;
                }
                for (&e, &extra) in &load {
                    let used = before.get(&e).copied().unwrap_or(0);
                    prop_assert!(
                        used + extra <= dilation,
                        "{:?}: link {:?} over capacity",
                        strategy,
                        e
                    );
                }
                if *routes == 1 {
                    if let Outcome::Established(ref legacy_path) = legacy {
                        prop_assert_eq!(
                            path,
                            legacy_path,
                            "{:?}: unique shortest route must match legacy",
                            strategy
                        );
                    }
                }
            }
            (Outcome::Blocked(_), None) => {
                prop_assert!(!legacy.is_established(), "legacy disagrees on routability");
            }
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "{strategy:?} returned {got:?} but census says {want:?}"
                )));
            }
        }
    }
    Ok(())
}

fn arb_preload(max_v: u64) -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0..max_v, 2..6), 0..12)
}

/// Drives the same op script through engines over two topologies that
/// claim to be the *same network* on different link substrates (implicit
/// arithmetic vs materialized CSR) and demands **byte-identical**
/// behavior: outcomes (including exact routes), final stats, and every
/// per-round usage snapshot. `strategy` pins the search so tie-breaks
/// are comparable — neighbor enumeration order is part of the substrate
/// contract.
fn assert_substrates_identical<A: NetTopology, B: NetTopology>(
    a: &A,
    b: &B,
    dilation: u32,
    strategy: RouteSearch,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_vertices(), b.num_vertices());
    let n = a.num_vertices();
    let mut ea = Engine::new(a, dilation);
    let mut eb = Engine::new(b, dilation);
    ea.begin_round();
    eb.begin_round();
    for op in ops {
        match op {
            Op::Request { src, dst, max_len } => {
                let (src, dst) = (src % n, dst % n);
                if src == dst {
                    continue;
                }
                let ra = ea.request_with(strategy, src, dst, *max_len);
                let rb = eb.request_with(strategy, src, dst, *max_len);
                prop_assert_eq!(ra, rb, "route diverged between substrates");
            }
            Op::Path(raw) => {
                let path: Vec<u64> = raw.iter().map(|v| v % n).collect();
                if path.windows(2).any(|w| w[0] == w[1]) {
                    continue;
                }
                let ra = ea.request_path(&path);
                let rb = eb.request_path(&path);
                prop_assert_eq!(ra, rb, "fixed-path outcome diverged");
            }
            Op::NextRound => {
                prop_assert_eq!(
                    usage_sorted(&ea),
                    usage_sorted(&eb),
                    "round snapshot diverged"
                );
                ea.begin_round();
                eb.begin_round();
            }
            Op::SetDilation(d) => {
                ea.set_dilation(*d);
                eb.set_dilation(*d);
            }
        }
    }
    prop_assert_eq!(
        usage_sorted(&ea),
        usage_sorted(&eb),
        "final snapshot diverged"
    );
    prop_assert_eq!(ea.finish(), eb.finish(), "stats diverged");
    Ok(())
}

/// A topology served purely from a frozen [`shc_netsim::LinkTable`] —
/// the pre-PR-5 substrate for rule-generated graphs, reconstructed here
/// (in the rule's native neighbor order) as the reference the implicit
/// sparse-hypercube path is pinned against.
struct TableBacked {
    table: std::sync::Arc<shc_netsim::LinkTable>,
}

impl NetTopology for TableBacked {
    fn num_vertices(&self) -> u64 {
        self.table.num_vertices()
    }

    fn has_edge(&self, u: u64, v: u64) -> bool {
        self.table.link_id(u, v).is_some()
    }

    fn for_each_link(&self, u: u64, f: impl FnMut(u64, shc_netsim::LinkId) -> bool) -> bool {
        self.table.for_each_link(u, f)
    }

    fn link_id(&self, u: u64, v: u64) -> Option<shc_netsim::LinkId> {
        self.table.link_id(u, v)
    }

    fn link_index(&self) -> shc_netsim::LinkIndex {
        shc_netsim::LinkIndex::Table(std::sync::Arc::clone(&self.table))
    }

    fn cube_labeled(&self) -> bool {
        self.table.cube_labeled()
    }
}

fn arb_strategy() -> impl Strategy<Value = RouteSearch> {
    (0u8..3).prop_map(|s| match s {
        0 => RouteSearch::Unidirectional,
        1 => RouteSearch::Bidirectional,
        _ => RouteSearch::AStarCube,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_of_valid_schedule_never_blocks((n, m) in arb_base_params(), src_raw: u64) {
        let g = SparseHypercube::construct_base(n, m);
        let source = src_raw & ((1u64 << n) - 1);
        let schedule = broadcast_scheme(&g, source);
        let stats = shc_netsim::replay_schedule(&g, &schedule, 1);
        prop_assert_eq!(stats.blocked, 0);
        prop_assert_eq!(stats.established, schedule.num_calls());
        prop_assert_eq!(stats.rounds, n as usize);
        // Latency proxy: between 1 (all direct) and 2 (a relay somewhere)
        // per round for Broadcast_2.
        prop_assert!(stats.mean_round_latency() >= 1.0);
        prop_assert!(stats.mean_round_latency() <= 2.0);
    }

    #[test]
    fn capacity_is_never_exceeded(dilation in 1u32..4, requests in proptest::collection::vec((0u64..16, 0u64..16), 1..24)) {
        let net = MaterializedNet::new(hypercube(4));
        let mut sim = Engine::new(&net, dilation);
        sim.begin_round();
        for (src, dst) in requests {
            if src != dst {
                let _ = sim.request(src, dst, 4);
            }
        }
        for &(_, _, load) in &usage_sorted(&sim) {
            prop_assert!(load <= dilation, "link over capacity");
        }
        let stats = sim.finish();
        prop_assert!(stats.peak_link_load <= dilation);
    }

    #[test]
    fn established_plus_blocked_equals_requests(reqs in proptest::collection::vec((0u64..32, 0u64..32), 0..40)) {
        let net = MaterializedNet::new(hypercube(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let mut issued = 0usize;
        for (src, dst) in reqs {
            if src != dst {
                let _ = sim.request(src, dst, 5);
                issued += 1;
            }
        }
        let stats = sim.finish();
        prop_assert_eq!(stats.established + stats.blocked, issued);
    }

    #[test]
    fn adaptive_routes_are_real_paths(src in 0u64..32, dst in 0u64..32) {
        prop_assume!(src != dst);
        let net = MaterializedNet::new(hypercube(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        match sim.request(src, dst, 5) {
            Outcome::Established(path) => {
                prop_assert_eq!(*path.first().unwrap(), src);
                prop_assert_eq!(*path.last().unwrap(), dst);
                for w in path.windows(2) {
                    prop_assert!(net.has_edge(w[0], w[1]));
                }
                // Shortest path in a clean network = Hamming distance.
                prop_assert_eq!(path.len() as u32 - 1, (src ^ dst).count_ones());
            }
            Outcome::Blocked(r) => prop_assert!(false, "clean network blocked: {:?}", r),
        }
    }

    #[test]
    fn flat_engine_matches_reference_on_random_graphs(
        n in 4u64..32,
        edges in proptest::collection::vec((0u32..32, 0u32..32), 3..80),
        dilation in 1u32..4,
        ops in arb_ops(32),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|&(u, v)| u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        let net = MaterializedNet::new(AdjGraph::from_edges(n as usize, edges));
        assert_engines_agree(&net, dilation, &ops)?;
    }

    #[test]
    fn flat_engine_matches_reference_under_faults(
        edges in proptest::collection::vec((0u32..24, 0u32..24), 8..60),
        dead in proptest::collection::vec((0u64..24, 0u64..24), 0..8),
        crashed in proptest::collection::vec(0u64..24, 0..4),
        dilation in 1u32..3,
        ops in arb_ops(24),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let base = MaterializedNet::new(AdjGraph::from_edges(24, edges));
        let damaged = FaultedNet::new(&base, dead, crashed);
        assert_engines_agree(&damaged, dilation, &ops)?;
    }

    #[test]
    fn flat_engine_matches_reference_on_sparse_hypercubes(
        (n, m) in arb_base_params(),
        dilation in 1u32..3,
        ops in arb_ops(1 << 9),
    ) {
        // The rule-generated topology enumerates neighbors in dimension
        // order, not sorted order — the frozen link table must preserve
        // it so adaptive routes stay bit-identical.
        let g = SparseHypercube::construct_base(n, m);
        assert_engines_agree(&g, dilation, &ops)?;
    }

    #[test]
    fn search_strategies_agree_on_random_graphs(
        n in 4u64..32,
        edges in proptest::collection::vec((0u32..32, 0u32..32), 3..80),
        dilation in 1u32..4,
        preload in arb_preload(32),
        src_raw in 0u64..32,
        dst_raw in 0u64..32,
        max_len in 1u32..8,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|&(u, v)| u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        let net = MaterializedNet::new(AdjGraph::from_edges(n as usize, edges));
        let (src, dst) = (src_raw % n, dst_raw % n);
        prop_assume!(src != dst);
        let preload: Vec<Vec<u64>> = preload
            .iter()
            .map(|p| p.iter().map(|v| v % n).collect())
            .collect();
        // Arbitrary graphs rarely carry cube labels; when one does, the
        // A* path is exercised too.
        let mut strategies = vec![RouteSearch::Bidirectional];
        if net.cube_labeled() {
            strategies.push(RouteSearch::AStarCube);
        }
        assert_searches_agree(&net, dilation, &preload, src, dst, max_len, &strategies)?;
    }

    #[test]
    fn search_strategies_agree_on_cubes(
        n in 3u32..7,
        dilation in 1u32..3,
        preload in arb_preload(64),
        src_raw in 0u64..64,
        dst_raw in 0u64..64,
        max_len in 1u32..10,
    ) {
        let nv = 1u64 << n;
        let net = MaterializedNet::new(hypercube(n));
        let (src, dst) = (src_raw % nv, dst_raw % nv);
        prop_assume!(src != dst);
        let preload: Vec<Vec<u64>> = preload
            .iter()
            .map(|p| p.iter().map(|v| v % nv).collect())
            .collect();
        assert_searches_agree(
            &net,
            dilation,
            &preload,
            src,
            dst,
            max_len,
            &[RouteSearch::Bidirectional, RouteSearch::AStarCube],
        )?;
    }

    #[test]
    fn search_strategies_agree_on_sparse_hypercubes(
        (n, m) in arb_base_params(),
        dilation in 1u32..3,
        preload in arb_preload(1 << 9),
        src_raw: u64,
        dst_raw: u64,
        max_len in 1u32..12,
    ) {
        let g = SparseHypercube::construct_base(n, m);
        let nv = 1u64 << n;
        let (src, dst) = (src_raw % nv, dst_raw % nv);
        prop_assume!(src != dst);
        let preload: Vec<Vec<u64>> = preload
            .iter()
            .map(|p| p.iter().map(|v| v % nv).collect())
            .collect();
        assert_searches_agree(
            &g,
            dilation,
            &preload,
            src,
            dst,
            max_len,
            &[RouteSearch::Bidirectional, RouteSearch::AStarCube],
        )?;
    }

    #[test]
    fn search_strategies_agree_under_faults(
        edges in proptest::collection::vec((0u32..24, 0u32..24), 8..60),
        dead in proptest::collection::vec((0u64..24, 0u64..24), 0..8),
        crashed in proptest::collection::vec(0u64..24, 0..4),
        dilation in 1u32..3,
        preload in arb_preload(24),
        src_raw in 0u64..24,
        dst_raw in 0u64..24,
        max_len in 1u32..8,
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let base = MaterializedNet::new(AdjGraph::from_edges(24, edges));
        let damaged = FaultedNet::new(&base, dead, crashed);
        let (src, dst) = (src_raw % 24, dst_raw % 24);
        prop_assume!(src != dst);
        let preload: Vec<Vec<u64>> = preload
            .iter()
            .map(|p| p.iter().map(|v| v % 24).collect())
            .collect();
        let mut strategies = vec![RouteSearch::Bidirectional];
        if damaged.cube_labeled() {
            strategies.push(RouteSearch::AStarCube);
        }
        assert_searches_agree(&damaged, dilation, &preload, src, dst, max_len, &strategies)?;
    }

    #[test]
    fn implicit_cube_is_byte_identical_to_materialized(
        n in 3u32..=10,
        dilation in 1u32..4,
        strategy in arb_strategy(),
        ops in arb_ops(1 << 10),
    ) {
        // The tentpole contract: the storage-free arithmetic substrate
        // and the frozen CSR table are indistinguishable — identical
        // routes (all three searches, so enumeration order matches too),
        // stats, and snapshots.
        let implicit = ImplicitCubeNet::new(n);
        let materialized = MaterializedNet::new(hypercube(n));
        assert_substrates_identical(&implicit, &materialized, dilation, strategy, &ops)?;
    }

    #[test]
    fn implicit_cube_matches_materialized_under_faults(
        n in 3u32..=8,
        dead in proptest::collection::vec((0u64..256, 0u64..256), 0..10),
        crashed in proptest::collection::vec(0u64..256, 0..4),
        dilation in 1u32..3,
        strategy in arb_strategy(),
        ops in arb_ops(1 << 8),
    ) {
        // Identical damage reports over both substrates: the bitset over
        // arithmetic ids must mask exactly what the table-backed overlay
        // masks, including crash fan-outs.
        let nv = 1u64 << n;
        let dead: Vec<(u64, u64)> = dead.into_iter().map(|(u, v)| (u % nv, v % nv)).collect();
        let crashed: Vec<u64> = crashed.into_iter().map(|v| v % nv).collect();
        let implicit = ImplicitCubeNet::new(n);
        let materialized = MaterializedNet::new(hypercube(n));
        let fa = FaultedNet::new(&implicit, dead.iter().copied(), crashed.iter().copied());
        let fb = FaultedNet::new(&materialized, dead.iter().copied(), crashed.iter().copied());
        prop_assert_eq!(fa.num_dead_links(), fb.num_dead_links());
        prop_assert_eq!(fa.num_crashed(), fb.num_crashed());
        assert_substrates_identical(&fa, &fb, dilation, strategy, &ops)?;
    }

    #[test]
    fn implicit_sparse_hypercube_matches_frozen_table(
        (n, m) in arb_base_params(),
        dilation in 1u32..3,
        strategy in arb_strategy(),
        ops in arb_ops(1 << 9),
    ) {
        // The rule-generated sparse hypercube now keys links off cube
        // arithmetic; a table frozen from its own neighbor enumeration —
        // the pre-PR-5 substrate, native (dimension) order preserved —
        // must behave byte-identically.
        let g = SparseHypercube::construct_base(n, m);
        let native = shc_netsim::LinkTable::build(1u64 << n, |u| NetTopology::neighbors(&g, u));
        let native = TableBacked { table: std::sync::Arc::new(native) };
        assert_substrates_identical(&g, &native, dilation, strategy, &ops)?;
    }

    #[test]
    fn dilation_monotone_blocking((n, m) in arb_base_params()) {
        let g = SparseHypercube::construct_base(n, m);
        let schedules: Vec<_> = [0u64, (1 << n) - 1]
            .iter()
            .map(|&s| broadcast_scheme(&g, s))
            .collect();
        let mut prev = usize::MAX;
        for dilation in [1u32, 2, 4] {
            let stats = shc_netsim::replay_competing(&g, &schedules, dilation);
            prop_assert!(stats.blocked <= prev);
            prev = stats.blocked;
        }
    }
}
