//! Property tests for the flow layer: circuits held across rounds must
//! be exactly "the memoryless engine with the held circuit set replayed
//! every round" — no more, no less — and teardown must leave zero
//! residue in the occupancy vector or the dirty list.

use proptest::prelude::*;
use shc_graph::builders::hypercube;
use shc_graph::AdjGraph;
use shc_netsim::{Engine, EngineProbe, FlowId, FlowOutcome, MaterializedNet, NetTopology, Outcome};

const DIM: u32 = 4;
const MAX_LEN: u32 = 10;

fn net() -> MaterializedNet<AdjGraph> {
    MaterializedNet::new(hypercube(DIM))
}

/// Occupied links as ordered `(u, v, load)` triples via the borrowed
/// `for_each_usage` visitor — the topology walk is deterministic, so two
/// engines over the same net compare as plain vectors.
fn usage_vec<T: NetTopology, P: EngineProbe>(sim: &Engine<'_, T, P>) -> Vec<(u64, u64, u32)> {
    let mut v = Vec::new();
    sim.for_each_usage(|u, w, load| v.push((u, w, load)));
    v
}

fn pairs(reqs: &[(u64, u64)]) -> impl Iterator<Item = (u64, u64)> + '_ {
    let nv = 1u64 << DIM;
    reqs.iter()
        .map(move |&(s, d)| (s % nv, d % nv))
        .filter(|&(s, d)| s != d)
}

proptest! {
    /// Zero-churn degeneration: flows admitted and released within their
    /// own round are transient circuits. Driving `request_flow` +
    /// same-round release over an arbitrary request stream reproduces
    /// the plain `request` engine's stats **byte-identically**, and
    /// leaves the occupancy vector empty.
    #[test]
    fn same_round_flows_degenerate_to_memoryless(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..16, 0u64..16), 0..12),
            1..8,
        ),
        dilation in 1u32..3,
    ) {
        let topo = net();
        let mut memoryless = Engine::new(&topo, dilation);
        let mut flows = Engine::new(&topo, dilation);
        for round in &rounds {
            memoryless.begin_round();
            flows.begin_round();
            let mut admitted: Vec<FlowId> = Vec::new();
            for (src, dst) in pairs(round) {
                let a = memoryless.request(src, dst, MAX_LEN);
                let b = flows.request_flow(src, dst, MAX_LEN);
                match (&a, &b) {
                    (Outcome::Established(path), FlowOutcome::Established { flow, hops }) => {
                        prop_assert_eq!(path.len() as u32 - 1, *hops);
                        admitted.push(*flow);
                    }
                    (Outcome::Blocked(ra), FlowOutcome::Blocked(rb)) => {
                        prop_assert_eq!(ra, rb);
                    }
                    _ => prop_assert!(false, "engines diverged: {a:?} vs {b:?}"),
                }
            }
            // Zero churn: every flow of the round dies with the round.
            for flow in admitted {
                flows.release_flow(flow);
            }
        }
        prop_assert_eq!(flows.active_flows(), 0);
        prop_assert_eq!(flows.held_link_hops(), 0);
        prop_assert!(usage_vec(&flows).is_empty());
        // The stats fold is identical to the byte.
        let a = format!("{:?}", memoryless.finish());
        let b = format!("{:?}", flows.finish());
        prop_assert_eq!(a, b);
    }

    /// Zero-churn accumulation: one hot-spot flow per round with
    /// infinite holding time is exactly the memoryless engine that
    /// replays every previously-admitted route each round before the new
    /// request — same admission outcomes, byte-identical link loads.
    #[test]
    fn held_flows_equal_replayed_circuits(
        sources in proptest::collection::vec(1u64..16, 1..14),
        dilation in 1u32..3,
    ) {
        let topo = net();
        let hot = 0u64;
        let mut flows = Engine::new(&topo, dilation);
        let mut replay = Engine::new(&topo, dilation);
        let mut routes: Vec<Vec<u64>> = Vec::new();
        for &src in &sources {
            flows.begin_round();
            replay.begin_round();
            // The memoryless twin re-establishes the held circuit set.
            for route in &routes {
                prop_assert!(replay.request_path(route).is_established());
            }
            let a = flows.request_flow(src, hot, MAX_LEN);
            let b = replay.request(src, hot, MAX_LEN);
            match (&a, &b) {
                (FlowOutcome::Established { hops, .. }, Outcome::Established(path)) => {
                    prop_assert_eq!(*hops, path.len() as u32 - 1);
                    routes.push(path.clone());
                }
                (FlowOutcome::Blocked(ra), Outcome::Blocked(rb)) => {
                    prop_assert_eq!(ra, rb);
                }
                _ => prop_assert!(false, "engines diverged: {a:?} vs {b:?}"),
            }
            // Identical per-link loads, including across the round
            // boundary that tears transients down but keeps flows up.
            prop_assert_eq!(usage_vec(&flows), usage_vec(&replay));
        }
        prop_assert_eq!(flows.active_flows(), routes.len());
    }

    /// Teardown residue: after an arbitrary admit/release interleaving
    /// ends with every flow released, the engine is indistinguishable
    /// from a fresh one — empty occupancy snapshot, and a fixed probe
    /// round admits exactly what a brand-new engine admits (the
    /// dirty-list reset covered every link flows ever touched).
    #[test]
    fn full_release_leaves_a_fresh_engine(
        reqs in proptest::collection::vec((0u64..16, 0u64..16, 0u8..4), 1..24),
        dilation in 1u32..3,
    ) {
        let topo = net();
        let mut sim = Engine::new(&topo, dilation);
        let mut live: Vec<FlowId> = Vec::new();
        sim.begin_round();
        for &(s, d, act) in &reqs {
            let (src, dst) = (s % 16, d % 16);
            if src == dst {
                continue;
            }
            if act == 0 {
                sim.begin_round(); // round churn mid-stream
            }
            if let FlowOutcome::Established { flow, .. } = sim.request_flow(src, dst, MAX_LEN) {
                live.push(flow);
            }
            if act == 1 && !live.is_empty() {
                sim.release_flow(live.swap_remove(0));
            }
        }
        for flow in live.drain(..) {
            sim.release_flow(flow);
        }
        prop_assert_eq!(sim.active_flows(), 0);
        prop_assert!(usage_vec(&sim).is_empty(), "residual occupancy");

        // Probe: saturate toward the hot spot from every vertex.
        let mut fresh = Engine::new(&topo, dilation);
        sim.begin_round();
        fresh.begin_round();
        for src in 1..topo.num_vertices() {
            prop_assert_eq!(
                sim.request(src, 0, MAX_LEN),
                fresh.request(src, 0, MAX_LEN),
                "probe diverged from a fresh engine at src {}",
                src
            );
        }
        prop_assert_eq!(usage_vec(&sim), usage_vec(&fresh));
    }
}
