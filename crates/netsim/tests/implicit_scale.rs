//! Tier-1 scale guard for the implicit link substrate: an engine over
//! rule-generated `Q_20` (1 048 576 vertices, ~10.5 M links) must come up
//! and route without materializing adjacency — and the whole exercise
//! must stay under a coarse peak-RSS bound that the old frozen-CSR path
//! (adjacency lists + CSR + link table, ~500 MB at `n = 20`) could not
//! meet. Kept in its own test binary so the RSS reading is not polluted
//! by unrelated memory-hungry tests.

use shc_netsim::{Engine, FaultedNet, ImplicitCubeNet, NetTopology, Outcome};

/// `VmHWM` (peak RSS) in kB from `/proc/self/status`; `None` when the
/// platform has no procfs.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
}

#[test]
fn q20_engine_fits_in_implicit_memory_budget() {
    let n = 20u32;
    let net = ImplicitCubeNet::new(n);
    assert_eq!(net.num_vertices(), 1 << 20);

    // Engine construction: occupancy (n · 2^(n-1) u32 ≈ 42 MB) plus
    // per-vertex scratch (~36 MB) — no adjacency anywhere.
    let mut sim = Engine::new(&net, 1);
    sim.begin_round();

    // A* routes across the implicit cube exactly as on a materialized
    // one: clean-network routes are Hamming-shortest.
    for (src, dst) in [(0u64, 0b1111u64), (123_456, 123_459), ((1 << 20) - 1, 7)] {
        match sim.request(src, dst, n + 2) {
            Outcome::Established(p) => {
                assert_eq!(p.len() as u32 - 1, (src ^ dst).count_ones(), "{src}->{dst}");
                for w in p.windows(2) {
                    assert_eq!((w[0] ^ w[1]).count_ones(), 1);
                }
            }
            other => panic!("clean Q_20 blocked {src}->{dst}: {other:?}"),
        }
    }
    let stats = sim.finish();
    assert_eq!(stats.established, 3);

    // Damage overlays ride the same arithmetic id space (a ~1.3 MB
    // bitset, not a copied topology).
    let damaged = FaultedNet::new(&net, [(0u64, 1u64)], [42u64]);
    assert!(!damaged.has_edge(0, 1));
    assert!(damaged.neighbors(42).is_empty());
    let mut sim = Engine::new(&damaged, 1);
    sim.begin_round();
    assert!(sim.request(0, 3, n + 2).is_established());

    // Coarse RSS proxy bound: the implicit path costs ~200 MB here (two
    // engines); the materialized `Q_20` substrate alone exceeded this
    // before routing a single circuit. Skipped silently where procfs is
    // unavailable.
    if let Some(rss) = peak_rss_kb() {
        assert!(
            rss < 400_000,
            "peak RSS {rss} kB blows the implicit-substrate budget (400 MB)"
        );
    }
}
