//! Propose-then-commit equivalence properties. Batch size 1 — propose a
//! request and commit it immediately — must reproduce the serial
//! `request` path bit for bit (outcomes, stats, link loads) on
//! materialized, implicit, and faulted substrates, because a proposal
//! routed against the current committed state and committed before any
//! rival is exactly a serial admission. And a whole-round batch whose
//! wave driver concludes without a single conflict must admit exactly
//! what the serial engine admits: conflict-free means no proposal ever
//! saw stale capacity, so propose order is irrelevant.

use proptest::prelude::*;
use shc_graph::builders::hypercube;
use shc_netsim::{
    BatchRequest, CommitOutcome, Engine, EngineProbe, FaultedNet, ImplicitCubeNet, MaterializedNet,
    NetTopology, Outcome, SearchScratch,
};

/// Occupied links as sorted `(u, v, load)` triples via the borrowed
/// `for_each_usage` visitor.
fn usage_sorted<T: NetTopology, P: EngineProbe>(sim: &Engine<'_, T, P>) -> Vec<(u64, u64, u32)> {
    let mut v = Vec::new();
    sim.for_each_usage(|u, w, load| v.push((u, w, load)));
    v.sort_unstable();
    v
}

/// Request stream shape shared by every property: raw `(src, dst)`
/// pairs reduced modulo the vertex count, self-loops skipped, rounds
/// delimited by chunking.
fn rounds_of(n: u64, raw: &[Vec<(u64, u64)>]) -> Vec<Vec<BatchRequest>> {
    raw.iter()
        .map(|round| {
            round
                .iter()
                .map(|&(s, d)| (s % n, d % n))
                .filter(|&(s, d)| s != d)
                .map(|(src, dst)| BatchRequest {
                    src,
                    dst,
                    max_len: 10,
                })
                .collect()
        })
        .collect()
}

/// Drives the serial engine and the batch-size-1 propose/commit twin
/// over the same rounds and asserts bit-level agreement after every
/// request, every round boundary, and at the final stats fold.
fn assert_batch1_equals_serial<T: NetTopology>(
    net: &T,
    dilation: u32,
    rounds: &[Vec<BatchRequest>],
) -> Result<(), TestCaseError> {
    let mut serial = Engine::new(net, dilation);
    let mut batched = Engine::new(net, dilation);
    let mut scratch = SearchScratch::new(net.num_vertices());
    for round in rounds {
        serial.begin_round();
        batched.begin_round();
        for req in round {
            let a = serial.request(req.src, req.dst, req.max_len);
            let prop = batched.propose(&mut scratch, req);
            let b = batched.commit_proposal(0, &prop);
            match (&a, &b) {
                (Outcome::Established(path), CommitOutcome::Established { hops }) => {
                    prop_assert_eq!(path.len() as u32 - 1, *hops, "route length diverged");
                }
                (Outcome::Blocked(ra), CommitOutcome::Blocked(rb)) => {
                    prop_assert_eq!(ra, rb, "block reason diverged");
                }
                _ => prop_assert!(false, "batch-1 diverged from serial: {a:?} vs {b:?}"),
            }
        }
        prop_assert_eq!(
            usage_sorted(&serial),
            usage_sorted(&batched),
            "round loads diverged"
        );
    }
    prop_assert_eq!(serial.finish(), batched.finish(), "stats diverged");
    Ok(())
}

fn arb_rounds() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..64, 0u64..64), 0..14),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Materialized substrate: batch size 1 ≡ serial.
    #[test]
    fn batch1_equals_serial_materialized(raw in arb_rounds(), dilation in 1u32..3) {
        let net = MaterializedNet::new(hypercube(4));
        let rounds = rounds_of(net.num_vertices(), &raw);
        assert_batch1_equals_serial(&net, dilation, &rounds)?;
    }

    /// Implicit cube substrate (A* cube-metric search path): batch size
    /// 1 ≡ serial.
    #[test]
    fn batch1_equals_serial_implicit(raw in arb_rounds(), dilation in 1u32..3) {
        let net = ImplicitCubeNet::new(5);
        let rounds = rounds_of(net.num_vertices(), &raw);
        assert_batch1_equals_serial(&net, dilation, &rounds)?;
    }

    /// Faulted overlay (dead links + crashed nodes): batch size 1 ≡
    /// serial, including fault-induced block reasons.
    #[test]
    fn batch1_equals_serial_faulted(
        raw in arb_rounds(),
        dead in proptest::collection::vec((0u64..16, 0u64..16), 0..6),
        crashed in proptest::collection::vec(1u64..16, 0..3),
        dilation in 1u32..3,
    ) {
        let base = MaterializedNet::new(hypercube(4));
        let net = FaultedNet::new(&base, dead.iter().copied(), crashed.iter().copied());
        let nv = net.num_vertices();
        // Requests touching crashed endpoints are skipped: the engine
        // treats an unreachable endpoint as a block, but a crashed *src*
        // asserts upstream in real drivers.
        let rounds: Vec<Vec<BatchRequest>> = rounds_of(nv, &raw)
            .into_iter()
            .map(|round| {
                round
                    .into_iter()
                    .filter(|r| !crashed.contains(&r.src) && !crashed.contains(&r.dst))
                    .collect()
            })
            .collect();
        assert_batch1_equals_serial(&net, dilation, &rounds)?;
    }

    /// Metamorphic: admit a whole round as one batch through a local
    /// wave driver. If the driver concludes without a single conflict,
    /// the outcome vector, the stats fold, and the link loads must equal
    /// the serial engine's — batching is invisible for conflict-free
    /// rounds. (Contended rounds are exercised by the intra-invariance
    /// properties in `shc-runtime`; here they only check conservation.)
    #[test]
    fn conflict_free_whole_batch_equals_serial(raw in arb_rounds(), dilation in 1u32..3) {
        let net = MaterializedNet::new(hypercube(4));
        let rounds = rounds_of(net.num_vertices(), &raw);
        let mut serial = Engine::new(&net, dilation);
        let mut batched = Engine::new(&net, dilation);
        let mut scratch = SearchScratch::new(net.num_vertices());
        let mut any_conflict = false;
        for round in &rounds {
            serial.begin_round();
            batched.begin_round();
            let serial_outcomes: Vec<Outcome> = round
                .iter()
                .map(|r| serial.request(r.src, r.dst, r.max_len))
                .collect();

            // Local wave driver: propose every pending request against
            // the round-start committed state, commit in sequence order,
            // conflicts re-propose next wave.
            let mut outcomes: Vec<Option<CommitOutcome>> = vec![None; round.len()];
            let mut pending: Vec<usize> = (0..round.len()).collect();
            let mut wave = 0u32;
            while !pending.is_empty() {
                let proposals: Vec<_> = pending
                    .iter()
                    .map(|&i| batched.propose(&mut scratch, &round[i]))
                    .collect();
                let mut next = Vec::new();
                for (&i, prop) in pending.iter().zip(&proposals) {
                    match batched.commit_proposal(wave, prop) {
                        CommitOutcome::Conflict => {
                            any_conflict = true;
                            next.push(i);
                        }
                        done => outcomes[i] = Some(done),
                    }
                }
                prop_assert!(next.len() < pending.len(), "wave made no progress");
                pending = next;
                wave += 1;
            }

            if !any_conflict {
                for (a, b) in serial_outcomes.iter().zip(&outcomes) {
                    match (a, b.as_ref().expect("all requests concluded")) {
                        (Outcome::Established(path), CommitOutcome::Established { hops }) => {
                            prop_assert_eq!(path.len() as u32 - 1, *hops);
                        }
                        (Outcome::Blocked(ra), CommitOutcome::Blocked(rb)) => {
                            prop_assert_eq!(ra, rb);
                        }
                        (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
                    }
                }
                prop_assert_eq!(usage_sorted(&serial), usage_sorted(&batched));
            }
            // Conservation holds regardless of contention.
            let concluded = outcomes.iter().filter(|o| o.is_some()).count();
            prop_assert_eq!(concluded, round.len());
        }
        if !any_conflict {
            prop_assert_eq!(serial.finish(), batched.finish(), "stats diverged");
        }
    }
}
