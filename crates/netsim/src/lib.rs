//! # shc-netsim — synchronous circuit-switching network simulator
//!
//! The paper's communication model abstracts a circuit-switched /
//! wormhole-routed network; its §5 raises congestion under competing
//! traffic and *dilated* (multi-circuit) links as follow-up questions.
//! This crate makes both measurable: a per-round link-occupancy engine
//! with fixed-path replay (re-checking schedule edge-disjointness
//! physically) and adaptive shortest-path routing around saturated links,
//! plus traffic generators for competing broadcasts and random
//! permutations.
//!
//! * [`topology`] — the [`NetTopology`] interface (implicit cubes,
//!   sparse hypercubes, and materialized graphs) plus the [`FaultedNet`]
//!   damage overlay for fault-injection studies.
//! * [`links`] — the [`LinkIndex`] substrate: stable undirected link ids
//!   that key the engine's flat occupancy vector and the fault overlay's
//!   damage bitset, backed by either a frozen CSR [`LinkTable`] or the
//!   storage-free arithmetic [`CubeLinks`] (rule-generated `Q_n` to
//!   `n = 20+` without materializing adjacency).
//! * [`engine`] — the circuit engine: rounds, admission, blocking, stats,
//!   adaptive routing (A* on the cube metric / bidirectional BFS),
//!   mid-run dilation shifts, and **flows** — circuits held across
//!   rounds ([`Engine::request_flow`] / [`Engine::release_flow`]), the
//!   substrate of the `shc-runtime` service layer.
//! * [`router`] — the three route searches as pure functions over a
//!   read-only state view with caller-owned epoch-stamped
//!   [`SearchScratch`] — the seam both serial admission and the batch
//!   propose phase route through.
//! * [`batch`] — propose-then-commit batched admission: parallel
//!   routing against committed state, serial conflict-resolving commits
//!   in request sequence order, deterministic at any worker count.
//! * [`traffic`] — schedule replay, competing broadcasts, permutations.
//! * [`probe`] — zero-cost [`EngineProbe`] hooks: per-decision admission,
//!   flow-lifecycle, and search-effort events for the `shc-runtime`
//!   tracing layer, compiled out entirely when unattached ([`NoProbe`]).
//!
//! ## Example
//!
//! Route adaptively on `Q_4`: the cube labeling activates the engine's
//! A* fast path, and the route is Hamming-shortest:
//!
//! ```
//! use shc_graph::builders::hypercube;
//! use shc_netsim::{Engine, MaterializedNet, NetTopology};
//!
//! let net = MaterializedNet::new(hypercube(4));
//! assert!(net.cube_labeled()); // unlocks A* routing
//! let mut sim = Engine::new(&net, 1);
//! sim.begin_round();
//! assert!(sim.request(0b0000, 0b1011, 6).is_established());
//! let stats = sim.finish();
//! assert_eq!((stats.established, stats.total_hops), (1, 3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod engine;
pub mod links;
pub mod probe;
pub mod router;
pub mod topology;
pub mod traffic;

pub use batch::{BatchOutcome, BatchRequest, CommitOutcome, FlowCommitOutcome, Proposal};
pub use engine::{
    BlockReason, Engine, FlowId, FlowOutcome, Outcome, RerouteOutcome, RouteSearch, SimStats,
};
pub use router::SearchScratch;
pub use links::{CubeLinks, LinkId, LinkIndex, LinkIndexError, LinkTable};
pub use probe::{EngineProbe, NoProbe, RequestProbe, SearchStats};
pub use topology::{FaultedNet, ImplicitCubeNet, MaterializedNet, NetTopology};
pub use traffic::{
    random_permutation_round, random_permutation_round_with, replay_competing,
    replay_competing_hooked, replay_competing_probed, replay_schedule,
};
