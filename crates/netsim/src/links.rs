//! The link-id substrate every [`NetTopology`](crate::NetTopology)
//! exposes to the engine, in two backends behind [`LinkIndex`]:
//!
//! * [`LinkTable`] — a frozen CSR snapshot of a topology's adjacency:
//!   one offsets array, one targets array, and — parallel to the targets —
//!   a stable undirected **link id** per entry, dense in `0..num_links()`.
//! * [`CubeLinks`] — a purely arithmetic index over binary-cube geometry:
//!   the link id of the cube edge `{v, v ^ (1 << d)}` is computed in
//!   closed form (`id = d · 2^(n-1) + rank(v, d)`, see
//!   [`CubeLinks::id_of_dim`]) with **no per-vertex storage at all**, so
//!   rule-generated topologies (`Q_n` itself, the paper's sparse
//!   hypercubes) scale to `n = 20+` without materializing adjacency.
//!
//! The circuit engine keys all per-round occupancy off these ids (a flat
//! `Vec<u32>` instead of a `HashMap<(Vertex, Vertex), u32>`), and fault
//! overlays mask damage as a bitset over the same ids.
//!
//! Two properties matter for determinism:
//! * **Native order** — a topology's `for_each_link(u)` yields neighbors
//!   in exactly the order its own `neighbors(u)` produces them (for
//!   materialized graphs that is sorted-ascending; for rule-generated
//!   sparse hypercubes it is ascending by dimension; [`CubeLinks`]
//!   enumerates full-cube neighbors in ascending vertex order, which is
//!   exactly the CSR order of a materialized `Q_n`), so the adaptive
//!   router explores in the same order either way and produces
//!   bit-identical routes.
//! * **Stable ids** — table ids are assigned in first-encounter order
//!   over the vertex-major walk; cube ids are a closed-form function of
//!   the edge. The same topology always indexes to the same ids.

use crate::topology::Vertex;
use shc_graph::cube::hamming_distance;
use shc_graph::{CsrGraph, GraphView, Node};
use std::sync::Arc;

/// Stable identifier of an undirected link, dense in `0..num_links()`.
pub type LinkId = u32;

/// Why a link index could not be built: the requested topology exceeds
/// the `u32` id space the engine's flat occupancy vector is keyed by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkIndexError {
    /// More vertices than the `u32` vertex/offset space can address.
    TooManyVertices(u64),
    /// More links (or link endpoints) than the `u32` id space can hold.
    TooManyLinks(u64),
}

impl std::fmt::Display for LinkIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooManyVertices(n) => {
                write!(f, "{n} vertices overflow the u32 link-index space")
            }
            Self::TooManyLinks(m) => write!(f, "{m} links overflow the u32 link-id space"),
        }
    }
}

impl std::error::Error for LinkIndexError {}

/// The link-id backend a topology hands the engine: a frozen CSR table,
/// or closed-form cube arithmetic with no storage. Cheap to clone (an
/// `Arc` bump or a `Copy`), so every engine and fault overlay carries its
/// own handle.
///
/// Note that [`LinkIndex::link_id`] is *geometric*: the `Cube` backend
/// assigns an id to **every** edge of the full cube, including ones a
/// sparse rule-generated topology does not contain. Edge-aware lookup is
/// [`NetTopology::link_id`](crate::NetTopology::link_id), which consults
/// the topology's rule first.
#[derive(Clone, Debug)]
pub enum LinkIndex {
    /// Frozen CSR link table (materialized topologies).
    Table(Arc<LinkTable>),
    /// Arithmetic ids over binary-cube geometry (rule-generated
    /// topologies: implicit `Q_n` and sparse hypercubes).
    Cube(CubeLinks),
}

impl LinkIndex {
    /// Number of vertices the index spans.
    #[must_use]
    pub fn num_vertices(&self) -> u64 {
        match self {
            Self::Table(t) => t.num_vertices(),
            Self::Cube(c) => c.num_vertices(),
        }
    }

    /// Size of the link-id space: ids are `0..num_links()`. For the cube
    /// backend this is the full cube's `n · 2^(n-1)` even when the
    /// topology using it is a sparse subgraph — absent links simply never
    /// have their slot touched.
    #[must_use]
    pub fn num_links(&self) -> usize {
        match self {
            Self::Table(t) => t.num_links(),
            Self::Cube(c) => c.num_links(),
        }
    }

    /// Geometric id of link `{u, v}` (see the type-level caveat: for the
    /// cube backend this answers for every cube edge, present or not).
    #[must_use]
    pub fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        match self {
            Self::Table(t) => t.link_id(u, v),
            Self::Cube(c) => c.link_id(u, v),
        }
    }
}

/// Closed-form link ids over the binary `n`-cube: no adjacency, no
/// offsets, no per-vertex anything — the whole index is the dimension.
///
/// The id of the edge along dimension `d` at vertex `v` is
/// `d · 2^(n-1) + rank(v, d)`, where `rank(v, d)` is `v` with bit `d`
/// deleted (the rank of the edge's lower endpoint among the `2^(n-1)`
/// vertices whose bit `d` is clear). Ids are dense in `0..n · 2^(n-1)`.
///
/// ```
/// use shc_netsim::CubeLinks;
/// let c = CubeLinks::new(4).unwrap();
/// assert_eq!(c.num_links(), 4 * 8);
/// // Edge {5, 7} flips dimension 1: id = 1 * 8 + rank(5 without bit 1).
/// assert_eq!(c.link_id(5, 7), Some(8 + 0b01 + 0b10));
/// assert_eq!(c.link_id(5, 6), None, "not a cube edge");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeLinks {
    n: u32,
}

impl CubeLinks {
    /// Largest dimension whose id space `n · 2^(n-1)` fits [`LinkId`]
    /// (`28 · 2^27 < 2^32 ≤ 29 · 2^28`).
    pub const MAX_DIMENSION: u32 = 28;

    /// Arithmetic link index for `Q_n`. Rejects dimensions whose link
    /// count overflows the `u32` id space instead of silently wrapping
    /// (`n = 21` — the sweep's opportunistic ceiling — is well within
    /// range; `n = 29` is the first to overflow).
    pub fn new(n: u32) -> Result<Self, LinkIndexError> {
        if n > Self::MAX_DIMENSION {
            let links = u64::from(n) << (n.min(63) - 1);
            return Err(LinkIndexError::TooManyLinks(links));
        }
        Ok(Self { n })
    }

    /// Cube dimension `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of vertices, `2^n`.
    #[must_use]
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.n
    }

    /// Number of links, `n · 2^(n-1)`; ids are `0..num_links()`.
    #[must_use]
    pub fn num_links(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            (self.n as usize) << (self.n - 1)
        }
    }

    /// Closed-form id of the dimension-`d` edge at `v` (either endpoint
    /// gives the same id — the formula deletes bit `d` first).
    #[inline]
    #[must_use]
    pub fn id_of_dim(&self, v: Vertex, d: u32) -> LinkId {
        debug_assert!(d < self.n && v < self.num_vertices());
        ((u64::from(d) << (self.n - 1)) + shc_graph::cube::edge_rank(v, d)) as LinkId
    }

    /// Id of link `{u, v}` when it is an in-range cube edge.
    #[inline]
    #[must_use]
    pub fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        let nv = self.num_vertices();
        if u >= nv || v >= nv {
            return None;
        }
        let diff = u ^ v;
        if !diff.is_power_of_two() {
            return None;
        }
        Some(self.id_of_dim(u, diff.trailing_zeros()))
    }

    /// Enumerates the full-cube neighbors of `v` with their link ids, in
    /// **ascending vertex order** — exactly the order a materialized
    /// `Q_n`'s sorted CSR adjacency yields, so routes stay bit-identical
    /// between the implicit and materialized substrates. The callback
    /// returns `false` to stop early; the method reports whether the
    /// enumeration ran to completion.
    #[inline]
    pub fn for_each_link(&self, v: Vertex, mut f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        debug_assert!(v < self.num_vertices());
        // Neighbors below v: clear one set bit; clearing a higher bit
        // gives a smaller neighbor, so extract set bits high → low.
        let mut bits = v;
        while bits != 0 {
            let d = 63 - bits.leading_zeros();
            bits ^= 1u64 << d;
            if !f(v ^ (1u64 << d), self.id_of_dim(v, d)) {
                return false;
            }
        }
        // Neighbors above v: set one clear bit; setting a lower bit gives
        // a smaller neighbor, so extract clear bits low → high. (`n` is
        // capped at MAX_DIMENSION = 28, so the mask shift cannot wrap.)
        let mut bits = !v & ((1u64 << self.n) - 1);
        while bits != 0 {
            let d = bits.trailing_zeros();
            bits &= bits - 1;
            if !f(v ^ (1u64 << d), self.id_of_dim(v, d)) {
                return false;
            }
        }
        true
    }
}

/// Frozen CSR link index of a topology. Built once at topology (or
/// engine) construction; read-only and shareable across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkTable {
    /// `offsets[u]..offsets[u+1]` indexes `targets`/`link_ids` for `u`.
    offsets: Box<[u32]>,
    /// Neighbor vertices in the topology's native neighbor order.
    targets: Box<[u32]>,
    /// `link_ids[i]` is the undirected link id of `{u, targets[i]}`.
    link_ids: Box<[LinkId]>,
    num_links: u32,
    /// Whether every frozen link joins ids at Hamming distance 1 —
    /// computed during the freeze (not a second `O(E)` scan) and cached
    /// here so `Engine::new` / Monte Carlo replicas read a bool instead
    /// of re-deriving the cube-labeling verdict per construction.
    cube_labeled: bool,
}

impl LinkTable {
    /// Freezes a topology given its vertex count and a neighbor
    /// enumerator. Neighbor order is preserved verbatim.
    ///
    /// # Panics
    /// Panics when [`Self::try_build`] reports a capacity overflow, or if
    /// the enumeration is asymmetric (an edge listed by only one
    /// endpoint — a malformed topology).
    #[must_use]
    pub fn build(num_vertices: u64, neighbors: impl FnMut(Vertex) -> Vec<Vertex>) -> Self {
        Self::try_build(num_vertices, neighbors).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::build`] with the `u32` capacity limits surfaced as a
    /// checked [`LinkIndexError`] instead of a panic. The vertex bound is
    /// validated **before** any allocation, so an absurd `num_vertices`
    /// fails fast rather than aborting on an allocation.
    ///
    /// # Panics
    /// Still panics on an asymmetric enumeration (an edge listed by only
    /// one endpoint) — that is a malformed topology, not a capacity.
    pub fn try_build(
        num_vertices: u64,
        mut neighbors: impl FnMut(Vertex) -> Vec<Vertex>,
    ) -> Result<Self, LinkIndexError> {
        if num_vertices >= u64::from(u32::MAX) {
            return Err(LinkIndexError::TooManyVertices(num_vertices));
        }
        let n = num_vertices as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<u32> = Vec::new();
        let mut link_ids: Vec<LinkId> = Vec::new();
        let mut next: LinkId = 0;
        let mut cube = true;
        offsets.push(0u32);
        for u in 0..num_vertices {
            for v in neighbors(u) {
                assert!(v < num_vertices, "neighbor {v} of {u} out of range");
                targets.push(v as u32);
                if v > u {
                    cube &= hamming_distance(u, v) == 1;
                    link_ids.push(next);
                    next = match next.checked_add(1) {
                        Some(next) => next,
                        None => return Err(LinkIndexError::TooManyLinks(u64::from(u32::MAX) + 1)),
                    };
                } else {
                    // v < u was already frozen: find u in v's slice.
                    let range = offsets[v as usize] as usize..offsets[v as usize + 1] as usize;
                    let pos = targets[range.clone()]
                        .iter()
                        .position(|&w| u64::from(w) == u)
                        .unwrap_or_else(|| {
                            panic!("link ({v},{u}) missing its mirror — asymmetric topology")
                        });
                    link_ids.push(link_ids[range.start + pos]);
                }
            }
            let end = u32::try_from(targets.len())
                .map_err(|_| LinkIndexError::TooManyLinks(targets.len() as u64))?;
            offsets.push(end);
        }
        assert_eq!(
            targets.len(),
            2 * next as usize,
            "asymmetric topology: some link is listed by only one endpoint"
        );
        Ok(Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            link_ids: link_ids.into_boxed_slice(),
            num_links: next,
            cube_labeled: cube,
        })
    }

    /// Freezes from a [`CsrGraph`], reusing its edge ids verbatim (CSR
    /// adjacency is sorted, which *is* the native order of materialized
    /// graphs).
    #[must_use]
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.target_len());
        let mut link_ids = Vec::with_capacity(g.target_len());
        let mut cube = true;
        offsets.push(0u32);
        for u in 0..n as Node {
            for &v in g.neighbors(u) {
                if v > u {
                    cube &= hamming_distance(u64::from(u), u64::from(v)) == 1;
                }
                targets.push(v);
            }
            link_ids.extend_from_slice(g.edge_ids_of(u));
            offsets.push(u32::try_from(targets.len()).expect("more than 2^32 - 1 link endpoints"));
        }
        Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            link_ids: link_ids.into_boxed_slice(),
            num_links: u32::try_from(g.num_edges()).expect("more than 2^32 links"),
            cube_labeled: cube,
        }
    }

    /// Number of vertices the table was frozen over.
    #[must_use]
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of undirected links; link ids are `0..num_links()`.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.num_links as usize
    }

    /// Whether every frozen link joins ids at Hamming distance exactly 1
    /// (the verdict `shc_graph::cube::is_cube_labeled` would reach),
    /// cached at freeze time. Vacuously `true` for linkless tables.
    #[must_use]
    pub fn cube_labeled(&self) -> bool {
        self.cube_labeled
    }

    /// The `(neighbors, link_ids)` slices of `u`, parallel and in native
    /// neighbor order. Empty for out-of-range `u`.
    #[must_use]
    pub fn links_of(&self, u: Vertex) -> (&[u32], &[LinkId]) {
        // `offsets.len() - 1` is the vertex count (offsets is never
        // empty); comparing against it rather than computing `u + 1`
        // keeps `u = u64::MAX` from overflowing.
        let Ok(u) = usize::try_from(u) else {
            return (&[], &[]);
        };
        if u >= self.offsets.len() - 1 {
            return (&[], &[]);
        }
        let range = self.offsets[u] as usize..self.offsets[u + 1] as usize;
        (&self.targets[range.clone()], &self.link_ids[range])
    }

    /// Enumerates the frozen links of `u` in native order; the callback
    /// returns `false` to stop early. Reports whether the enumeration ran
    /// to completion.
    #[inline]
    pub fn for_each_link(&self, u: Vertex, mut f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        let (targets, ids) = self.links_of(u);
        for (&v, &id) in targets.iter().zip(ids) {
            if !f(u64::from(v), id) {
                return false;
            }
        }
        true
    }

    /// Stable id of link `{u, v}`, or `None` when the topology has no
    /// such link (including out-of-range endpoints). Linear scan of the
    /// (short) neighbor slice — degrees in this workspace are `O(n)` for
    /// an `n`-cube, where a scan beats binary search.
    #[must_use]
    pub fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        let (targets, ids) = self.links_of(u);
        if v >= self.num_vertices() {
            return None;
        }
        targets
            .iter()
            .position(|&w| u64::from(w) == v)
            .map(|i| ids[i])
    }

    /// Iterator over all links as `(u, v, id)` with `u < v`, in
    /// vertex-major order.
    pub fn iter_links(&self) -> impl Iterator<Item = (Vertex, Vertex, LinkId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            let (targets, ids) = self.links_of(u);
            targets
                .iter()
                .zip(ids)
                .filter_map(move |(&v, &id)| (u64::from(v) > u).then_some((u, u64::from(v), id)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::{cycle, hypercube, star};

    fn cycle_table(n: usize) -> LinkTable {
        let g = cycle(n);
        LinkTable::build(n as u64, |u| {
            g.neighbors(u as Node)
                .iter()
                .map(|&v| u64::from(v))
                .collect()
        })
    }

    #[test]
    fn ids_are_dense_and_symmetric() {
        let t = cycle_table(5);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.num_vertices(), 5);
        for (u, v, id) in t.iter_links() {
            assert_eq!(t.link_id(u, v), Some(id));
            assert_eq!(t.link_id(v, u), Some(id), "symmetric");
        }
        let mut ids: Vec<_> = t.iter_links().map(|(_, _, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn absent_and_out_of_range_links_are_none() {
        let t = cycle_table(6);
        assert_eq!(t.link_id(0, 2), None);
        assert_eq!(t.link_id(0, 17), None);
        assert_eq!(t.link_id(17, 0), None);
        assert_eq!(t.links_of(17), (&[][..], &[][..]));
        // Extreme ids must not overflow the offset arithmetic.
        assert_eq!(t.links_of(u64::MAX), (&[][..], &[][..]));
        assert_eq!(t.link_id(u64::MAX, 0), None);
        assert_eq!(t.link_id(0, u64::MAX), None);
    }

    #[test]
    fn native_order_is_preserved() {
        // Feed a deliberately non-sorted neighbor order (as the sparse
        // hypercube's dimension-ascending enumeration produces) and check
        // it survives freezing verbatim.
        let adj: Vec<Vec<Vertex>> = vec![vec![2, 1], vec![0, 2], vec![1, 0]];
        let t = LinkTable::build(3, |u| adj[u as usize].clone());
        let (targets, _) = t.links_of(0);
        assert_eq!(targets, &[2, 1]);
        assert_eq!(t.link_id(0, 2), t.link_id(2, 0));
        assert_eq!(t.num_links(), 3);
    }

    #[test]
    fn from_csr_matches_build() {
        let g = star(7);
        let csr = CsrGraph::from_view(&g);
        let a = LinkTable::from_csr(&csr);
        let b = LinkTable::build(7, |u| {
            g.neighbors(u as Node)
                .iter()
                .map(|&v| u64::from(v))
                .collect()
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_topology_is_rejected() {
        let adj: Vec<Vec<Vertex>> = vec![vec![1], vec![]];
        let _ = LinkTable::build(2, |u| adj[u as usize].clone());
    }

    #[test]
    fn cube_verdict_is_cached_at_freeze() {
        let q = hypercube(4);
        let t = LinkTable::from_csr(&CsrGraph::from_view(&q));
        assert!(t.cube_labeled());
        assert!(!cycle_table(5).cube_labeled(), "C_5 flips two bits");
        // Via `build` too, and vacuously for linkless tables.
        let b = LinkTable::build(16, |u| {
            q.neighbors(u as Node)
                .iter()
                .map(|&v| u64::from(v))
                .collect::<Vec<_>>()
        });
        assert!(b.cube_labeled());
        assert!(LinkTable::build(3, |_| vec![]).cube_labeled());
    }

    #[test]
    fn try_build_rejects_oversized_vertex_counts_before_allocating() {
        assert_eq!(
            LinkTable::try_build(u64::MAX, |_| vec![]),
            Err(LinkIndexError::TooManyVertices(u64::MAX))
        );
        assert_eq!(
            LinkTable::try_build(u64::from(u32::MAX), |_| vec![]),
            Err(LinkIndexError::TooManyVertices(u64::from(u32::MAX)))
        );
    }

    #[test]
    fn cube_links_id_space_boundary() {
        // n = 21 (the sweep's opportunistic ceiling) is comfortably in
        // range; the id space only overflows u32 at n = 29.
        assert!(CubeLinks::new(21).is_ok());
        assert_eq!(
            CubeLinks::new(21).unwrap().num_links(),
            21 * (1 << 20),
            "Q_21 has 21 * 2^20 links"
        );
        assert!(CubeLinks::new(CubeLinks::MAX_DIMENSION).is_ok());
        assert!(matches!(
            CubeLinks::new(29),
            Err(LinkIndexError::TooManyLinks(_))
        ));
    }

    #[test]
    fn cube_ids_are_dense_symmetric_and_match_the_formula() {
        for n in [0u32, 1, 2, 5, 7] {
            let c = CubeLinks::new(n).unwrap();
            let mut seen = vec![false; c.num_links()];
            for v in 0..c.num_vertices() {
                for d in 0..n {
                    let w = v ^ (1u64 << d);
                    let id = c.link_id(v, w).unwrap();
                    assert_eq!(c.link_id(w, v), Some(id), "symmetric");
                    assert_eq!(id, c.id_of_dim(v, d));
                    seen[id as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "ids dense in 0..n*2^(n-1)");
        }
    }

    #[test]
    fn cube_link_id_rejects_non_edges() {
        let c = CubeLinks::new(4).unwrap();
        assert_eq!(c.link_id(0, 3), None, "two bits");
        assert_eq!(c.link_id(7, 7), None, "self");
        assert_eq!(c.link_id(0, 16), None, "out of range");
        assert_eq!(c.link_id(16, 0), None);
        assert_eq!(c.link_id(0, u64::MAX), None);
    }

    #[test]
    fn cube_enumeration_matches_materialized_csr_order() {
        let n = 5;
        let c = CubeLinks::new(n).unwrap();
        let t = LinkTable::from_csr(&CsrGraph::from_view(&hypercube(n)));
        for v in 0..c.num_vertices() {
            let mut implicit = Vec::new();
            c.for_each_link(v, |w, _| {
                implicit.push(w as u32);
                true
            });
            let (targets, _) = t.links_of(v);
            assert_eq!(implicit, targets, "vertex {v}: order must match CSR");
        }
    }

    #[test]
    fn cube_enumeration_early_exit() {
        let c = CubeLinks::new(6).unwrap();
        let mut count = 0;
        let completed = c.for_each_link(0, |_, _| {
            count += 1;
            count < 3
        });
        assert!(!completed);
        assert_eq!(count, 3);
    }

    #[test]
    fn link_index_dispatches_to_both_backends() {
        let table = Arc::new(cycle_table(5));
        let a = LinkIndex::Table(Arc::clone(&table));
        assert_eq!(a.num_vertices(), 5);
        assert_eq!(a.num_links(), 5);
        assert_eq!(a.link_id(0, 4), table.link_id(0, 4));

        let b = LinkIndex::Cube(CubeLinks::new(3).unwrap());
        assert_eq!(b.num_vertices(), 8);
        assert_eq!(b.num_links(), 12);
        assert!(b.link_id(0, 4).is_some());
        assert_eq!(b.link_id(0, 5), None);
    }
}
