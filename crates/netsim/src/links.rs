//! The frozen link index every [`NetTopology`](crate::NetTopology)
//! exposes to the engine.
//!
//! A [`LinkTable`] is a CSR-shaped snapshot of a topology's adjacency:
//! one offsets array, one targets array, and — parallel to the targets —
//! a stable undirected **link id** per entry, dense in `0..num_links()`.
//! The circuit engine keys all per-round occupancy off these ids (a flat
//! `Vec<u32>` instead of a `HashMap<(Vertex, Vertex), u32>`), and fault
//! overlays mask damage as a bitset over the same ids.
//!
//! Two properties matter for determinism:
//! * **Native order** — `links_of(u)` lists neighbors in exactly the
//!   order the topology's own `neighbors(u)` produced them at freeze
//!   time (for materialized graphs that is sorted-ascending; for
//!   rule-generated sparse hypercubes it is ascending by dimension), so
//!   the adaptive router explores in the same order as a direct
//!   `neighbors()` walk and produces bit-identical routes.
//! * **Stable ids** — ids are assigned in first-encounter order over the
//!   vertex-major walk, so the same topology always freezes to the same
//!   table.

use crate::topology::Vertex;
use shc_graph::{CsrGraph, GraphView, Node};

/// Stable identifier of an undirected link, dense in `0..num_links()`.
pub type LinkId = u32;

/// Frozen CSR link index of a topology. Built once at topology (or
/// engine) construction; read-only and shareable across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkTable {
    /// `offsets[u]..offsets[u+1]` indexes `targets`/`link_ids` for `u`.
    offsets: Box<[u32]>,
    /// Neighbor vertices in the topology's native neighbor order.
    targets: Box<[u32]>,
    /// `link_ids[i]` is the undirected link id of `{u, targets[i]}`.
    link_ids: Box<[LinkId]>,
    num_links: u32,
}

impl LinkTable {
    /// Freezes a topology given its vertex count and a neighbor
    /// enumerator. Neighbor order is preserved verbatim.
    ///
    /// # Panics
    /// Panics on more than `2^32 - 1` vertices or target entries, or if
    /// the enumeration is asymmetric (an edge listed by only one
    /// endpoint — a malformed topology).
    #[must_use]
    pub fn build(num_vertices: u64, mut neighbors: impl FnMut(Vertex) -> Vec<Vertex>) -> Self {
        assert!(
            num_vertices < u64::from(u32::MAX),
            "link table capped at 2^32 - 1 vertices"
        );
        let n = num_vertices as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<u32> = Vec::new();
        let mut link_ids: Vec<LinkId> = Vec::new();
        let mut next: LinkId = 0;
        offsets.push(0u32);
        for u in 0..num_vertices {
            for v in neighbors(u) {
                assert!(v < num_vertices, "neighbor {v} of {u} out of range");
                targets.push(v as u32);
                if v > u {
                    link_ids.push(next);
                    next = next.checked_add(1).expect("more than 2^32 links");
                } else {
                    // v < u was already frozen: find u in v's slice.
                    let range = offsets[v as usize] as usize..offsets[v as usize + 1] as usize;
                    let pos = targets[range.clone()]
                        .iter()
                        .position(|&w| u64::from(w) == u)
                        .unwrap_or_else(|| {
                            panic!("link ({v},{u}) missing its mirror — asymmetric topology")
                        });
                    link_ids.push(link_ids[range.start + pos]);
                }
            }
            offsets.push(u32::try_from(targets.len()).expect("more than 2^32 - 1 link endpoints"));
        }
        assert_eq!(
            targets.len(),
            2 * next as usize,
            "asymmetric topology: some link is listed by only one endpoint"
        );
        Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            link_ids: link_ids.into_boxed_slice(),
            num_links: next,
        }
    }

    /// Freezes from a [`CsrGraph`], reusing its edge ids verbatim (CSR
    /// adjacency is sorted, which *is* the native order of materialized
    /// graphs).
    #[must_use]
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.target_len());
        let mut link_ids = Vec::with_capacity(g.target_len());
        offsets.push(0u32);
        for u in 0..n as Node {
            targets.extend(g.neighbors(u).iter().copied());
            link_ids.extend_from_slice(g.edge_ids_of(u));
            offsets.push(u32::try_from(targets.len()).expect("more than 2^32 - 1 link endpoints"));
        }
        Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            link_ids: link_ids.into_boxed_slice(),
            num_links: u32::try_from(g.num_edges()).expect("more than 2^32 links"),
        }
    }

    /// Number of vertices the table was frozen over.
    #[must_use]
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of undirected links; link ids are `0..num_links()`.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.num_links as usize
    }

    /// The `(neighbors, link_ids)` slices of `u`, parallel and in native
    /// neighbor order. Empty for out-of-range `u`.
    #[must_use]
    pub fn links_of(&self, u: Vertex) -> (&[u32], &[LinkId]) {
        // `offsets.len() - 1` is the vertex count (offsets is never
        // empty); comparing against it rather than computing `u + 1`
        // keeps `u = u64::MAX` from overflowing.
        let Ok(u) = usize::try_from(u) else {
            return (&[], &[]);
        };
        if u >= self.offsets.len() - 1 {
            return (&[], &[]);
        }
        let range = self.offsets[u] as usize..self.offsets[u + 1] as usize;
        (&self.targets[range.clone()], &self.link_ids[range])
    }

    /// Stable id of link `{u, v}`, or `None` when the topology has no
    /// such link (including out-of-range endpoints). Linear scan of the
    /// (short) neighbor slice — degrees in this workspace are `O(n)` for
    /// an `n`-cube, where a scan beats binary search.
    #[must_use]
    pub fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        let (targets, ids) = self.links_of(u);
        if v >= self.num_vertices() {
            return None;
        }
        targets
            .iter()
            .position(|&w| u64::from(w) == v)
            .map(|i| ids[i])
    }

    /// Iterator over all links as `(u, v, id)` with `u < v`, in
    /// vertex-major order.
    pub fn iter_links(&self) -> impl Iterator<Item = (Vertex, Vertex, LinkId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            let (targets, ids) = self.links_of(u);
            targets
                .iter()
                .zip(ids)
                .filter_map(move |(&v, &id)| (u64::from(v) > u).then_some((u, u64::from(v), id)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::{cycle, star};

    fn cycle_table(n: usize) -> LinkTable {
        let g = cycle(n);
        LinkTable::build(n as u64, |u| {
            g.neighbors(u as Node)
                .iter()
                .map(|&v| u64::from(v))
                .collect()
        })
    }

    #[test]
    fn ids_are_dense_and_symmetric() {
        let t = cycle_table(5);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.num_vertices(), 5);
        for (u, v, id) in t.iter_links() {
            assert_eq!(t.link_id(u, v), Some(id));
            assert_eq!(t.link_id(v, u), Some(id), "symmetric");
        }
        let mut ids: Vec<_> = t.iter_links().map(|(_, _, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn absent_and_out_of_range_links_are_none() {
        let t = cycle_table(6);
        assert_eq!(t.link_id(0, 2), None);
        assert_eq!(t.link_id(0, 17), None);
        assert_eq!(t.link_id(17, 0), None);
        assert_eq!(t.links_of(17), (&[][..], &[][..]));
        // Extreme ids must not overflow the offset arithmetic.
        assert_eq!(t.links_of(u64::MAX), (&[][..], &[][..]));
        assert_eq!(t.link_id(u64::MAX, 0), None);
        assert_eq!(t.link_id(0, u64::MAX), None);
    }

    #[test]
    fn native_order_is_preserved() {
        // Feed a deliberately non-sorted neighbor order (as the sparse
        // hypercube's dimension-ascending enumeration produces) and check
        // it survives freezing verbatim.
        let adj: Vec<Vec<Vertex>> = vec![vec![2, 1], vec![0, 2], vec![1, 0]];
        let t = LinkTable::build(3, |u| adj[u as usize].clone());
        let (targets, _) = t.links_of(0);
        assert_eq!(targets, &[2, 1]);
        assert_eq!(t.link_id(0, 2), t.link_id(2, 0));
        assert_eq!(t.num_links(), 3);
    }

    #[test]
    fn from_csr_matches_build() {
        let g = star(7);
        let csr = CsrGraph::from_view(&g);
        let a = LinkTable::from_csr(&csr);
        let b = LinkTable::build(7, |u| {
            g.neighbors(u as Node)
                .iter()
                .map(|&v| u64::from(v))
                .collect()
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_topology_is_rejected() {
        let adj: Vec<Vec<Vertex>> = vec![vec![1], vec![]];
        let _ = LinkTable::build(2, |u| adj[u as usize].clone());
    }
}
