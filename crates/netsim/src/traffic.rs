//! Traffic generators and experiment drivers for the circuit simulator:
//! replaying validated broadcast schedules, merging *competing* broadcasts
//! (the paper's §5 congestion discussion), and random permutation traffic.

use crate::engine::{Engine, SimStats};
use crate::probe::{EngineProbe, NoProbe};
use crate::topology::{NetTopology, Vertex};
use rand::Rng;
use shc_broadcast::Schedule;

/// Replays one schedule through the engine with fixed paths. With
/// `dilation = 1` every call of a *valid* schedule must establish — this is
/// an independent, physical re-check of edge-disjointness.
pub fn replay_schedule<T: NetTopology>(net: &T, schedule: &Schedule, dilation: u32) -> SimStats {
    let mut sim = Engine::new(net, dilation);
    for round in &schedule.rounds {
        sim.begin_round();
        for call in &round.calls {
            let _ = sim.request_path(&call.path);
        }
    }
    let mut stats = sim.finish();
    // Every scheduled call reaches the engine: nothing is skipped.
    stats.requested = stats.established + stats.blocked;
    stats
}

/// Runs several broadcast schedules *simultaneously* (round `t` of every
/// schedule shares the network in time unit `t`) — the competing-traffic
/// scenario of §5. Returns the aggregate stats.
pub fn replay_competing<T: NetTopology>(
    net: &T,
    schedules: &[Schedule],
    dilation: u32,
) -> SimStats {
    replay_competing_hooked(net, schedules, dilation, |_, _| {})
}

/// [`replay_competing`] with a per-round hook, called with the 0-based
/// round index *before* the round opens — the seam fault-injection
/// runtimes use to change engine state mid-run (e.g.
/// [`Engine::set_dilation`]) while sharing this replay's admission
/// semantics exactly.
pub fn replay_competing_hooked<T, F>(
    net: &T,
    schedules: &[Schedule],
    dilation: u32,
    before_round: F,
) -> SimStats
where
    T: NetTopology,
    F: FnMut(usize, &mut Engine<'_, T>),
{
    replay_competing_probed(net, schedules, dilation, NoProbe, before_round).0
}

/// [`replay_competing_hooked`] with an attached [`EngineProbe`] — the
/// traced replay the observability layer uses. Returns the stats
/// together with the probe (which accumulated the event journal).
/// With [`NoProbe`] this is exactly [`replay_competing_hooked`].
pub fn replay_competing_probed<T, P, F>(
    net: &T,
    schedules: &[Schedule],
    dilation: u32,
    probe: P,
    mut before_round: F,
) -> (SimStats, P)
where
    T: NetTopology,
    P: EngineProbe,
    F: FnMut(usize, &mut Engine<'_, T, P>),
{
    let max_rounds = schedules.iter().map(|s| s.rounds.len()).max().unwrap_or(0);
    let mut sim = Engine::with_probe(net, dilation, probe);
    for t in 0..max_rounds {
        before_round(t, &mut sim);
        sim.begin_round();
        for schedule in schedules {
            if let Some(round) = schedule.rounds.get(t) {
                for call in &round.calls {
                    let _ = sim.request_path(&call.path);
                }
            }
        }
    }
    let (mut stats, probe) = sim.finish_with_probe();
    stats.requested = stats.established + stats.blocked;
    (stats, probe)
}

/// One round of random permutation traffic with adaptive routing: each of
/// `pairs` uniform `(src, dst)` draws is routed within `max_len` hops.
///
/// Pairs are sampled **directly** from the rng stream (two draws per
/// pair), in `O(pairs)` time and `O(1)` memory — not by shuffling two
/// full `0..n` vectors, which made every round `O(N)` at `n = 20+`
/// regardless of how few pairs it asked for. Exactly `pairs` draws are
/// made: nothing is truncated to the vertex count, and self-pairs
/// (`src == dst`) are counted in [`SimStats::skipped`] instead of
/// vanishing, so `requested == established + blocked + skipped` holds
/// and the stats no longer under-report requested traffic. Same-seed
/// runs are deterministic (the engine and topology consume no
/// randomness).
pub fn random_permutation_round<T: NetTopology, R: Rng>(
    net: &T,
    pairs: usize,
    max_len: u32,
    dilation: u32,
    rng: &mut R,
) -> SimStats {
    let mut sim = Engine::new(net, dilation);
    random_permutation_round_with(&mut sim, pairs, max_len, rng)
}

/// [`random_permutation_round`] over a caller-supplied engine — the
/// amortized form for loops that simulate many rounds on one topology:
/// the engine's occupancy vector and search scratch (multi-megabyte at
/// `n = 20`) are allocated once by the caller instead of per round, and
/// the per-round stats come out of [`Engine::take_stats`]. Results are
/// identical to the one-shot form **provided the engine carries no
/// undrained statistics** — freshly constructed, or drained by
/// [`Engine::take_stats`] / a previous call to this function. Anything
/// still accumulated on entry would be folded into (and mis-attributed
/// by) the returned round stats.
pub fn random_permutation_round_with<T: NetTopology, P: EngineProbe, R: Rng>(
    sim: &mut Engine<'_, T, P>,
    pairs: usize,
    max_len: u32,
    rng: &mut R,
) -> SimStats {
    let n = sim.num_vertices();
    assert!(n >= 2, "need at least two vertices");
    sim.begin_round();
    let mut skipped = 0usize;
    for _ in 0..pairs {
        let src: Vertex = rng.gen_range(0..n);
        let dst: Vertex = rng.gen_range(0..n);
        if src == dst {
            skipped += 1;
            continue;
        }
        let _ = sim.request(src, dst, max_len);
    }
    let mut stats = sim.take_stats();
    stats.requested = pairs;
    stats.skipped = skipped;
    debug_assert_eq!(stats.established + stats.blocked + stats.skipped, pairs);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MaterializedNet;
    use shc_broadcast::schemes::sparse::broadcast_scheme;
    use shc_broadcast::schemes::star::star_broadcast;
    use shc_core::SparseHypercube;
    use shc_graph::builders::star;

    #[test]
    fn valid_schedule_replays_without_blocking() {
        // Physical re-check of Theorem 4's edge-disjointness: dilation 1,
        // zero blocked circuits.
        let g = SparseHypercube::construct_base(7, 3);
        let schedule = broadcast_scheme(&g, 5);
        let stats = replay_schedule(&g, &schedule, 1);
        assert_eq!(stats.blocked, 0, "valid schedules never block");
        assert_eq!(stats.established, schedule.num_calls());
        assert_eq!(stats.peak_link_load, 1);
        assert_eq!(stats.rounds, 7);
    }

    #[test]
    fn competing_broadcasts_block_at_dilation_1() {
        // Two simultaneous star broadcasts fight over the hub spokes.
        let net = MaterializedNet::new(star(16));
        let s1 = star_broadcast(16, 0);
        let s2 = star_broadcast(16, 1);
        let d1 = replay_competing(&net, &[s1.clone(), s2.clone()], 1);
        assert!(d1.blocked > 0, "competition must cause blocking");
        // Dilation 2 resolves pairwise contention entirely or mostly.
        let d2 = replay_competing(&net, &[s1, s2], 2);
        assert!(d2.blocked < d1.blocked);
        assert!(d2.blocking_rate() <= d1.blocking_rate());
    }

    #[test]
    fn competing_same_source_schedules_fully_conflict() {
        let g = SparseHypercube::construct_base(5, 2);
        let s = broadcast_scheme(&g, 0);
        let stats = replay_competing(&g, &[s.clone(), s.clone()], 1);
        // The clone re-requests exactly the same paths: all of them block.
        assert_eq!(stats.blocked, s.num_calls());
        let dilated = replay_competing(&g, &[s.clone(), s.clone()], 2);
        assert_eq!(dilated.blocked, 0, "dilation 2 absorbs the duplicate");
    }

    #[test]
    fn permutation_traffic_runs() {
        let net = MaterializedNet::new(shc_graph::builders::hypercube(6));
        let mut rng = rand::rngs::mock::StepRng::new(99, 0x9E3779B97F4A7C15);
        let stats = random_permutation_round(&net, 64, 6, 1, &mut rng);
        assert_eq!(stats.rounds, 1);
        assert!(stats.established + stats.blocked > 0);
        assert_eq!(stats.requested, 64);
        assert_eq!(stats.established + stats.blocked + stats.skipped, 64);
    }

    /// The pre-PR-5 permutation sampler, verbatim: shuffle two full
    /// `0..n` vectors, truncate to `pairs.min(n)`, silently drop
    /// self-pairs. Kept only as the statistical reference for the direct
    /// sampler.
    fn legacy_permutation_round<T: NetTopology, R: rand::Rng>(
        net: &T,
        pairs: usize,
        max_len: u32,
        dilation: u32,
        rng: &mut R,
    ) -> SimStats {
        use rand::seq::SliceRandom;
        let n = net.num_vertices();
        let mut sources: Vec<Vertex> = (0..n).collect();
        let mut dests: Vec<Vertex> = (0..n).collect();
        sources.shuffle(rng);
        dests.shuffle(rng);
        let mut sim = Engine::new(net, dilation);
        sim.begin_round();
        for i in 0..pairs.min(n as usize) {
            let (src, dst) = (sources[i], dests[i]);
            if src != dst {
                let _ = sim.request(src, dst, max_len);
            }
        }
        sim.finish()
    }

    #[test]
    fn direct_sampler_matches_legacy_sampler_statistics() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Q_6, 32 pairs/round, generous dilation so blocking is rare and
        // both samplers reduce to their pure sampling statistics. Both
        // draw uniform (src, dst); per-position the legacy permutation
        // pair collides with probability 1/n, exactly the direct
        // sampler's self-pair rate — so issued counts and mean hops must
        // agree up to sampling noise over many rounds.
        let net = MaterializedNet::new(shc_graph::builders::hypercube(6));
        let (pairs, rounds) = (32usize, 100usize);
        let mut rng_new = StdRng::seed_from_u64(0xFEED);
        let mut rng_old = StdRng::seed_from_u64(0xBEEF);
        let mut agg_new = (0usize, 0usize); // (issued, hops)
        let mut agg_old = (0usize, 0usize);
        for _ in 0..rounds {
            let s = random_permutation_round(&net, pairs, 8, 8, &mut rng_new);
            assert_eq!(s.requested, pairs);
            assert_eq!(s.established + s.blocked + s.skipped, pairs);
            agg_new.0 += s.established + s.blocked;
            agg_new.1 += s.total_hops;
            let l = legacy_permutation_round(&net, pairs, 8, 8, &mut rng_old);
            agg_old.0 += l.established + l.blocked;
            agg_old.1 += l.total_hops;
        }
        let total = (pairs * rounds) as f64;
        // Issued fraction: both expect 1 - 1/64 ≈ 0.984.
        let frac_new = agg_new.0 as f64 / total;
        let frac_old = agg_old.0 as f64 / total;
        assert!(
            (frac_new - frac_old).abs() < 0.02,
            "{frac_new} vs {frac_old}"
        );
        // Mean hops: uniform pairs on Q_6 average n/2 = 3 Hamming hops.
        let hops_new = agg_new.1 as f64 / agg_new.0 as f64;
        let hops_old = agg_old.1 as f64 / agg_old.0 as f64;
        assert!((hops_new - 3.0).abs() < 0.25, "mean hops {hops_new}");
        assert!(
            (hops_new - hops_old).abs() < 0.25,
            "{hops_new} vs {hops_old}"
        );
    }

    #[test]
    fn direct_sampler_never_truncates_and_accounts_every_draw() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // pairs >> n: the legacy sampler silently truncated to n draws;
        // the direct sampler must issue all of them and account for the
        // self-pairs it skips.
        let net = MaterializedNet::new(shc_graph::builders::hypercube(3));
        let mut rng = StdRng::seed_from_u64(42);
        let stats = random_permutation_round(&net, 50, 4, 64, &mut rng);
        assert_eq!(stats.requested, 50, "no truncation at n = 8");
        assert_eq!(stats.established + stats.blocked + stats.skipped, 50);
        assert!(stats.skipped > 0, "seeded run draws some self-pairs");
        assert!(
            stats.established + stats.blocked > 8,
            "issues more than the legacy n-cap"
        );
    }

    #[test]
    fn empty_schedule_list() {
        let net = MaterializedNet::new(star(4));
        let stats = replay_competing(&net, &[], 1);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.blocking_rate(), 0.0);
    }

    #[test]
    fn hooked_replay_with_noop_hook_matches_plain() {
        let g = SparseHypercube::construct_base(6, 2);
        let s = broadcast_scheme(&g, 0);
        let schedules = [s.clone(), broadcast_scheme(&g, 7)];
        assert_eq!(
            replay_competing(&g, &schedules, 1),
            replay_competing_hooked(&g, &schedules, 1, |_, _| {})
        );
    }

    #[test]
    fn hooked_replay_can_shift_dilation_mid_run() {
        // Two identical schedules fully conflict at dilation 1; upgrading
        // to dilation 2 before round 2 absorbs the tail of the conflict.
        let g = SparseHypercube::construct_base(5, 2);
        let s = broadcast_scheme(&g, 0);
        let fully_blocked = replay_competing(&g, &[s.clone(), s.clone()], 1);
        assert_eq!(fully_blocked.blocked, s.num_calls());
        let healed = replay_competing_hooked(&g, &[s.clone(), s.clone()], 1, |t, sim| {
            if t == 2 {
                sim.set_dilation(2);
            }
        });
        assert!(healed.blocked < fully_blocked.blocked);
        assert!(healed.blocked > 0, "rounds 0-1 still conflicted");
    }
}
