//! Zero-cost observability hooks for the [`Engine`](crate::Engine).
//!
//! The engine is generic over an [`EngineProbe`] — a sink for per-decision
//! events (admissions, blocks, flow lifecycle, search effort). The default
//! probe is [`NoProbe`], whose `ENABLED` flag is `false`: every
//! instrumentation site in the engine is guarded by `if P::ENABLED`, a
//! monomorphization-time constant, so an unattached engine compiles to
//! exactly the pre-probe machine code. Attaching a probe
//! ([`Engine::with_probe`](crate::Engine::with_probe)) pays only for what
//! the probe records.
//!
//! Probes observe **simulated time only**: round indices and in-round
//! event order. Nothing here reads a wall clock, so a probe's output is a
//! pure function of the engine's (deterministic) decision sequence —
//! the property `shc_runtime::trace` builds its byte-identical journal
//! contract on.

use crate::engine::{BlockReason, RouteSearch};
use crate::links::LinkId;
use crate::topology::Vertex;

/// Per-request search effort, reported alongside every adaptive
/// admission decision when a probe is attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchStats {
    /// Which search ran (explicit or auto-dispatched).
    pub strategy: RouteSearch,
    /// Vertices expanded (popped/scanned) before the search concluded.
    pub nodes_expanded: u32,
    /// Peak frontier size (sum over live frontiers for bidirectional).
    pub frontier_peak: u32,
}

/// One admission decision, borrowed from the engine at the decision site.
///
/// `hops`/`reason` mirror the returned outcome: exactly one is `Some`.
/// `rejecting_link` is the first live link the failed search (or fixed
/// path) skipped for lack of capacity — deterministic in search order —
/// or `None` when the block had nothing to do with capacity.
/// `search` is `None` for fixed-path requests
/// ([`Engine::request_path`](crate::Engine::request_path)), which run no
/// search.
#[derive(Clone, Copy, Debug)]
pub struct RequestProbe<'a> {
    /// Requested source vertex.
    pub src: Vertex,
    /// Requested destination vertex.
    pub dst: Vertex,
    /// Route length in links when established.
    pub hops: Option<u32>,
    /// Refusal reason when blocked.
    pub reason: Option<&'a BlockReason>,
    /// First link skipped for lack of capacity, when any.
    pub rejecting_link: Option<LinkId>,
    /// Search effort (adaptive requests only).
    pub search: Option<SearchStats>,
}

/// Event sink the engine drives. All methods have empty defaults, so a
/// probe implements only what it cares about. Implementors that record
/// anything must keep the default `ENABLED = true`; the engine skips
/// every call site (and all bookkeeping feeding it) when `ENABLED` is
/// `false`.
pub trait EngineProbe {
    /// Monomorphization-time switch: when `false` the engine compiles
    /// all instrumentation out (see [`NoProbe`]).
    const ENABLED: bool = true;

    /// A new round opened; `round` counts from 0 per engine.
    fn on_round_begin(&mut self, round: u64) {
        let _ = round;
    }

    /// One admission decision concluded (adaptive or fixed-path).
    fn on_request(&mut self, req: &RequestProbe<'_>) {
        let _ = req;
    }

    /// A flow was admitted into slab slot `flow` holding `hops` links.
    fn on_flow_established(&mut self, flow: u32, hops: u32) {
        let _ = (flow, hops);
    }

    /// The flow in slab slot `flow` released its `hops` links.
    fn on_flow_released(&mut self, flow: u32, hops: u32) {
        let _ = (flow, hops);
    }

    /// The flow in slab slot `flow` was torn down by a fault (its `hops`
    /// links were freed, but the closure was involuntary).
    fn on_flow_torn_down(&mut self, flow: u32, hops: u32) {
        let _ = (flow, hops);
    }

    /// The flow in slab slot `flow` was preempted by admission control
    /// in favour of a higher-priority request; its `hops` links freed.
    fn on_flow_preempted(&mut self, flow: u32, hops: u32) {
        let _ = (flow, hops);
    }

    /// The flow in slab slot `flow` moved from an `old_hops`-link circuit
    /// to a fresh `new_hops`-link circuit around damage; the slot (and
    /// the caller's handle) stay valid.
    fn on_flow_rerouted(&mut self, flow: u32, old_hops: u32, new_hops: u32) {
        let _ = (flow, old_hops, new_hops);
    }

    /// Batched admission only: the proposal for `src → dst` lost a
    /// link-capacity conflict against an earlier-sequenced commit in
    /// re-route wave `wave` (0 is the initial propose pass). The request
    /// is **not** concluded — it re-routes in the next wave — so this
    /// event changes no request/established/blocked tally; a concluding
    /// [`on_request`](Self::on_request) always follows in a later wave.
    fn on_batch_conflict(&mut self, wave: u32, src: Vertex, dst: Vertex) {
        let _ = (wave, src, dst);
    }
}

/// The default, absent probe: `ENABLED = false` erases every
/// instrumentation site at compile time, so `Engine<T>` (without an
/// explicit probe parameter) is bit-for-bit the uninstrumented engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoProbe;

impl EngineProbe for NoProbe {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe with all-default methods must be constructible and
    /// callable (the defaults are the no-op contract).
    #[test]
    fn default_methods_are_noops() {
        struct Inert;
        impl EngineProbe for Inert {}
        const { assert!(Inert::ENABLED) };
        let mut p = Inert;
        p.on_round_begin(3);
        p.on_flow_established(0, 2);
        p.on_flow_released(0, 2);
        let req = RequestProbe {
            src: 0,
            dst: 1,
            hops: Some(1),
            reason: None,
            rejecting_link: None,
            search: None,
        };
        p.on_request(&req);
    }

    #[test]
    fn no_probe_is_disabled() {
        const { assert!(!NoProbe::ENABLED) };
    }
}
