//! The synchronous circuit-switching engine.
//!
//! Models the paper's line-communication substrate directly: in each time
//! unit a set of calls (circuits) is requested; a circuit occupies every
//! link along its path for the round; a link carries at most `dilation`
//! circuits simultaneously (`dilation = 1` is the paper's model; larger
//! values implement the §5 "multiedge / dilated network" extension).
//!
//! Two admission modes:
//! * **fixed-path** ([`Engine::request_path`]) — the caller supplies the
//!   route (used to replay validated broadcast schedules);
//! * **adaptive** ([`Engine::request`]) — the engine finds a shortest path
//!   avoiding saturated links, within a length bound.
//!
//! The hot path is allocation-free in steady state: link occupancy is a
//! flat `Vec<u32>` indexed by the topology's frozen [`LinkTable`] ids
//! (reset per round through a dirty list, not by clearing a map), and the
//! adaptive router reuses an epoch-stamped visited array, a parent array,
//! and a ring queue across requests.

use crate::links::{LinkId, LinkTable};
use crate::topology::{NetTopology, Vertex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Why a circuit was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// A supplied path hop is not a (live) edge.
    NotAnEdge((Vertex, Vertex)),
    /// Some link along the (only possible) route is saturated.
    Saturated,
    /// No route within the length bound exists at all.
    NoRoute,
}

/// Outcome of one circuit request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Circuit established along the contained path.
    Established(Vec<Vertex>),
    /// Circuit refused.
    Blocked(BlockReason),
}

impl Outcome {
    /// `true` when established.
    #[must_use]
    pub fn is_established(&self) -> bool {
        matches!(self, Self::Established(_))
    }
}

/// Aggregate counters over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Circuits established.
    pub established: usize,
    /// Circuits blocked.
    pub blocked: usize,
    /// Total hops across established circuits.
    pub total_hops: usize,
    /// Peak per-link occupancy observed in any round.
    pub peak_link_load: u32,
    /// Sum over rounds of the maximum per-link occupancy (for means).
    pub sum_round_peak: u64,
    /// Sum over rounds of the longest established circuit (edges) — a
    /// wormhole-style latency proxy: a round costs as long as its longest
    /// circuit takes to set up and traverse.
    pub weighted_latency: u64,
}

impl SimStats {
    /// Fraction of requests blocked.
    #[must_use]
    pub fn blocking_rate(&self) -> f64 {
        let total = self.established + self.blocked;
        if total == 0 {
            0.0
        } else {
            self.blocked as f64 / total as f64
        }
    }

    /// Mean hops per established circuit.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.established == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.established as f64
        }
    }

    /// Mean over rounds of the per-round peak link load.
    #[must_use]
    pub fn mean_round_peak(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.sum_round_peak as f64 / self.rounds as f64
        }
    }

    /// Latency per round in hop units (total weighted latency / rounds):
    /// 1.0 for a store-and-forward schedule, up to `k` for k-line calls.
    #[must_use]
    pub fn mean_round_latency(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.weighted_latency as f64 / self.rounds as f64
        }
    }
}

/// The simulator. Holds the topology by reference, its frozen link
/// table, and flat per-link occupancy plus reusable routing scratch.
pub struct Engine<'a, T: NetTopology> {
    net: &'a T,
    table: Arc<LinkTable>,
    dilation: u32,
    /// Circuits currently on each link this round, indexed by link id.
    usage: Vec<u32>,
    /// Link ids with nonzero usage this round (may contain benign
    /// duplicates after a rolled-back admission); zeroed on round reset.
    dirty: Vec<LinkId>,
    /// Scratch: link ids of the path under admission.
    path_ids: Vec<LinkId>,
    /// Scratch: BFS visited stamp per vertex (`== epoch` means seen).
    seen: Vec<u32>,
    /// Scratch: BFS predecessor vertex per vertex.
    parent: Vec<u32>,
    /// Scratch: link id used to reach each vertex.
    parent_link: Vec<LinkId>,
    /// Current BFS epoch (bumped per adaptive request).
    epoch: u32,
    /// Scratch: BFS ring queue of `(vertex, depth)`.
    queue: VecDeque<(u32, u32)>,
    round_peak: u32,
    round_max_hops: u64,
    stats: SimStats,
    round_open: bool,
}

impl<'a, T: NetTopology> Engine<'a, T> {
    /// Creates an engine over `net` with per-link capacity `dilation`.
    /// Obtains the topology's frozen link table once (topologies frozen
    /// at construction hand out a shared table; others freeze here).
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    #[must_use]
    pub fn new(net: &'a T, dilation: u32) -> Self {
        assert!(dilation >= 1, "links need capacity >= 1");
        let table = net.link_table();
        let n = usize::try_from(table.num_vertices()).expect("vertex count fits usize");
        Self {
            net,
            dilation,
            usage: vec![0; table.num_links()],
            dirty: Vec::new(),
            path_ids: Vec::new(),
            seen: vec![0; n],
            parent: vec![0; n],
            parent_link: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
            table,
            round_peak: 0,
            round_max_hops: 0,
            stats: SimStats::default(),
            round_open: false,
        }
    }

    /// Changes the per-link capacity from the next admission on — the
    /// fault-injection hook for mid-run dilation shifts (a dilated link
    /// bank coming online, or degrading to fewer circuits per link).
    /// Circuits already admitted this round are not re-evaluated.
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    pub fn set_dilation(&mut self, dilation: u32) {
        assert!(dilation >= 1, "links need capacity >= 1");
        self.dilation = dilation;
    }

    /// Current per-link capacity.
    #[must_use]
    pub fn dilation(&self) -> u32 {
        self.dilation
    }

    /// Starts a new time unit: all circuits from the previous round are
    /// torn down (only the links actually used are reset).
    pub fn begin_round(&mut self) {
        if self.round_open {
            self.close_round();
        }
        for &id in &self.dirty {
            self.usage[id as usize] = 0;
        }
        self.dirty.clear();
        self.round_peak = 0;
        self.round_max_hops = 0;
        self.round_open = true;
    }

    /// Finishes the current round, folding its counters into the stats.
    pub fn close_round(&mut self) {
        if self.round_open {
            self.stats.rounds += 1;
            self.stats.peak_link_load = self.stats.peak_link_load.max(self.round_peak);
            self.stats.sum_round_peak += u64::from(self.round_peak);
            self.stats.weighted_latency += self.round_max_hops;
            self.round_open = false;
        }
    }

    /// Commits the circuit whose link ids sit in `self.path_ids`
    /// (occupancy was already incremented by admission).
    fn commit(&mut self, hops: usize) {
        for i in 0..self.path_ids.len() {
            self.round_peak = self.round_peak.max(self.usage[self.path_ids[i] as usize]);
        }
        self.stats.established += 1;
        self.stats.total_hops += hops;
        self.round_max_hops = self.round_max_hops.max(hops as u64);
    }

    /// Increments occupancy for one link; returns `false` (over capacity)
    /// without recording when the link is already saturated.
    fn try_occupy(&mut self, id: LinkId) -> bool {
        let slot = &mut self.usage[id as usize];
        if *slot >= self.dilation {
            return false;
        }
        *slot += 1;
        if *slot == 1 {
            self.dirty.push(id);
        }
        true
    }

    /// Requests a circuit along an explicit path.
    ///
    /// # Panics
    /// Panics if called outside a round.
    pub fn request_path(&mut self, path: &[Vertex]) -> Outcome {
        assert!(self.round_open, "begin_round first");
        assert!(path.len() >= 2, "a circuit needs two endpoints");
        self.path_ids.clear();
        for w in path.windows(2) {
            // Live-edge test: present in the frozen table and not masked
            // by a damage overlay.
            match self.table.link_id(w[0], w[1]) {
                Some(id) if !self.net.link_blocked(id) => self.path_ids.push(id),
                _ => {
                    self.stats.blocked += 1;
                    return Outcome::Blocked(BlockReason::NotAnEdge((w[0], w[1])));
                }
            }
        }
        // Tentatively occupy hop by hop so per-path multiplicity counts
        // toward capacity too; roll back on the first saturated link.
        for k in 0..self.path_ids.len() {
            if !self.try_occupy(self.path_ids[k]) {
                for i in 0..k {
                    self.usage[self.path_ids[i] as usize] -= 1;
                }
                self.stats.blocked += 1;
                return Outcome::Blocked(BlockReason::Saturated);
            }
        }
        self.commit(path.len() - 1);
        Outcome::Established(path.to_vec())
    }

    /// Requests a circuit from `src` to `dst`, adaptively routed along a
    /// shortest path that avoids saturated links, with at most `max_len`
    /// hops.
    ///
    /// # Panics
    /// Panics if called outside a round, if `src == dst`, or if either
    /// endpoint is out of range for the topology.
    pub fn request(&mut self, src: Vertex, dst: Vertex, max_len: u32) -> Outcome {
        assert!(self.round_open, "begin_round first");
        assert_ne!(src, dst, "self-circuit");
        let n = self.table.num_vertices();
        assert!(
            src < n && dst < n,
            "request endpoints ({src}, {dst}) out of range for {n} vertices"
        );
        // BFS over links with spare capacity, reusing the epoch-stamped
        // scratch arrays (no per-request allocation in steady state).
        if self.epoch == u32::MAX {
            self.seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
        self.seen[src as usize] = self.epoch;
        self.queue.push_back((src as u32, 0));
        let mut any_route_capacity_blind = false;
        while let Some((x, d)) = self.queue.pop_front() {
            if d == max_len {
                continue;
            }
            let (targets, ids) = self.table.links_of(u64::from(x));
            for (&y, &id) in targets.iter().zip(ids) {
                if self.net.link_blocked(id) {
                    continue;
                }
                if u64::from(y) == dst {
                    any_route_capacity_blind = true;
                }
                if self.seen[y as usize] == self.epoch || self.usage[id as usize] >= self.dilation {
                    continue;
                }
                self.seen[y as usize] = self.epoch;
                self.parent[y as usize] = x;
                self.parent_link[y as usize] = id;
                if u64::from(y) == dst {
                    return self.establish_found(src, dst);
                }
                self.queue.push_back((y, d + 1));
            }
        }
        self.stats.blocked += 1;
        if any_route_capacity_blind {
            Outcome::Blocked(BlockReason::Saturated)
        } else {
            Outcome::Blocked(BlockReason::NoRoute)
        }
    }

    /// Walks the parent chain from `dst` back to `src`, occupies the
    /// links, and returns the established path.
    fn establish_found(&mut self, src: Vertex, dst: Vertex) -> Outcome {
        let mut path = vec![dst];
        self.path_ids.clear();
        let mut cur = dst as u32;
        while u64::from(cur) != src {
            self.path_ids.push(self.parent_link[cur as usize]);
            cur = self.parent[cur as usize];
            path.push(u64::from(cur));
        }
        path.reverse();
        // A BFS path is simple, so each link appears once: capacity was
        // already checked during the search and occupation cannot fail.
        for i in 0..self.path_ids.len() {
            let id = self.path_ids[i];
            let occupied = self.try_occupy(id);
            debug_assert!(occupied, "BFS admitted a saturated link");
        }
        self.commit(path.len() - 1);
        Outcome::Established(path)
    }

    /// Accumulated statistics (folds in the open round).
    #[must_use]
    pub fn finish(mut self) -> SimStats {
        self.close_round();
        self.stats
    }

    /// Current per-link usage snapshot (normalized edge → circuits),
    /// reconstructed from the flat occupancy vector. Diagnostic /
    /// cross-check API — not on the hot path.
    #[must_use]
    pub fn usage_snapshot(&self) -> HashMap<(Vertex, Vertex), u32> {
        let mut map = HashMap::new();
        for (u, v, id) in self.table.iter_links() {
            let load = self.usage[id as usize];
            if load > 0 {
                map.insert((u, v), load);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MaterializedNet;
    use shc_graph::builders::{cycle, star};

    #[test]
    fn fixed_path_capacity_one() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        // Edge {0,2} now saturated: a second circuit through it blocks.
        assert_eq!(
            sim.request_path(&[3, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        // Different spokes are free.
        assert!(sim.request_path(&[3, 0, 4]).is_established());
        let stats = sim.finish();
        assert_eq!(stats.established, 2);
        assert_eq!(stats.blocked, 1);
        assert_eq!(stats.peak_link_load, 1);
        assert!((stats.blocking_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dilation_two_allows_sharing() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(
            sim.request_path(&[3, 0, 2]).is_established(),
            "dilated link"
        );
        assert_eq!(
            sim.request_path(&[4, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        let stats = sim.finish();
        assert_eq!(stats.peak_link_load, 2);
    }

    #[test]
    fn rounds_reset_capacity() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[0, 1]).is_established());
        assert_eq!(
            sim.request_path(&[1, 0]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        sim.begin_round();
        assert!(sim.request_path(&[1, 0]).is_established(), "fresh round");
        let stats = sim.finish();
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn adaptive_routes_around_congestion() {
        // C_4: 0-1-2-3-0. Occupy edge {0,1}; a request 0 -> 1 must route
        // the long way (0-3-2-1) when allowed.
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[0, 1]).is_established());
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
        // With the detour also occupied, a third request blocks.
        assert!(!sim.request(0, 1, 3).is_established());
    }

    #[test]
    fn adaptive_respects_length_bound() {
        let net = MaterializedNet::new(cycle(8));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        // Distance 0 -> 4 is 4; bound 3 cannot route.
        assert_eq!(sim.request(0, 4, 3), Outcome::Blocked(BlockReason::NoRoute));
        assert!(sim.request(0, 4, 4).is_established());
    }

    #[test]
    fn invalid_path_blocks() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[0, 2]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 2)))
        );
    }

    #[test]
    fn out_of_range_path_hop_blocks_cleanly() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        // A hop with an out-of-range endpoint is NotAnEdge, not a panic.
        assert_eq!(
            sim.request_path(&[0, 17]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 17)))
        );
        let stats = sim.finish();
        assert_eq!(stats.blocked, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_adaptive_request_panics_clearly() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let _ = sim.request(0, 17, 3);
    }

    #[test]
    fn stats_mean_hops() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        sim.request_path(&[0, 1]);
        sim.request_path(&[2, 3, 4]);
        let stats = sim.finish();
        assert!((stats.mean_hops() - 1.5).abs() < 1e-12);
        assert_eq!(stats.rounds, 1);
        assert!((stats.mean_round_peak() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "begin_round")]
    fn request_outside_round_panics() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        let _ = sim.request_path(&[0, 1]);
    }

    #[test]
    fn mid_run_dilation_shift() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        assert_eq!(sim.dilation(), 1);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(!sim.request_path(&[3, 0, 2]).is_established());
        // The link bank widens mid-run: the same contention now fits.
        sim.set_dilation(2);
        assert!(sim.request_path(&[3, 0, 2]).is_established());
        sim.begin_round();
        // And narrows again: back to single-circuit links.
        sim.set_dilation(1);
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(!sim.request_path(&[3, 0, 2]).is_established());
        let stats = sim.finish();
        assert_eq!(stats.established, 3);
        assert_eq!(stats.blocked, 2);
    }

    #[test]
    fn rolled_back_admission_leaves_no_occupancy() {
        // Path [1,0,2,0]? not simple — use per-path multiplicity instead:
        // a walk crossing the same star hub edge twice at dilation 1 must
        // roll back fully, leaving both edges free.
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[1, 0, 2, 0, 1]),
            Outcome::Blocked(BlockReason::Saturated),
            "walk reuses {{0,1}} beyond capacity"
        );
        assert!(sim.usage_snapshot().is_empty(), "rollback left residue");
        assert!(sim.request_path(&[1, 0, 2]).is_established());
    }

    #[test]
    fn snapshot_reports_normalized_loads() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        assert!(sim.request_path(&[2, 1, 0]).is_established());
        assert!(sim.request_path(&[1, 0]).is_established());
        let snap = sim.usage_snapshot();
        assert_eq!(snap.get(&(0, 1)), Some(&2));
        assert_eq!(snap.get(&(1, 2)), Some(&1));
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn engine_over_faulted_topology_blocks_dead_links() {
        use crate::topology::FaultedNet;
        let net = MaterializedNet::new(cycle(4));
        let damaged = FaultedNet::new(&net, [(0u64, 1u64)], []);
        let mut sim = Engine::new(&damaged, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[0, 1]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 1)))
        );
        // Adaptive routing detours around the failure.
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
    }
}
