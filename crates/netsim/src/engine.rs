//! The synchronous circuit-switching engine.
//!
//! Models the paper's line-communication substrate directly: in each time
//! unit a set of calls (circuits) is requested; a circuit occupies every
//! link along its path for the round; a link carries at most `dilation`
//! circuits simultaneously (`dilation = 1` is the paper's model; larger
//! values implement the §5 "multiedge / dilated network" extension).
//!
//! Two admission modes:
//! * **fixed-path** ([`Engine::request_path`]) — the caller supplies the
//!   route (used to replay validated broadcast schedules);
//! * **adaptive** ([`Engine::request`]) — the engine finds a shortest path
//!   avoiding saturated links, within a length bound.
//!
//! Adaptive routing picks its search automatically (see [`RouteSearch`]):
//! on topologies whose vertex ids are cube coordinates
//! ([`NetTopology::cube_labeled`]) it runs **distance-capped A\*** with
//! the Hamming metric as an admissible, consistent heuristic — plus an
//! `O(deg)` saturation guard around the destination that turns the
//! hot-spot steady state (every link into the target busy) into an
//! immediate rejection; on everything else it runs **bidirectional BFS**,
//! meeting in the middle and terminating as soon as either endpoint is
//! walled in. The pre-PR-4 unidirectional BFS survives as
//! [`RouteSearch::Unidirectional`], the reference model the property
//! tests compare the new searches against.
//!
//! The hot path is allocation-free in steady state: link occupancy is a
//! flat `Vec<u32>` indexed by the topology's [`LinkIndex`] ids — a frozen
//! CSR table for materialized graphs, closed-form cube arithmetic for
//! rule-generated ones — reset per round through a dirty list, not by
//! clearing a map. All three searches walk neighbors through the
//! topology's allocation-free [`NetTopology::for_each_link`] and reuse
//! epoch-stamped visited/parent/distance scratch — one set per frontier
//! direction — across requests.

use crate::batch::{BatchRequest, CommitOutcome, FlowCommitOutcome, Proposal};
use crate::links::{LinkId, LinkIndex};
use crate::probe::{EngineProbe, NoProbe, RequestProbe, SearchStats};
use crate::router::{search_route, RouteView, SearchOutcome, SearchScratch};
use crate::topology::{NetTopology, Vertex};
use std::collections::HashMap;

/// Why a circuit was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// A supplied path hop is not a (live) edge.
    NotAnEdge((Vertex, Vertex)),
    /// Some link along the (only possible) route is saturated.
    Saturated,
    /// No route within the length bound exists at all.
    NoRoute,
}

/// Outcome of one circuit request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Circuit established along the contained path.
    Established(Vec<Vertex>),
    /// Circuit refused.
    Blocked(BlockReason),
}

impl Outcome {
    /// `true` when established.
    #[must_use]
    pub fn is_established(&self) -> bool {
        matches!(self, Self::Established(_))
    }
}

/// Which shortest-path search an adaptive request runs. All three find a
/// shortest path over links with spare capacity (or prove none exists
/// within the length bound); they differ in exploration order, so where
/// several shortest paths tie they may return different — equally short —
/// routes. Where the shortest path is unique they return identical
/// routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteSearch {
    /// The legacy single-frontier BFS from the source (pre-PR-4
    /// behavior, kept verbatim — block reasons included — as the
    /// reference model for property tests).
    Unidirectional,
    /// Two BFS frontiers, expanded smallest-first until they meet.
    /// Terminates early when either endpoint is walled in, which makes
    /// saturated hot spots `O(deg)` instead of `O(V + E)`.
    Bidirectional,
    /// Distance-capped A\* with the Hamming metric between vertex ids as
    /// the heuristic. Only valid on [`NetTopology::cube_labeled`]
    /// topologies, where the metric is an admissible, consistent lower
    /// bound on route length ([`Engine::request_with`] asserts this).
    AStarCube,
}

/// Aggregate counters over a simulation run.
///
/// Accounting invariant (PR 5): whenever a traffic generator fills in
/// [`requested`](Self::requested), it holds that
/// `requested == established + blocked + skipped` — every draw the
/// generator was asked for either reached the engine (and was counted
/// established or blocked) or was skipped before the engine saw it
/// (and is counted in [`skipped`](Self::skipped)). Engine-direct
/// drivers leave `requested == 0`.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Circuits established.
    pub established: usize,
    /// Circuits blocked.
    pub blocked: usize,
    /// Total hops across established circuits.
    pub total_hops: usize,
    /// Peak per-link occupancy observed in any round.
    pub peak_link_load: u32,
    /// Sum over rounds of the maximum per-link occupancy (for means).
    pub sum_round_peak: u64,
    /// Sum over rounds of the longest established circuit (edges) — a
    /// wormhole-style latency proxy: a round costs as long as its longest
    /// circuit takes to set up and traverse.
    pub weighted_latency: u64,
    /// Circuit requests the **traffic generator** was asked for —
    /// including draws it skipped before reaching the engine. Filled in
    /// by the `traffic` generators (`requested == established + blocked
    /// + skipped`); 0 when the engine is driven directly.
    pub requested: usize,
    /// Generator draws skipped without reaching the engine (e.g.
    /// `src == dst` pairs in permutation traffic). Previously these were
    /// dropped silently, under-reporting requested traffic.
    pub skipped: usize,
}

impl SimStats {
    /// Fraction of requests blocked.
    #[must_use]
    pub fn blocking_rate(&self) -> f64 {
        let total = self.established + self.blocked;
        if total == 0 {
            0.0
        } else {
            self.blocked as f64 / total as f64
        }
    }

    /// Mean hops per established circuit.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.established == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.established as f64
        }
    }

    /// Mean over rounds of the per-round peak link load.
    #[must_use]
    pub fn mean_round_peak(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.sum_round_peak as f64 / self.rounds as f64
        }
    }

    /// Latency per round in hop units (total weighted latency / rounds):
    /// 1.0 for a store-and-forward schedule, up to `k` for k-line calls.
    #[must_use]
    pub fn mean_round_latency(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.weighted_latency as f64 / self.rounds as f64
        }
    }
}

/// Handle to a circuit held **across** rounds (a *flow*), returned by
/// [`Engine::request_flow`] and consumed by [`Engine::release_flow`].
/// Handles are engine-scoped, **generation-checked** slab indices: a slot
/// is recycled for a later flow once its occupant ends, but every close
/// (release, teardown, preemption, failed reroute) bumps the slot's
/// generation, so a stale handle never aliases the slot's next occupant —
/// it either panics (release/teardown paths) or reads as inactive
/// ([`Engine::is_flow_active`]), never silently touches the wrong
/// circuit.
///
/// ```
/// use shc_graph::builders::cycle;
/// use shc_netsim::{Engine, FlowOutcome, MaterializedNet};
///
/// let net = MaterializedNet::new(cycle(6));
/// let mut sim = Engine::new(&net, 1);
/// sim.begin_round();
/// let flow = match sim.request_flow(0, 2, 4) {
///     FlowOutcome::Established { flow, hops } => {
///         assert_eq!(hops, 2); // 0-1-2
///         flow
///     }
///     FlowOutcome::Blocked(reason) => panic!("clean ring blocked: {reason:?}"),
/// };
/// sim.begin_round(); // the flow survives the round boundary …
/// assert_eq!(sim.active_flows(), 1);
/// assert!(sim.is_flow_active(flow));
/// sim.release_flow(flow); // … until released
/// assert_eq!(sim.active_flows(), 0);
/// assert!(!sim.is_flow_active(flow), "the handle is now stale");
/// assert!(sim.usage_snapshot().is_empty(), "no residual occupancy");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId {
    slot: u32,
    gen: u32,
}

impl FlowId {
    /// The slab slot behind this handle — the integer the trace layer
    /// journals flow events under (slots recycle; the `(slot, open)`
    /// ledger in `trace::audit` keeps reuse unambiguous).
    #[must_use]
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

/// Everything the engine keeps per active flow: the held route plus the
/// endpoints, retained so a mid-run link failure can re-route the flow
/// in place ([`Engine::reroute_flow`]).
struct FlowRecord {
    links: Vec<LinkId>,
    src: Vertex,
    dst: Vertex,
}

/// One slab slot: current generation + occupant (if any). The
/// generation increments on every close, invalidating old handles.
struct FlowSlot {
    gen: u32,
    record: Option<FlowRecord>,
}

/// Outcome of [`Engine::reroute_flow`]: the flow either holds a fresh
/// route (same handle, possibly different length) or could not be
/// re-placed and was torn down (handle now stale).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RerouteOutcome {
    /// A replacement route was found; the flow (and its handle) lives on.
    Rerouted {
        /// Length of the new route in links.
        hops: u32,
    },
    /// No replacement route existed within the length bound; the flow
    /// was torn down and its handle invalidated.
    TornDown(BlockReason),
}

/// Outcome of one flow request ([`Engine::request_flow`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// The flow was admitted along a shortest available route and now
    /// holds its links until [`Engine::release_flow`].
    Established {
        /// Handle for the eventual release.
        flow: FlowId,
        /// Route length in links (the circuit's setup latency proxy).
        hops: u32,
    },
    /// The flow was refused; no state was retained.
    Blocked(BlockReason),
}

impl FlowOutcome {
    /// `true` when established.
    #[must_use]
    pub fn is_established(&self) -> bool {
        matches!(self, Self::Established { .. })
    }
}

/// The simulator. Holds the topology by reference, its link index
/// (frozen table or implicit arithmetic), and flat per-link occupancy
/// plus reusable routing scratch.
///
/// The third parameter is the observability hook: an [`EngineProbe`]
/// receiving per-decision events. It defaults to [`NoProbe`], whose
/// `ENABLED = false` constant compiles every instrumentation site out —
/// `Engine::new` builds exactly the uninstrumented engine. Attach a
/// recording probe with [`Engine::with_probe`].
pub struct Engine<'a, T: NetTopology, P: EngineProbe = NoProbe> {
    net: &'a T,
    index: LinkIndex,
    dilation: u32,
    /// Circuits currently on each link this round, indexed by link id.
    usage: Vec<u32>,
    /// Link ids whose usage may exceed the held base load this round
    /// (may contain benign duplicates after a rolled-back admission or a
    /// mid-round flow release); reset to the held level on round reset.
    dirty: Vec<LinkId>,
    /// Per-link circuits held **across** rounds by active flows.
    /// Lazily sized on the first flow admission, so memoryless
    /// (round-by-round) workloads pay nothing for the flow layer.
    held: Vec<u32>,
    /// Active-flow slab: slot `i` holds flow `i`'s route + generation.
    flow_slots: Vec<FlowSlot>,
    /// Recycled slab slots.
    free_flows: Vec<u32>,
    /// Dynamic damage overlay: bitset over link ids of links failed
    /// mid-run ([`fail_link`](Self::fail_link)) and not yet repaired.
    /// Lazily allocated; consulted only while `dyn_faults > 0`, so
    /// churn-free runs pay one integer test per link visit.
    dyn_dead: Vec<u64>,
    /// Links currently failed in the dynamic overlay.
    dyn_faults: usize,
    /// Active flow count (slab slots currently occupied).
    active_flows: usize,
    /// Total links currently held by active flows (occupancy gauge).
    held_link_hops: u64,
    /// The engine's own epoch-stamped search scratch (visited/parent/
    /// distance arrays, queues, frontiers, the link ids of the path
    /// under admission, and the probe effort counters) — see
    /// [`SearchScratch`]. Serial admission routes through this one;
    /// batched admission ([`Engine::propose`]) routes through
    /// caller-owned per-thread instances instead.
    scratch: SearchScratch,
    /// Whether the topology's labeling admits the A* cube-metric path.
    use_cube_metric: bool,
    round_peak: u32,
    round_max_hops: u64,
    stats: SimStats,
    round_open: bool,
    /// Rounds opened so far (the open round's index is this minus one).
    round_index: u64,
    /// Attached observability sink (zero-sized [`NoProbe`] by default).
    probe: P,
}

impl<'a, T: NetTopology> Engine<'a, T> {
    /// Creates an engine over `net` with per-link capacity `dilation`.
    /// Obtains the topology's link index once — a shared frozen table
    /// for materialized topologies, a copyable arithmetic index for
    /// rule-generated ones (no adjacency is materialized either way).
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    #[must_use]
    pub fn new(net: &'a T, dilation: u32) -> Self {
        Engine::with_probe(net, dilation, NoProbe)
    }
}

impl<'a, T: NetTopology, P: EngineProbe> Engine<'a, T, P> {
    /// Creates an engine with an attached [`EngineProbe`] receiving
    /// per-decision events. Identical to [`Engine::new`] in every
    /// simulated outcome — probes observe, they never steer.
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    #[must_use]
    pub fn with_probe(net: &'a T, dilation: u32, probe: P) -> Self {
        assert!(dilation >= 1, "links need capacity >= 1");
        let index = net.link_index();
        let use_cube_metric = net.cube_labeled();
        Self {
            net,
            dilation,
            usage: vec![0; index.num_links()],
            dirty: Vec::new(),
            held: Vec::new(),
            flow_slots: Vec::new(),
            free_flows: Vec::new(),
            dyn_dead: Vec::new(),
            dyn_faults: 0,
            active_flows: 0,
            held_link_hops: 0,
            scratch: SearchScratch::new(index.num_vertices()),
            use_cube_metric,
            index,
            round_peak: 0,
            round_max_hops: 0,
            stats: SimStats::default(),
            round_open: false,
            round_index: 0,
            probe,
        }
    }

    /// Mutable access to the attached probe — the seam drivers use to
    /// push their own (service-level) events into the same sink between
    /// engine calls.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Closes the open round (if any) and returns the statistics
    /// together with the attached probe — the traced counterpart of
    /// [`finish`](Self::finish).
    #[must_use]
    pub fn finish_with_probe(mut self) -> (SimStats, P) {
        self.close_round();
        (self.stats, self.probe)
    }

    /// Changes the per-link capacity from the next admission on — the
    /// fault-injection hook for mid-run dilation shifts (a dilated link
    /// bank coming online, or degrading to fewer circuits per link).
    /// Circuits already admitted this round are not re-evaluated.
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    pub fn set_dilation(&mut self, dilation: u32) {
        assert!(dilation >= 1, "links need capacity >= 1");
        self.dilation = dilation;
    }

    /// Current per-link capacity.
    #[must_use]
    pub fn dilation(&self) -> u32 {
        self.dilation
    }

    /// Number of vertices of the simulated topology.
    #[must_use]
    pub fn num_vertices(&self) -> u64 {
        self.index.num_vertices()
    }

    /// Starts a new time unit: all **round-scoped** circuits from the
    /// previous round are torn down (only the links actually used are
    /// reset), while circuits held by active flows
    /// ([`request_flow`](Self::request_flow)) keep their links occupied.
    /// Without flows this is exactly the pre-flow behavior: every link
    /// resets to zero.
    pub fn begin_round(&mut self) {
        if self.round_open {
            self.close_round();
        }
        if self.held.is_empty() {
            for &id in &self.dirty {
                self.usage[id as usize] = 0;
            }
        } else {
            // Round reset tears down transients only: usage falls back
            // to the held base load, not to zero.
            for &id in &self.dirty {
                self.usage[id as usize] = self.held[id as usize];
            }
        }
        self.dirty.clear();
        self.round_peak = 0;
        self.round_max_hops = 0;
        self.round_open = true;
        if P::ENABLED {
            let round = self.round_index;
            self.probe.on_round_begin(round);
        }
        self.round_index += 1;
    }

    /// Finishes the current round, folding its counters into the stats.
    pub fn close_round(&mut self) {
        if self.round_open {
            self.stats.rounds += 1;
            self.stats.peak_link_load = self.stats.peak_link_load.max(self.round_peak);
            self.stats.sum_round_peak += u64::from(self.round_peak);
            self.stats.weighted_latency += self.round_max_hops;
            self.round_open = false;
        }
    }

    /// Commits the circuit whose link ids sit in `self.scratch.path_ids`
    /// (occupancy was already incremented by admission).
    fn commit(&mut self, hops: usize) {
        for i in 0..self.scratch.path_ids.len() {
            self.round_peak = self
                .round_peak
                .max(self.usage[self.scratch.path_ids[i] as usize]);
        }
        self.stats.established += 1;
        self.stats.total_hops += hops;
        self.round_max_hops = self.round_max_hops.max(hops as u64);
    }

    /// Circuits held on `id` by active flows (0 when the flow layer has
    /// never been used — `held` is lazily allocated).
    #[inline]
    fn held_base(&self, id: LinkId) -> u32 {
        if self.held.is_empty() {
            0
        } else {
            self.held[id as usize]
        }
    }

    /// Whether `id` is usable for routing right now: admitted by the
    /// topology's own damage overlay **and** not failed in the engine's
    /// dynamic overlay. Every search and path check goes through this;
    /// the `dyn_faults == 0` fast path keeps churn-free runs at exactly
    /// the static-overlay cost.
    #[inline]
    fn link_live(&self, id: LinkId) -> bool {
        if self.net.link_blocked(id) {
            return false;
        }
        if self.dyn_faults == 0 {
            return true;
        }
        self.dyn_dead[(id >> 6) as usize] & (1u64 << (id & 63)) == 0
    }

    /// Fails the link `{u, v}` **while the simulation runs**: from this
    /// instant no search or path check admits it. Occupancy already on
    /// the link — held flows, this round's transients — is *not* touched;
    /// the returned handles (flows whose route crosses the link, in
    /// ascending slot order — deterministic) let the caller decide each
    /// circuit's fate: [`teardown_flow`](Self::teardown_flow),
    /// [`reroute_flow`](Self::reroute_flow), or deliberately carrying the
    /// flow across the outage.
    ///
    /// # Panics
    /// Panics if `{u, v}` is not a live edge (unknown, masked by the
    /// topology's own overlay, or already failed dynamically) — callers
    /// draw failures from a live-edge set, so a dead draw is a bug.
    pub fn fail_link(&mut self, u: Vertex, v: Vertex) -> Vec<FlowId> {
        let id = self
            .net
            .link_id(u, v)
            .filter(|&id| !self.net.link_blocked(id))
            .expect("fail_link on a non-edge or overlay-dead link");
        if self.dyn_dead.is_empty() {
            self.dyn_dead = vec![0u64; self.usage.len().div_ceil(64)];
        }
        let word = (id >> 6) as usize;
        let bit = 1u64 << (id & 63);
        assert_eq!(
            self.dyn_dead[word] & bit,
            0,
            "fail_link on an already-failed link"
        );
        self.dyn_dead[word] |= bit;
        self.dyn_faults += 1;
        let mut affected = Vec::new();
        for (slot, s) in self.flow_slots.iter().enumerate() {
            if let Some(rec) = &s.record {
                if rec.links.contains(&id) {
                    affected.push(FlowId {
                        slot: u32::try_from(slot).expect("flow count fits u32"),
                        gen: s.gen,
                    });
                }
            }
        }
        affected
    }

    /// Repairs a link failed by [`fail_link`](Self::fail_link): the
    /// dynamic overlay sheds the damage bit incrementally (no re-freeze,
    /// no scratch invalidation) and the link is routable from the next
    /// search on. Held occupancy was never cleared by the failure, so no
    /// state needs rebuilding.
    ///
    /// # Panics
    /// Panics if `{u, v}` is not currently failed dynamically.
    pub fn repair_link(&mut self, u: Vertex, v: Vertex) {
        let id = self.net.link_id(u, v).expect("repair_link on a non-edge");
        let word = (id >> 6) as usize;
        let bit = 1u64 << (id & 63);
        assert!(
            !self.dyn_dead.is_empty() && self.dyn_dead[word] & bit != 0,
            "repair_link on a link that is not failed"
        );
        self.dyn_dead[word] &= !bit;
        self.dyn_faults -= 1;
    }

    /// Links currently failed in the dynamic overlay.
    #[must_use]
    pub fn failed_links(&self) -> usize {
        self.dyn_faults
    }

    /// Increments occupancy for one link; returns `false` (over capacity)
    /// without recording when the link is already saturated. A link joins
    /// the dirty list the first time its usage rises above the held base
    /// load (so round reset can restore exactly that base).
    fn try_occupy(&mut self, id: LinkId) -> bool {
        let base = self.held_base(id);
        let slot = &mut self.usage[id as usize];
        if *slot >= self.dilation {
            return false;
        }
        *slot += 1;
        if *slot == base + 1 {
            self.dirty.push(id);
        }
        true
    }

    /// Requests a circuit along an explicit path.
    ///
    /// # Panics
    /// Panics if called outside a round.
    pub fn request_path(&mut self, path: &[Vertex]) -> Outcome {
        assert!(self.round_open, "begin_round first");
        assert!(path.len() >= 2, "a circuit needs two endpoints");
        if P::ENABLED {
            self.scratch.reject_link = None;
        }
        let outcome = 'admit: {
            self.scratch.path_ids.clear();
            for w in path.windows(2) {
                // Live-edge test: an edge the topology's rule (or frozen
                // table) admits and no damage overlay — static or
                // dynamic — masks.
                match self.net.link_id(w[0], w[1]) {
                    Some(id) if self.link_live(id) => self.scratch.path_ids.push(id),
                    _ => {
                        self.stats.blocked += 1;
                        break 'admit Outcome::Blocked(BlockReason::NotAnEdge((w[0], w[1])));
                    }
                }
            }
            // Tentatively occupy hop by hop so per-path multiplicity
            // counts toward capacity too; roll back on the first
            // saturated link.
            let mut blocked_at = None;
            for k in 0..self.scratch.path_ids.len() {
                if !self.try_occupy(self.scratch.path_ids[k]) {
                    blocked_at = Some(k);
                    break;
                }
            }
            if let Some(k) = blocked_at {
                for i in 0..k {
                    self.usage[self.scratch.path_ids[i] as usize] -= 1;
                }
                if P::ENABLED {
                    self.scratch.reject_link = Some(self.scratch.path_ids[k]);
                }
                self.stats.blocked += 1;
                break 'admit Outcome::Blocked(BlockReason::Saturated);
            }
            self.commit(path.len() - 1);
            Outcome::Established(path.to_vec())
        };
        if P::ENABLED {
            self.emit_request(path[0], path[path.len() - 1], &outcome, None);
        }
        outcome
    }

    /// Requests a circuit from `src` to `dst`, adaptively routed along a
    /// shortest path that avoids saturated links, with at most `max_len`
    /// hops. Dispatches to [`RouteSearch::AStarCube`] on cube-labeled
    /// topologies and [`RouteSearch::Bidirectional`] otherwise.
    ///
    /// # Panics
    /// Panics if called outside a round, if `src == dst`, or if either
    /// endpoint is out of range for the topology.
    pub fn request(&mut self, src: Vertex, dst: Vertex, max_len: u32) -> Outcome {
        let search = if self.use_cube_metric {
            RouteSearch::AStarCube
        } else {
            RouteSearch::Bidirectional
        };
        self.request_with(search, src, dst, max_len)
    }

    /// Requests a **flow**: a circuit that, once admitted, holds every
    /// link of its route across round boundaries until
    /// [`release_flow`](Self::release_flow) tears it down. Admission is
    /// exactly [`request`](Self::request) — same adaptive search, same
    /// capacity rules, same [`SimStats`] accounting (a flow is one
    /// established circuit) — plus promotion of the route's links into
    /// the engine's held base load, which
    /// [`begin_round`](Self::begin_round) restores instead of zero.
    ///
    /// # Panics
    /// Panics if called outside a round, if `src == dst`, or if either
    /// endpoint is out of range (as [`request`](Self::request)).
    pub fn request_flow(&mut self, src: Vertex, dst: Vertex, max_len: u32) -> FlowOutcome {
        match self.request(src, dst, max_len) {
            Outcome::Established(path) => {
                // Admission left the route's link ids in the scratch;
                // promote them into the held base load.
                let links = self.scratch.path_ids.clone();
                let hops = u32::try_from(path.len() - 1).expect("route length fits u32");
                let (flow, _) = self.open_flow(FlowRecord { links, src, dst });
                if P::ENABLED {
                    self.probe.on_flow_established(flow.slot, hops);
                }
                FlowOutcome::Established { flow, hops }
            }
            Outcome::Blocked(reason) => FlowOutcome::Blocked(reason),
        }
    }

    /// Promotes `rec.links` into the held base load and slots the record
    /// into the slab (recycling a free slot when one exists). Returns the
    /// generation-stamped handle and the route length.
    fn open_flow(&mut self, rec: FlowRecord) -> (FlowId, u32) {
        if self.held.is_empty() {
            self.held = vec![0; self.usage.len()];
        }
        for &id in &rec.links {
            self.held[id as usize] += 1;
        }
        let hops = u32::try_from(rec.links.len()).expect("route length fits u32");
        self.held_link_hops += u64::from(hops);
        self.active_flows += 1;
        let slot = match self.free_flows.pop() {
            Some(s) => {
                self.flow_slots[s as usize].record = Some(rec);
                s
            }
            None => {
                self.flow_slots.push(FlowSlot {
                    gen: 0,
                    record: Some(rec),
                });
                u32::try_from(self.flow_slots.len() - 1).expect("flow count fits u32")
            }
        };
        let gen = self.flow_slots[slot as usize].gen;
        (FlowId { slot, gen }, hops)
    }

    /// Shared close path for release / teardown / preemption: validates
    /// the generation-stamped handle, sheds the route's held occupancy
    /// **immediately**, recycles the slot, and bumps its generation so
    /// the handle (and any copies of it) goes stale.
    fn close_flow(&mut self, flow: FlowId, what: &str) -> FlowRecord {
        let slot = self
            .flow_slots
            .get_mut(flow.slot as usize)
            .filter(|s| s.gen == flow.gen);
        let rec = match slot.and_then(|s| {
            let rec = s.record.take();
            if rec.is_some() {
                s.gen += 1;
            }
            rec
        }) {
            Some(rec) => rec,
            None => panic!("{what} of an unknown or already-released flow"),
        };
        for &id in &rec.links {
            self.held[id as usize] -= 1;
            self.usage[id as usize] -= 1;
        }
        self.held_link_hops -= rec.links.len() as u64;
        self.active_flows -= 1;
        self.free_flows.push(flow.slot);
        rec
    }

    /// Releases an active flow: every link of its route sheds one held
    /// circuit **immediately** (current-round requests admitted after the
    /// release already see the freed capacity), and the handle's slab
    /// slot is recycled. Valid inside or between rounds.
    ///
    /// # Panics
    /// Panics on a stale or already-released handle.
    pub fn release_flow(&mut self, flow: FlowId) {
        let rec = self.close_flow(flow, "release");
        if P::ENABLED {
            let hops = u32::try_from(rec.links.len()).expect("route length fits u32");
            self.probe.on_flow_released(flow.slot, hops);
        }
    }

    /// Tears down an active flow because a fault (not its own departure)
    /// killed it — release mechanics, separate probe event, so traces and
    /// audits distinguish a clean close from a casualty. Returns the
    /// released route length.
    ///
    /// # Panics
    /// Panics on a stale or already-released handle.
    pub fn teardown_flow(&mut self, flow: FlowId) -> u32 {
        let rec = self.close_flow(flow, "teardown");
        let hops = u32::try_from(rec.links.len()).expect("route length fits u32");
        if P::ENABLED {
            self.probe.on_flow_torn_down(flow.slot, hops);
        }
        hops
    }

    /// Evicts an active flow to make room for a higher class — release
    /// mechanics, separate probe event. Returns the released route
    /// length.
    ///
    /// # Panics
    /// Panics on a stale or already-released handle.
    pub fn preempt_flow(&mut self, flow: FlowId) -> u32 {
        let rec = self.close_flow(flow, "preemption");
        let hops = u32::try_from(rec.links.len()).expect("route length fits u32");
        if P::ENABLED {
            self.probe.on_flow_preempted(flow.slot, hops);
        }
        hops
    }

    /// Re-routes an active flow in place: frees its current route, then
    /// runs a normal adaptive [`request`](Self::request) between the
    /// flow's recorded endpoints (the freed capacity — the surviving part
    /// of the old route included — is available to the search). On
    /// success the flow keeps its handle and holds the new route; on
    /// failure it is torn down and the handle goes stale. Either way the
    /// internal request is ordinary [`SimStats`] traffic (one established
    /// or blocked circuit attempt).
    ///
    /// # Panics
    /// Panics outside a round, or on a stale / already-released handle.
    pub fn reroute_flow(&mut self, flow: FlowId, max_len: u32) -> RerouteOutcome {
        assert!(self.round_open, "begin_round first");
        let slot = self
            .flow_slots
            .get_mut(flow.slot as usize)
            .filter(|s| s.gen == flow.gen);
        let rec = match slot.and_then(|s| s.record.take()) {
            Some(rec) => rec,
            None => panic!("reroute of an unknown or already-released flow"),
        };
        // Shed the old route before searching: the replacement may keep
        // any surviving links of the old one.
        for &id in &rec.links {
            self.held[id as usize] -= 1;
            self.usage[id as usize] -= 1;
        }
        let old_hops = u32::try_from(rec.links.len()).expect("route length fits u32");
        self.held_link_hops -= u64::from(old_hops);
        match self.request(rec.src, rec.dst, max_len) {
            Outcome::Established(path) => {
                let links = self.scratch.path_ids.clone();
                for &id in &links {
                    self.held[id as usize] += 1;
                }
                let new_hops = u32::try_from(path.len() - 1).expect("route length fits u32");
                self.held_link_hops += u64::from(new_hops);
                self.flow_slots[flow.slot as usize].record = Some(FlowRecord {
                    links,
                    src: rec.src,
                    dst: rec.dst,
                });
                if P::ENABLED {
                    self.probe.on_flow_rerouted(flow.slot, old_hops, new_hops);
                }
                RerouteOutcome::Rerouted { hops: new_hops }
            }
            Outcome::Blocked(reason) => {
                self.flow_slots[flow.slot as usize].gen += 1;
                self.active_flows -= 1;
                self.free_flows.push(flow.slot);
                if P::ENABLED {
                    self.probe.on_flow_torn_down(flow.slot, old_hops);
                }
                RerouteOutcome::TornDown(reason)
            }
        }
    }

    /// Whether `flow` still points at a live flow — `false` once the
    /// handle's flow was released, torn down, preempted, or lost its
    /// route in a failed reroute (stale handles never alias the slot's
    /// next occupant: every close bumps the slot's generation). The
    /// departure-scheduling seam: drivers holding future release
    /// schedules check here instead of releasing blindly.
    #[must_use]
    pub fn is_flow_active(&self, flow: FlowId) -> bool {
        self.flow_slots
            .get(flow.slot as usize)
            .is_some_and(|s| s.gen == flow.gen && s.record.is_some())
    }

    /// Number of currently active (admitted, unreleased) flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.active_flows
    }

    /// Total links currently held by active flows — the engine's
    /// occupancy gauge (each flow contributes its hop count).
    #[must_use]
    pub fn held_link_hops(&self) -> u64 {
        self.held_link_hops
    }

    /// [`request`](Self::request) with an explicit search strategy — the
    /// seam the property tests (and benchmarks) use to compare the
    /// searches on identical engine state. All strategies return routes
    /// of identical length (or agree no route exists); tie-breaks between
    /// equally short routes may differ.
    ///
    /// Blocked requests distinguish [`BlockReason::Saturated`] from
    /// [`BlockReason::NoRoute`]: the new searches report `Saturated` iff
    /// the failed search skipped at least one live link for lack of
    /// capacity; the legacy unidirectional search keeps its historical
    /// rule (`Saturated` iff it scanned a vertex with a live link into
    /// `dst`). The two rules agree on capacity-free networks and in the
    /// saturated-hot-spot steady state, but may label exotic mid-network
    /// cuts differently.
    ///
    /// # Panics
    /// Panics if called outside a round, if `src == dst`, if either
    /// endpoint is out of range, or if [`RouteSearch::AStarCube`] is
    /// requested on a topology that is not
    /// [`cube_labeled`](NetTopology::cube_labeled).
    pub fn request_with(
        &mut self,
        search: RouteSearch,
        src: Vertex,
        dst: Vertex,
        max_len: u32,
    ) -> Outcome {
        assert!(self.round_open, "begin_round first");
        assert_ne!(src, dst, "self-circuit");
        let n = self.index.num_vertices();
        assert!(
            src < n && dst < n,
            "request endpoints ({src}, {dst}) out of range for {n} vertices"
        );
        // The search itself lives in `router` and is a pure function of
        // the view + scratch; this wrapper owns the effects (occupancy,
        // stats, probe) so serial admission stays byte-identical to the
        // pre-extraction engine.
        let view = RouteView {
            net: self.net,
            usage: &self.usage,
            dilation: self.dilation,
            dyn_dead: &self.dyn_dead,
            dyn_faults: self.dyn_faults,
        };
        let result = search_route::<T, P>(&view, &mut self.scratch, search, src, dst, max_len);
        let outcome = match result {
            SearchOutcome::Found(path) => {
                // A BFS/A* path is simple, so each link appears once:
                // capacity was already checked during the search and
                // occupation cannot fail.
                for i in 0..self.scratch.path_ids.len() {
                    let id = self.scratch.path_ids[i];
                    let occupied = self.try_occupy(id);
                    debug_assert!(occupied, "search admitted a saturated link");
                }
                self.commit(path.len() - 1);
                Outcome::Established(path)
            }
            SearchOutcome::Blocked(reason) => {
                self.stats.blocked += 1;
                Outcome::Blocked(reason)
            }
        };
        if P::ENABLED {
            let stats = SearchStats {
                strategy: search,
                nodes_expanded: self.scratch.expanded,
                frontier_peak: self.scratch.frontier_peak,
            };
            self.emit_request(src, dst, &outcome, Some(stats));
        }
        outcome
    }

    /// Builds and fires the [`RequestProbe`] for one concluded admission
    /// decision (only reached when `P::ENABLED`).
    fn emit_request(
        &mut self,
        src: Vertex,
        dst: Vertex,
        outcome: &Outcome,
        search: Option<SearchStats>,
    ) {
        let (hops, reason) = match outcome {
            Outcome::Established(p) => (
                Some(u32::try_from(p.len() - 1).expect("route length fits u32")),
                None,
            ),
            Outcome::Blocked(r) => (None, Some(r)),
        };
        let req = RequestProbe {
            src,
            dst,
            hops,
            reason,
            // The search scratch remembers any saturated link it skipped;
            // attribution only makes sense when the request was denied.
            rejecting_link: reason.and(self.scratch.reject_link),
            search,
        };
        // analyze:allow(probe_ungated): helper invoked from gated sites only — both callers sit under `if P::ENABLED`
        self.probe.on_request(&req);
    }

    /// Accumulated statistics (folds in the open round).
    #[must_use]
    pub fn finish(mut self) -> SimStats {
        self.close_round();
        self.stats
    }

    /// Closes the open round (if any), returns the statistics
    /// accumulated since construction or the last `take_stats`, and
    /// resets the counters — leaving the engine ready for the next
    /// independent measurement window **without reallocating** its
    /// occupancy vector or search scratch. Callers that simulate many
    /// rounds/windows over one topology (benchmark loops, Monte Carlo
    /// drivers) should construct one engine and drain it with this
    /// instead of paying a construction (multi-megabyte allocation +
    /// zeroing at `n = 20`) per window; the results are identical —
    /// every piece of round state is already reset by `begin_round`.
    #[must_use]
    pub fn take_stats(&mut self) -> SimStats {
        self.close_round();
        std::mem::take(&mut self.stats)
    }

    /// Visits every link with nonzero occupancy as a normalized
    /// `(u, v, circuits)` triple (`u < v`, ascending `u`), read straight
    /// off the flat occupancy vector — the borrowed counterpart of
    /// [`usage_snapshot`](Self::usage_snapshot) for assertion loops that
    /// don't want an owned map rebuilt per call.
    pub fn for_each_usage(&self, mut f: impl FnMut(Vertex, Vertex, u32)) {
        for u in 0..self.index.num_vertices() {
            self.net.for_each_link(u, |v, id| {
                if v > u {
                    let load = self.usage[id as usize];
                    if load > 0 {
                        f(u, v, load);
                    }
                }
                true
            });
        }
    }

    /// Current per-link usage snapshot (normalized edge → circuits),
    /// reconstructed from the flat occupancy vector by walking the
    /// topology (works identically over frozen-table and implicit
    /// indexes). Diagnostic / cross-check API — not on the hot path;
    /// callers that only iterate should prefer the borrowed
    /// [`for_each_usage`](Self::for_each_usage).
    #[must_use]
    pub fn usage_snapshot(&self) -> HashMap<(Vertex, Vertex), u32> {
        let mut map = HashMap::new();
        self.for_each_usage(|u, v, load| {
            map.insert((u, v), load);
        });
        map
    }

    /// **Propose phase** of batched admission: routes `req` against the
    /// committed occupancy/fault state exactly as
    /// [`request`](Self::request) would (same auto-dispatched search,
    /// same block reasons) but **commits nothing** — no occupancy, no
    /// stats, no probe events. Takes `&self` plus caller-owned
    /// [`SearchScratch`], so any number of propose calls may run
    /// concurrently on worker threads against one shared engine
    /// reference; the result is a pure function of `(committed state,
    /// request)`, independent of thread schedule.
    ///
    /// # Panics
    /// Panics if called outside a round, if `req.src == req.dst`, or if
    /// either endpoint is out of range (as [`request`](Self::request)).
    #[must_use]
    pub fn propose(&self, scratch: &mut SearchScratch, req: &BatchRequest) -> Proposal {
        assert!(self.round_open, "begin_round first");
        assert_ne!(req.src, req.dst, "self-circuit");
        let n = self.index.num_vertices();
        assert!(
            req.src < n && req.dst < n,
            "request endpoints ({}, {}) out of range for {n} vertices",
            req.src,
            req.dst
        );
        let search = if self.use_cube_metric {
            RouteSearch::AStarCube
        } else {
            RouteSearch::Bidirectional
        };
        let view = RouteView {
            net: self.net,
            usage: &self.usage,
            dilation: self.dilation,
            dyn_dead: &self.dyn_dead,
            dyn_faults: self.dyn_faults,
        };
        let result = search_route::<T, P>(&view, scratch, search, req.src, req.dst, req.max_len);
        let (route, reason) = match result {
            SearchOutcome::Found(path) => (Some((path, scratch.path_ids.clone())), None),
            SearchOutcome::Blocked(reason) => (None, Some(reason)),
        };
        Proposal {
            src: req.src,
            dst: req.dst,
            route,
            reason,
            search,
            expanded: scratch.expanded,
            frontier_peak: scratch.frontier_peak,
            reject_link: scratch.reject_link,
        }
    }

    /// **Commit phase** of batched admission. Must be called serially,
    /// in request sequence order, for every proposal of a wave:
    ///
    /// * a proposal blocked at propose time is accounted (stats + probe)
    ///   exactly like a serial blocked [`request`](Self::request) — the
    ///   block is final because capacity only shrinks within a round;
    /// * a routed proposal whose links all still have capacity occupies
    ///   them and is accounted exactly like a serial admission;
    /// * a routed proposal that lost capacity to an earlier-sequenced
    ///   commit rolls back cleanly, fires
    ///   [`on_batch_conflict`](EngineProbe::on_batch_conflict) (stamped
    ///   with `wave`), and returns [`CommitOutcome::Conflict`] — the
    ///   request stays pending and re-proposes next wave.
    ///
    /// # Panics
    /// Panics if called outside a round.
    pub fn commit_proposal(&mut self, wave: u32, prop: &Proposal) -> CommitOutcome {
        assert!(self.round_open, "begin_round first");
        let Some((path, links)) = &prop.route else {
            let reason = prop
                .reason
                .clone()
                .expect("unrouted proposal carries a block reason");
            self.stats.blocked += 1;
            if P::ENABLED {
                self.emit_proposal(prop, None);
            }
            return CommitOutcome::Blocked(reason);
        };
        // Tentatively occupy in route order; an earlier commit this
        // round may have saturated any link, so occupation can fail
        // here (unlike serial admission, where the search just checked).
        let mut blocked_at = None;
        for (k, &id) in links.iter().enumerate() {
            if !self.try_occupy(id) {
                blocked_at = Some(k);
                break;
            }
        }
        if let Some(k) = blocked_at {
            for &id in &links[..k] {
                self.usage[id as usize] -= 1;
            }
            if P::ENABLED {
                self.probe.on_batch_conflict(wave, prop.src, prop.dst);
            }
            return CommitOutcome::Conflict;
        }
        for &id in links {
            self.round_peak = self.round_peak.max(self.usage[id as usize]);
        }
        let hops = path.len() - 1;
        debug_assert_eq!(hops, links.len());
        self.stats.established += 1;
        self.stats.total_hops += hops;
        self.round_max_hops = self.round_max_hops.max(hops as u64);
        let hops = u32::try_from(hops).expect("route length fits u32");
        if P::ENABLED {
            self.emit_proposal(prop, Some(hops));
        }
        CommitOutcome::Established { hops }
    }

    /// [`commit_proposal`](Self::commit_proposal) for **flow** requests:
    /// an established commit additionally promotes the route into the
    /// held base load and returns the generation-checked handle, with
    /// stats and probe events identical to a serial
    /// [`request_flow`](Self::request_flow) admission.
    ///
    /// # Panics
    /// Panics if called outside a round.
    pub fn commit_proposal_flow(&mut self, wave: u32, prop: &Proposal) -> FlowCommitOutcome {
        match self.commit_proposal(wave, prop) {
            CommitOutcome::Conflict => FlowCommitOutcome::Conflict,
            CommitOutcome::Blocked(reason) => FlowCommitOutcome::Blocked(reason),
            CommitOutcome::Established { hops } => {
                let links = prop
                    .route
                    .as_ref()
                    .expect("established proposal has a route")
                    .1
                    .clone();
                let (flow, _) = self.open_flow(FlowRecord {
                    links,
                    src: prop.src,
                    dst: prop.dst,
                });
                if P::ENABLED {
                    self.probe.on_flow_established(flow.slot, hops);
                }
                FlowCommitOutcome::Established { flow, hops }
            }
        }
    }

    /// Builds and fires the [`RequestProbe`] for one concluded batched
    /// commit — the proposal carries the search-effort counters its
    /// propose-phase scratch recorded, so the emitted event is
    /// byte-identical to the serial engine's (only reached when
    /// `P::ENABLED`).
    fn emit_proposal(&mut self, prop: &Proposal, hops: Option<u32>) {
        let reason = if hops.is_some() {
            None
        } else {
            prop.reason.as_ref()
        };
        let req = RequestProbe {
            src: prop.src,
            dst: prop.dst,
            hops,
            reason,
            // Attribution only makes sense when the request was denied.
            rejecting_link: reason.and(prop.reject_link),
            search: Some(SearchStats {
                strategy: prop.search,
                nodes_expanded: prop.expanded,
                frontier_peak: prop.frontier_peak,
            }),
        };
        // analyze:allow(probe_ungated): helper invoked from gated sites only — both commit callers sit under `if P::ENABLED`
        self.probe.on_request(&req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MaterializedNet;
    use shc_graph::builders::{cycle, star};

    #[test]
    fn fixed_path_capacity_one() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        // Edge {0,2} now saturated: a second circuit through it blocks.
        assert_eq!(
            sim.request_path(&[3, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        // Different spokes are free.
        assert!(sim.request_path(&[3, 0, 4]).is_established());
        let stats = sim.finish();
        assert_eq!(stats.established, 2);
        assert_eq!(stats.blocked, 1);
        assert_eq!(stats.peak_link_load, 1);
        assert!((stats.blocking_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dilation_two_allows_sharing() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(
            sim.request_path(&[3, 0, 2]).is_established(),
            "dilated link"
        );
        assert_eq!(
            sim.request_path(&[4, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        let stats = sim.finish();
        assert_eq!(stats.peak_link_load, 2);
    }

    #[test]
    fn rounds_reset_capacity() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[0, 1]).is_established());
        assert_eq!(
            sim.request_path(&[1, 0]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        sim.begin_round();
        assert!(sim.request_path(&[1, 0]).is_established(), "fresh round");
        let stats = sim.finish();
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn adaptive_routes_around_congestion() {
        // C_4: 0-1-2-3-0. Occupy edge {0,1}; a request 0 -> 1 must route
        // the long way (0-3-2-1) when allowed.
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[0, 1]).is_established());
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
        // With the detour also occupied, a third request blocks.
        assert!(!sim.request(0, 1, 3).is_established());
    }

    #[test]
    fn adaptive_respects_length_bound() {
        let net = MaterializedNet::new(cycle(8));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        // Distance 0 -> 4 is 4; bound 3 cannot route.
        assert_eq!(sim.request(0, 4, 3), Outcome::Blocked(BlockReason::NoRoute));
        assert!(sim.request(0, 4, 4).is_established());
    }

    #[test]
    fn invalid_path_blocks() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[0, 2]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 2)))
        );
    }

    #[test]
    fn out_of_range_path_hop_blocks_cleanly() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        // A hop with an out-of-range endpoint is NotAnEdge, not a panic.
        assert_eq!(
            sim.request_path(&[0, 17]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 17)))
        );
        let stats = sim.finish();
        assert_eq!(stats.blocked, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_adaptive_request_panics_clearly() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let _ = sim.request(0, 17, 3);
    }

    #[test]
    fn stats_mean_hops() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        sim.request_path(&[0, 1]);
        sim.request_path(&[2, 3, 4]);
        let stats = sim.finish();
        assert!((stats.mean_hops() - 1.5).abs() < 1e-12);
        assert_eq!(stats.rounds, 1);
        assert!((stats.mean_round_peak() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "begin_round")]
    fn request_outside_round_panics() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        let _ = sim.request_path(&[0, 1]);
    }

    #[test]
    fn mid_run_dilation_shift() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        assert_eq!(sim.dilation(), 1);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(!sim.request_path(&[3, 0, 2]).is_established());
        // The link bank widens mid-run: the same contention now fits.
        sim.set_dilation(2);
        assert!(sim.request_path(&[3, 0, 2]).is_established());
        sim.begin_round();
        // And narrows again: back to single-circuit links.
        sim.set_dilation(1);
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(!sim.request_path(&[3, 0, 2]).is_established());
        let stats = sim.finish();
        assert_eq!(stats.established, 3);
        assert_eq!(stats.blocked, 2);
    }

    #[test]
    fn rolled_back_admission_leaves_no_occupancy() {
        // Path [1,0,2,0]? not simple — use per-path multiplicity instead:
        // a walk crossing the same star hub edge twice at dilation 1 must
        // roll back fully, leaving both edges free.
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[1, 0, 2, 0, 1]),
            Outcome::Blocked(BlockReason::Saturated),
            "walk reuses {{0,1}} beyond capacity"
        );
        assert!(sim.usage_snapshot().is_empty(), "rollback left residue");
        assert!(sim.request_path(&[1, 0, 2]).is_established());
    }

    #[test]
    fn take_stats_resets_and_reuses_without_reallocation() {
        let net = MaterializedNet::new(cycle(6));
        let mut reused = Engine::new(&net, 1);
        let mut windows = Vec::new();
        for _ in 0..3 {
            reused.begin_round();
            assert!(reused.request_path(&[0, 1, 2]).is_established());
            assert!(!reused.request_path(&[1, 2]).is_established());
            reused.begin_round();
            assert!(reused.request(3, 5, 3).is_established());
            windows.push(reused.take_stats());
        }
        // Every window is independent and identical to a fresh engine.
        let mut fresh = Engine::new(&net, 1);
        fresh.begin_round();
        assert!(fresh.request_path(&[0, 1, 2]).is_established());
        assert!(!fresh.request_path(&[1, 2]).is_established());
        fresh.begin_round();
        assert!(fresh.request(3, 5, 3).is_established());
        let expect = fresh.finish();
        for w in &windows {
            assert_eq!(w, &expect, "reused engine must match fresh engine");
        }
        assert_eq!(expect.rounds, 2);
    }

    #[test]
    fn snapshot_reports_normalized_loads() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        assert!(sim.request_path(&[2, 1, 0]).is_established());
        assert!(sim.request_path(&[1, 0]).is_established());
        let snap = sim.usage_snapshot();
        assert_eq!(snap.get(&(0, 1)), Some(&2));
        assert_eq!(snap.get(&(1, 2)), Some(&1));
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn astar_routes_along_the_cube_metric() {
        use shc_graph::builders::hypercube;
        let net = MaterializedNet::new(hypercube(6));
        assert!(net.cube_labeled());
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        for (src, dst) in [(0u64, 63u64), (5, 40), (17, 18)] {
            match sim.request_with(RouteSearch::AStarCube, src, dst, 8) {
                Outcome::Established(p) => {
                    assert_eq!(p.len() as u32 - 1, (src ^ dst).count_ones());
                    for w in p.windows(2) {
                        assert_eq!((w[0] ^ w[1]).count_ones(), 1);
                    }
                }
                other => panic!("clean cube blocked: {other:?}"),
            }
            sim.begin_round();
        }
    }

    #[test]
    fn all_strategies_find_equal_length_detours() {
        use shc_graph::builders::hypercube;
        let net = MaterializedNet::new(hypercube(4));
        for strategy in [
            RouteSearch::Unidirectional,
            RouteSearch::Bidirectional,
            RouteSearch::AStarCube,
        ] {
            let mut sim = Engine::new(&net, 1);
            sim.begin_round();
            // Saturate the direct edge {0, 1}; the detour costs 3 hops.
            assert!(sim.request_path(&[0, 1]).is_established());
            match sim.request_with(strategy, 0, 1, 4) {
                Outcome::Established(p) => {
                    assert_eq!(p.len(), 4, "{strategy:?}: shortest detour has 3 hops");
                }
                other => panic!("{strategy:?}: expected detour, got {other:?}"),
            }
        }
    }

    #[test]
    fn saturated_hot_spot_rejects_without_flooding() {
        use shc_graph::builders::hypercube;
        let net = MaterializedNet::new(hypercube(4));
        for strategy in [RouteSearch::Bidirectional, RouteSearch::AStarCube] {
            let mut sim = Engine::new(&net, 1);
            sim.begin_round();
            // Occupy every link into vertex 0 (its 4 cube neighbors).
            for d in 0..4u64 {
                assert!(sim.request_path(&[1 << d, 0]).is_established());
            }
            // The endpoint guard sees the wall: Saturated, not NoRoute.
            assert_eq!(
                sim.request_with(strategy, 15, 0, 6),
                Outcome::Blocked(BlockReason::Saturated),
                "{strategy:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "without cube labels")]
    fn astar_on_non_cube_labels_panics() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let _ = sim.request_with(RouteSearch::AStarCube, 0, 3, 6);
    }

    #[test]
    fn auto_dispatch_matches_topology_labeling() {
        use shc_graph::builders::hypercube;
        // Cube-labeled: request() runs A*; non-cube: bidirectional. Both
        // observable only through identical outcomes, so just pin the
        // routability and length behavior on each.
        let cube = MaterializedNet::new(hypercube(3));
        let mut sim = Engine::new(&cube, 1);
        sim.begin_round();
        match sim.request(0, 7, 5) {
            Outcome::Established(p) => assert_eq!(p.len(), 4),
            other => panic!("{other:?}"),
        }
        let ring = MaterializedNet::new(cycle(5));
        let mut sim = Engine::new(&ring, 1);
        sim.begin_round();
        match sim.request(0, 2, 5) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 1, 2]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flows_hold_links_across_rounds() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let flow = match sim.request_flow(0, 1, 3) {
            FlowOutcome::Established { flow, hops } => {
                assert_eq!(hops, 1);
                flow
            }
            other => panic!("clean ring blocked: {other:?}"),
        };
        assert_eq!(sim.active_flows(), 1);
        assert_eq!(sim.held_link_hops(), 1);
        // Next round: the held link is still occupied — a round-scoped
        // circuit over it must detour (0-3-2-1).
        sim.begin_round();
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
        // Release mid-round: capacity frees immediately.
        sim.release_flow(flow);
        assert_eq!(sim.active_flows(), 0);
        assert_eq!(sim.held_link_hops(), 0);
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 1], "freed direct link"),
            other => panic!("release did not free capacity: {other:?}"),
        }
        let stats = sim.finish();
        assert_eq!(stats.established, 3);
    }

    #[test]
    fn released_flows_leave_no_residual_occupancy() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let mut flows = Vec::new();
        for (s, d) in [(0u64, 2u64), (3, 5)] {
            match sim.request_flow(s, d, 4) {
                FlowOutcome::Established { flow, .. } => flows.push(flow),
                other => panic!("{other:?}"),
            }
        }
        sim.begin_round();
        assert!(!sim.usage_snapshot().is_empty());
        for f in flows {
            sim.release_flow(f);
        }
        assert!(sim.usage_snapshot().is_empty(), "residual held occupancy");
        // The next round reset (dirty-list path) must not resurrect load.
        sim.begin_round();
        assert!(sim.usage_snapshot().is_empty());
        assert!(sim.request_path(&[0, 1, 2]).is_established());
    }

    #[test]
    #[should_panic(expected = "already-released")]
    fn double_release_panics() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let FlowOutcome::Established { flow, .. } = sim.request_flow(0, 1, 3) else {
            panic!("clean ring blocked");
        };
        sim.release_flow(flow);
        sim.release_flow(flow);
    }

    #[test]
    fn flow_slots_are_recycled_with_fresh_generations() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        let FlowOutcome::Established { flow: a, .. } = sim.request_flow(1, 2, 2) else {
            panic!()
        };
        sim.release_flow(a);
        let FlowOutcome::Established { flow: b, .. } = sim.request_flow(3, 4, 2) else {
            panic!()
        };
        assert_eq!(a.slot(), b.slot(), "slab recycles the freed slot");
        assert_ne!(a, b, "the recycled slot carries a new generation");
        assert!(!sim.is_flow_active(a), "stale handle reads inactive");
        assert!(sim.is_flow_active(b));
        assert_eq!(sim.active_flows(), 1);
    }

    #[test]
    fn failed_link_rejects_new_circuits_until_repair() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let affected = sim.fail_link(0, 1);
        assert!(affected.is_empty(), "no flows were up");
        assert_eq!(sim.failed_links(), 1);
        // Fixed paths treat the failed link as a dead edge …
        assert_eq!(
            sim.request_path(&[0, 1]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 1)))
        );
        // … and adaptive search routes around it.
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
        sim.repair_link(0, 1);
        assert_eq!(sim.failed_links(), 0);
        sim.begin_round();
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 1], "repaired direct link"),
            other => panic!("repair did not restore the link: {other:?}"),
        }
    }

    #[test]
    fn fail_link_names_affected_flows_in_slot_order() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 3);
        sim.begin_round();
        // Three flows over the hub edge {0, 1}; one elsewhere.
        let mut over: Vec<FlowId> = Vec::new();
        for dst in [2u64, 3, 4] {
            let FlowOutcome::Established { flow, .. } = sim.request_flow(1, dst, 2) else {
                panic!("dilated star blocked")
            };
            over.push(flow);
        }
        let FlowOutcome::Established { flow: spare, .. } = sim.request_flow(2, 3, 2) else {
            panic!("dilated star blocked")
        };
        let affected = sim.fail_link(0, 1);
        assert_eq!(affected, over, "ascending slot order, casualties only");
        assert!(!affected.contains(&spare));
        // Teardown of the casualties frees their occupancy completely.
        for f in affected {
            sim.teardown_flow(f);
        }
        sim.release_flow(spare);
        sim.begin_round();
        assert!(sim.usage_snapshot().is_empty(), "residual occupancy");
    }

    #[test]
    fn preempt_frees_capacity_for_the_next_request() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let FlowOutcome::Established { flow, .. } = sim.request_flow(0, 1, 1) else {
            panic!("clean ring blocked")
        };
        // Direct link held and the detour blocked by a max_len of 1.
        assert!(!sim.request_flow(0, 1, 1).is_established());
        assert_eq!(sim.preempt_flow(flow), 1);
        assert!(!sim.is_flow_active(flow));
        assert!(sim.request_flow(0, 1, 1).is_established(), "evicted slot");
    }

    #[test]
    fn reroute_moves_a_flow_off_a_failed_link() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let FlowOutcome::Established { flow, hops } = sim.request_flow(0, 1, 3) else {
            panic!("clean ring blocked")
        };
        assert_eq!(hops, 1);
        let affected = sim.fail_link(0, 1);
        assert_eq!(affected, vec![flow]);
        match sim.reroute_flow(flow, 3) {
            RerouteOutcome::Rerouted { hops } => assert_eq!(hops, 3, "0-3-2-1 detour"),
            other => panic!("expected reroute, got {other:?}"),
        }
        assert!(sim.is_flow_active(flow), "handle survives a reroute");
        assert_eq!(sim.held_link_hops(), 3);
        // The rerouted flow holds the whole detour: the ring is full.
        assert!(!sim.request(2, 3, 3).is_established());
        sim.release_flow(flow);
        assert!(sim.usage_snapshot().is_empty(), "residual occupancy");
    }

    #[test]
    fn failed_reroute_tears_the_flow_down() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        let FlowOutcome::Established { flow, .. } = sim.request_flow(0, 1, 3) else {
            panic!("clean ring blocked")
        };
        sim.fail_link(0, 1)
            .iter()
            .for_each(|f| assert_eq!(*f, flow));
        // Detour needs 3 hops; a budget of 1 cannot re-place the flow.
        match sim.reroute_flow(flow, 1) {
            RerouteOutcome::TornDown(BlockReason::NoRoute) => {}
            other => panic!("expected teardown, got {other:?}"),
        }
        assert!(!sim.is_flow_active(flow));
        assert_eq!(sim.active_flows(), 0);
        assert_eq!(sim.held_link_hops(), 0);
        assert!(sim.usage_snapshot().is_empty(), "residual occupancy");
    }

    #[test]
    #[should_panic(expected = "already-failed")]
    fn double_fail_panics() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.fail_link(0, 1);
        sim.fail_link(0, 1);
    }

    #[test]
    #[should_panic(expected = "not failed")]
    fn repair_of_live_link_panics() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.repair_link(0, 1);
    }

    #[test]
    fn flows_and_transients_share_capacity() {
        // Dilation 2 on the star hub edge {0,2}: one held flow + one
        // transient fill it; a third circuit blocks; after the round the
        // transient is gone but the flow still holds one slot.
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        assert!(sim.request_flow(1, 2, 2).is_established());
        assert!(sim.request_path(&[3, 0, 2]).is_established());
        assert_eq!(
            sim.request_path(&[4, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        sim.begin_round();
        // Transient torn down, held circuit persists: one slot free.
        assert!(sim.request_path(&[4, 0, 2]).is_established());
        assert_eq!(
            sim.request_path(&[3, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
    }

    #[test]
    fn engine_over_faulted_topology_blocks_dead_links() {
        use crate::topology::FaultedNet;
        let net = MaterializedNet::new(cycle(4));
        let damaged = FaultedNet::new(&net, [(0u64, 1u64)], []);
        let mut sim = Engine::new(&damaged, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[0, 1]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 1)))
        );
        // Adaptive routing detours around the failure.
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
    }
}
