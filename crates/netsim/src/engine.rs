//! The synchronous circuit-switching engine.
//!
//! Models the paper's line-communication substrate directly: in each time
//! unit a set of calls (circuits) is requested; a circuit occupies every
//! link along its path for the round; a link carries at most `dilation`
//! circuits simultaneously (`dilation = 1` is the paper's model; larger
//! values implement the §5 "multiedge / dilated network" extension).
//!
//! Two admission modes:
//! * **fixed-path** ([`Engine::request_path`]) — the caller supplies the
//!   route (used to replay validated broadcast schedules);
//! * **adaptive** ([`Engine::request`]) — the engine finds a shortest path
//!   avoiding saturated links, within a length bound.

use crate::topology::{NetTopology, Vertex};
use std::collections::{HashMap, VecDeque};

/// Why a circuit was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// A supplied path hop is not an edge.
    NotAnEdge((Vertex, Vertex)),
    /// Some link along the (only possible) route is saturated.
    Saturated,
    /// No route within the length bound exists at all.
    NoRoute,
}

/// Outcome of one circuit request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Circuit established along the contained path.
    Established(Vec<Vertex>),
    /// Circuit refused.
    Blocked(BlockReason),
}

impl Outcome {
    /// `true` when established.
    #[must_use]
    pub fn is_established(&self) -> bool {
        matches!(self, Self::Established(_))
    }
}

/// Aggregate counters over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Circuits established.
    pub established: usize,
    /// Circuits blocked.
    pub blocked: usize,
    /// Total hops across established circuits.
    pub total_hops: usize,
    /// Peak per-link occupancy observed in any round.
    pub peak_link_load: u32,
    /// Sum over rounds of the maximum per-link occupancy (for means).
    pub sum_round_peak: u64,
    /// Sum over rounds of the longest established circuit (edges) — a
    /// wormhole-style latency proxy: a round costs as long as its longest
    /// circuit takes to set up and traverse.
    pub weighted_latency: u64,
}

impl SimStats {
    /// Fraction of requests blocked.
    #[must_use]
    pub fn blocking_rate(&self) -> f64 {
        let total = self.established + self.blocked;
        if total == 0 {
            0.0
        } else {
            self.blocked as f64 / total as f64
        }
    }

    /// Mean hops per established circuit.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.established == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.established as f64
        }
    }

    /// Mean over rounds of the per-round peak link load.
    #[must_use]
    pub fn mean_round_peak(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.sum_round_peak as f64 / self.rounds as f64
        }
    }

    /// Latency per round in hop units (total weighted latency / rounds):
    /// 1.0 for a store-and-forward schedule, up to `k` for k-line calls.
    #[must_use]
    pub fn mean_round_latency(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.weighted_latency as f64 / self.rounds as f64
        }
    }
}

/// The simulator. Holds the topology by reference and per-round link
/// occupancy.
pub struct Engine<'a, T: NetTopology> {
    net: &'a T,
    dilation: u32,
    usage: HashMap<(Vertex, Vertex), u32>,
    round_peak: u32,
    round_max_hops: u64,
    stats: SimStats,
    round_open: bool,
}

fn norm(u: Vertex, v: Vertex) -> (Vertex, Vertex) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl<'a, T: NetTopology> Engine<'a, T> {
    /// Creates an engine over `net` with per-link capacity `dilation`.
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    #[must_use]
    pub fn new(net: &'a T, dilation: u32) -> Self {
        assert!(dilation >= 1, "links need capacity >= 1");
        Self {
            net,
            dilation,
            usage: HashMap::new(),
            round_peak: 0,
            round_max_hops: 0,
            stats: SimStats::default(),
            round_open: false,
        }
    }

    /// Changes the per-link capacity from the next admission on — the
    /// fault-injection hook for mid-run dilation shifts (a dilated link
    /// bank coming online, or degrading to fewer circuits per link).
    /// Circuits already admitted this round are not re-evaluated.
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    pub fn set_dilation(&mut self, dilation: u32) {
        assert!(dilation >= 1, "links need capacity >= 1");
        self.dilation = dilation;
    }

    /// Current per-link capacity.
    #[must_use]
    pub fn dilation(&self) -> u32 {
        self.dilation
    }

    /// Starts a new time unit: all circuits from the previous round are
    /// torn down.
    pub fn begin_round(&mut self) {
        if self.round_open {
            self.close_round();
        }
        self.usage.clear();
        self.round_peak = 0;
        self.round_max_hops = 0;
        self.round_open = true;
    }

    /// Finishes the current round, folding its counters into the stats.
    pub fn close_round(&mut self) {
        if self.round_open {
            self.stats.rounds += 1;
            self.stats.peak_link_load = self.stats.peak_link_load.max(self.round_peak);
            self.stats.sum_round_peak += u64::from(self.round_peak);
            self.stats.weighted_latency += self.round_max_hops;
            self.round_open = false;
        }
    }

    /// Remaining capacity of a link this round.
    fn available(&self, u: Vertex, v: Vertex) -> u32 {
        let used = self.usage.get(&norm(u, v)).copied().unwrap_or(0);
        self.dilation.saturating_sub(used)
    }

    fn occupy(&mut self, path: &[Vertex]) {
        for w in path.windows(2) {
            let e = norm(w[0], w[1]);
            let cnt = self.usage.entry(e).or_insert(0);
            *cnt += 1;
            self.round_peak = self.round_peak.max(*cnt);
        }
        self.stats.established += 1;
        self.stats.total_hops += path.len() - 1;
        self.round_max_hops = self.round_max_hops.max((path.len() - 1) as u64);
    }

    /// Requests a circuit along an explicit path.
    ///
    /// # Panics
    /// Panics if called outside a round.
    pub fn request_path(&mut self, path: &[Vertex]) -> Outcome {
        assert!(self.round_open, "begin_round first");
        assert!(path.len() >= 2, "a circuit needs two endpoints");
        for w in path.windows(2) {
            if !self.net.has_edge(w[0], w[1]) {
                self.stats.blocked += 1;
                return Outcome::Blocked(BlockReason::NotAnEdge((w[0], w[1])));
            }
        }
        // Per-path multiplicity counts toward capacity too.
        let mut need: HashMap<(Vertex, Vertex), u32> = HashMap::new();
        for w in path.windows(2) {
            *need.entry(norm(w[0], w[1])).or_insert(0) += 1;
        }
        for (&e, &cnt) in &need {
            if self.available(e.0, e.1) < cnt {
                self.stats.blocked += 1;
                return Outcome::Blocked(BlockReason::Saturated);
            }
        }
        self.occupy(path);
        Outcome::Established(path.to_vec())
    }

    /// Requests a circuit from `src` to `dst`, adaptively routed along a
    /// shortest path that avoids saturated links, with at most `max_len`
    /// hops.
    ///
    /// # Panics
    /// Panics if called outside a round or if `src == dst`.
    pub fn request(&mut self, src: Vertex, dst: Vertex, max_len: u32) -> Outcome {
        assert!(self.round_open, "begin_round first");
        assert_ne!(src, dst, "self-circuit");
        // BFS over links with spare capacity.
        let mut parent: HashMap<Vertex, Vertex> = HashMap::new();
        let mut queue: VecDeque<(Vertex, u32)> = VecDeque::new();
        parent.insert(src, src);
        queue.push_back((src, 0));
        let mut any_route_capacity_blind = false;
        while let Some((x, d)) = queue.pop_front() {
            if d == max_len {
                continue;
            }
            for y in self.net.neighbors(x) {
                if y == dst {
                    any_route_capacity_blind = true;
                }
                if parent.contains_key(&y) || self.available(x, y) == 0 {
                    continue;
                }
                parent.insert(y, x);
                if y == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    self.occupy(&path);
                    return Outcome::Established(path);
                }
                queue.push_back((y, d + 1));
            }
        }
        self.stats.blocked += 1;
        if any_route_capacity_blind {
            Outcome::Blocked(BlockReason::Saturated)
        } else {
            Outcome::Blocked(BlockReason::NoRoute)
        }
    }

    /// Accumulated statistics (folds in the open round).
    #[must_use]
    pub fn finish(mut self) -> SimStats {
        self.close_round();
        self.stats
    }

    /// Current per-link usage snapshot (normalized edge → circuits).
    #[must_use]
    pub fn usage_snapshot(&self) -> &HashMap<(Vertex, Vertex), u32> {
        &self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MaterializedNet;
    use shc_graph::builders::{cycle, star};

    #[test]
    fn fixed_path_capacity_one() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        // Edge {0,2} now saturated: a second circuit through it blocks.
        assert_eq!(
            sim.request_path(&[3, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        // Different spokes are free.
        assert!(sim.request_path(&[3, 0, 4]).is_established());
        let stats = sim.finish();
        assert_eq!(stats.established, 2);
        assert_eq!(stats.blocked, 1);
        assert_eq!(stats.peak_link_load, 1);
        assert!((stats.blocking_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dilation_two_allows_sharing() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 2);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(
            sim.request_path(&[3, 0, 2]).is_established(),
            "dilated link"
        );
        assert_eq!(
            sim.request_path(&[4, 0, 2]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        let stats = sim.finish();
        assert_eq!(stats.peak_link_load, 2);
    }

    #[test]
    fn rounds_reset_capacity() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[0, 1]).is_established());
        assert_eq!(
            sim.request_path(&[1, 0]),
            Outcome::Blocked(BlockReason::Saturated)
        );
        sim.begin_round();
        assert!(sim.request_path(&[1, 0]).is_established(), "fresh round");
        let stats = sim.finish();
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn adaptive_routes_around_congestion() {
        // C_4: 0-1-2-3-0. Occupy edge {0,1}; a request 0 -> 1 must route
        // the long way (0-3-2-1) when allowed.
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert!(sim.request_path(&[0, 1]).is_established());
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
        // With the detour also occupied, a third request blocks.
        assert!(!sim.request(0, 1, 3).is_established());
    }

    #[test]
    fn adaptive_respects_length_bound() {
        let net = MaterializedNet::new(cycle(8));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        // Distance 0 -> 4 is 4; bound 3 cannot route.
        assert_eq!(sim.request(0, 4, 3), Outcome::Blocked(BlockReason::NoRoute));
        assert!(sim.request(0, 4, 4).is_established());
    }

    #[test]
    fn invalid_path_blocks() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[0, 2]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 2)))
        );
    }

    #[test]
    fn stats_mean_hops() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::new(&net, 1);
        sim.begin_round();
        sim.request_path(&[0, 1]);
        sim.request_path(&[2, 3, 4]);
        let stats = sim.finish();
        assert!((stats.mean_hops() - 1.5).abs() < 1e-12);
        assert_eq!(stats.rounds, 1);
        assert!((stats.mean_round_peak() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "begin_round")]
    fn request_outside_round_panics() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::new(&net, 1);
        let _ = sim.request_path(&[0, 1]);
    }

    #[test]
    fn mid_run_dilation_shift() {
        let net = MaterializedNet::new(star(5));
        let mut sim = Engine::new(&net, 1);
        assert_eq!(sim.dilation(), 1);
        sim.begin_round();
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(!sim.request_path(&[3, 0, 2]).is_established());
        // The link bank widens mid-run: the same contention now fits.
        sim.set_dilation(2);
        assert!(sim.request_path(&[3, 0, 2]).is_established());
        sim.begin_round();
        // And narrows again: back to single-circuit links.
        sim.set_dilation(1);
        assert!(sim.request_path(&[1, 0, 2]).is_established());
        assert!(!sim.request_path(&[3, 0, 2]).is_established());
        let stats = sim.finish();
        assert_eq!(stats.established, 3);
        assert_eq!(stats.blocked, 2);
    }

    #[test]
    fn engine_over_faulted_topology_blocks_dead_links() {
        use crate::topology::FaultedNet;
        let net = MaterializedNet::new(cycle(4));
        let damaged = FaultedNet::new(&net, [(0u64, 1u64)], []);
        let mut sim = Engine::new(&damaged, 1);
        sim.begin_round();
        assert_eq!(
            sim.request_path(&[0, 1]),
            Outcome::Blocked(BlockReason::NotAnEdge((0, 1)))
        );
        // Adaptive routing detours around the failure.
        match sim.request(0, 1, 3) {
            Outcome::Established(p) => assert_eq!(p, vec![0, 3, 2, 1]),
            other => panic!("expected detour, got {other:?}"),
        }
    }
}
