//! The route searches, factored out of [`Engine`](crate::Engine) so they
//! can run against a **read-only view** of the occupancy/fault state with
//! **externally owned scratch**.
//!
//! This split is what makes propose-then-commit batched admission
//! (`crate::batch`) possible: N worker threads each hold their own
//! [`SearchScratch`] and route concurrently against one shared
//! [`RouteView`] snapshot, while the serial engine keeps one scratch
//! inline and behaves byte-for-byte as before the extraction. A search
//! here is a *pure function* of `(view, request)` — it never occupies
//! links, never touches statistics, and never fires a probe; the caller
//! (serial admission or the batch commit phase) owns those effects.
//!
//! All three [`RouteSearch`] strategies live here, exploration order
//! preserved verbatim from the pre-extraction engine, including the
//! epoch-stamped scratch discipline (stamp arrays are never cleared in
//! steady state; the epoch wraps safely by zero-filling).

use crate::engine::{BlockReason, RouteSearch};
use crate::links::LinkId;
use crate::probe::EngineProbe;
use crate::topology::{NetTopology, Vertex};
use shc_graph::cube::hamming_distance;
use std::collections::VecDeque;

/// Per-thread, epoch-stamped search state: visited/parent/distance arrays
/// (one set per frontier direction), the ring queues and frontier vectors,
/// the link ids of the last found route, and the probe counters of the
/// last search. One instance serves any number of sequential searches
/// without allocating in steady state; concurrent searches each need
/// their own instance (the batch layer keeps one per worker).
pub struct SearchScratch {
    /// Forward visited stamp per vertex (`== epoch` means seen).
    seen: Vec<u32>,
    /// Forward predecessor vertex per vertex.
    parent: Vec<u32>,
    /// Link id used to reach each vertex (forward).
    parent_link: Vec<LinkId>,
    /// Forward depth / A* g-value per vertex.
    dist: Vec<u32>,
    /// A* closed stamp per vertex (`== epoch` means expanded).
    done: Vec<u32>,
    /// Backward visited stamp per vertex (bidirectional BFS).
    seen_b: Vec<u32>,
    /// Backward predecessor vertex per vertex.
    parent_b: Vec<u32>,
    /// Link id used to reach each vertex (backward).
    parent_link_b: Vec<LinkId>,
    /// Backward depth per vertex.
    dist_b: Vec<u32>,
    /// Current search epoch (bumped per request by
    /// [`begin_request`](Self::begin_request)).
    epoch: u32,
    /// Unidirectional BFS ring queue of `(vertex, depth)`; also the A*
    /// bucket for the current f-value, as `(vertex, g)`.
    queue: VecDeque<(u32, u32)>,
    /// A* bucket for f + 2 (f-parity is invariant on cube labelings, so
    /// exactly two buckets are ever live).
    queue_next: VecDeque<(u32, u32)>,
    /// Bidirectional frontiers (current/next × forward/backward).
    fr_f: Vec<u32>,
    fr_f_next: Vec<u32>,
    fr_b: Vec<u32>,
    fr_b_next: Vec<u32>,
    /// Link ids of the route found by the last successful search, in the
    /// order the path reconstruction walked them.
    pub(crate) path_ids: Vec<LinkId>,
    /// Probe counter: vertices expanded by the last search.
    pub(crate) expanded: u32,
    /// Probe counter: peak frontier size of the last search.
    pub(crate) frontier_peak: u32,
    /// Probe attribution: first link skipped for capacity, if any.
    pub(crate) reject_link: Option<LinkId>,
}

impl SearchScratch {
    /// Creates scratch sized for a topology with `num_vertices` vertices
    /// (as reported by the engine's link index).
    ///
    /// # Panics
    /// Panics if the vertex count does not fit `usize`.
    #[must_use]
    pub fn new(num_vertices: u64) -> Self {
        let n = usize::try_from(num_vertices).expect("vertex count fits usize");
        Self {
            seen: vec![0; n],
            parent: vec![0; n],
            parent_link: vec![0; n],
            dist: vec![0; n],
            done: vec![0; n],
            seen_b: vec![0; n],
            parent_b: vec![0; n],
            parent_link_b: vec![0; n],
            dist_b: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
            queue_next: VecDeque::new(),
            fr_f: Vec::new(),
            fr_f_next: Vec::new(),
            fr_b: Vec::new(),
            fr_b_next: Vec::new(),
            path_ids: Vec::new(),
            expanded: 0,
            frontier_peak: 0,
            reject_link: None,
        }
    }

    /// Opens a new search: bumps the epoch (zero-filling the stamp arrays
    /// on wraparound, the only non-O(1) path) and resets the per-request
    /// probe counters.
    pub(crate) fn begin_request(&mut self) {
        if self.epoch == u32::MAX {
            self.seen.fill(0);
            self.seen_b.fill(0);
            self.done.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.expanded = 0;
        self.frontier_peak = 0;
        self.reject_link = None;
    }
}

/// A read-only snapshot of everything a search consults: the topology,
/// the flat per-link occupancy, the capacity, and the dynamic fault
/// overlay. Borrowing (never copying) the engine's state keeps a view
/// free to construct per request — and lets many views alias one engine
/// concurrently during a batch propose phase.
pub(crate) struct RouteView<'v, T: NetTopology> {
    pub net: &'v T,
    pub usage: &'v [u32],
    pub dilation: u32,
    pub dyn_dead: &'v [u64],
    pub dyn_faults: usize,
}

impl<T: NetTopology> RouteView<'_, T> {
    /// Whether `id` is usable for routing right now: admitted by the
    /// topology's own damage overlay **and** not failed in the dynamic
    /// overlay (the `dyn_faults == 0` fast path keeps churn-free runs at
    /// exactly the static-overlay cost).
    #[inline]
    pub fn link_live(&self, id: LinkId) -> bool {
        if self.net.link_blocked(id) {
            return false;
        }
        if self.dyn_faults == 0 {
            return true;
        }
        self.dyn_dead[(id >> 6) as usize] & (1u64 << (id & 63)) == 0
    }

    /// The O(deg) endpoint census behind the saturation guards: whether
    /// `v` has any live (unblocked) link at all, and whether any live
    /// link still has spare capacity. `(any_live, !any_free)` maps to
    /// the [`BlockReason::Saturated`] / [`BlockReason::NoRoute`] split.
    pub fn endpoint_link_census(&self, v: Vertex) -> (bool, bool) {
        let mut any_live = false;
        let mut any_free = false;
        self.net.for_each_link(v, |_, id| {
            if !self.link_live(id) {
                return true;
            }
            any_live = true;
            if self.usage[id as usize] < self.dilation {
                any_free = true;
                return false;
            }
            true
        });
        (any_live, any_free)
    }

    /// First live-but-saturated link at `v` — probe attribution for the
    /// `O(deg)` endpoint-guard rejections, which otherwise never name a
    /// link. Only called with a probe attached.
    pub fn first_saturated_link(&self, v: Vertex) -> Option<LinkId> {
        let mut hit = None;
        self.net.for_each_link(v, |_, id| {
            if self.link_live(id) && self.usage[id as usize] >= self.dilation {
                hit = Some(id);
                return false;
            }
            true
        });
        hit
    }
}

/// What a search concluded. On `Found` the route's link ids were left in
/// `scratch.path_ids` (reconstruction order) — **nothing was occupied**;
/// the caller validates capacity again when it commits.
pub(crate) enum SearchOutcome {
    /// A shortest available route; vertices in path order.
    Found(Vec<Vertex>),
    /// No route under the current occupancy, with the reason the serial
    /// engine would have reported.
    Blocked(BlockReason),
}

/// Runs one search strategy against `view` using `scratch`, after
/// opening a fresh request epoch. The phantom probe parameter `P` gates
/// the effort counters exactly as in the serial engine: with
/// `P::ENABLED == false` every counter update compiles out.
///
/// # Panics
/// Panics if [`RouteSearch::AStarCube`] is requested on a topology that
/// is not [`NetTopology::cube_labeled`] (same contract as the engine).
pub(crate) fn search_route<T: NetTopology, P: EngineProbe>(
    view: &RouteView<'_, T>,
    scratch: &mut SearchScratch,
    search: RouteSearch,
    src: Vertex,
    dst: Vertex,
    max_len: u32,
) -> SearchOutcome {
    scratch.begin_request();
    match search {
        RouteSearch::Unidirectional => search_unidirectional::<T, P>(view, scratch, src, dst, max_len),
        RouteSearch::Bidirectional => search_bidirectional::<T, P>(view, scratch, src, dst, max_len),
        RouteSearch::AStarCube => {
            assert!(
                view.net.cube_labeled(),
                "A* cube-metric search on a topology without cube labels"
            );
            search_astar_cube::<T, P>(view, scratch, src, dst, max_len)
        }
    }
}

/// The legacy single-frontier BFS (pre-PR-4 `request`; exploration
/// order and block reasons kept verbatim, now walking neighbors
/// through the allocation-free `for_each_link`).
fn search_unidirectional<T: NetTopology, P: EngineProbe>(
    view: &RouteView<'_, T>,
    scratch: &mut SearchScratch,
    src: Vertex,
    dst: Vertex,
    max_len: u32,
) -> SearchOutcome {
    scratch.queue.clear();
    scratch.seen[src as usize] = scratch.epoch;
    scratch.queue.push_back((src as u32, 0));
    let mut any_route_capacity_blind = false;
    let net = view.net;
    while let Some((x, d)) = scratch.queue.pop_front() {
        if d == max_len {
            continue;
        }
        if P::ENABLED {
            scratch.expanded += 1;
        }
        let mut found = false;
        let epoch = scratch.epoch;
        let seen = &mut scratch.seen;
        let parent = &mut scratch.parent;
        let parent_link = &mut scratch.parent_link;
        let queue = &mut scratch.queue;
        let reject_link = &mut scratch.reject_link;
        net.for_each_link(u64::from(x), |y, id| {
            if !view.link_live(id) {
                return true;
            }
            if y == dst {
                any_route_capacity_blind = true;
            }
            let yi = y as usize;
            if seen[yi] == epoch {
                return true;
            }
            if view.usage[id as usize] >= view.dilation {
                if P::ENABLED && reject_link.is_none() {
                    *reject_link = Some(id);
                }
                return true;
            }
            seen[yi] = epoch;
            parent[yi] = x;
            parent_link[yi] = id;
            if y == dst {
                found = true;
                return false;
            }
            queue.push_back((y as u32, d + 1));
            true
        });
        if P::ENABLED {
            scratch.frontier_peak = scratch.frontier_peak.max(scratch.queue.len() as u32);
        }
        if found {
            return reconstruct_found(scratch, src, dst);
        }
    }
    if any_route_capacity_blind {
        SearchOutcome::Blocked(BlockReason::Saturated)
    } else {
        SearchOutcome::Blocked(BlockReason::NoRoute)
    }
}

/// Distance-capped A\* on the cube metric. `h(v) = hamming(v, dst)`
/// is admissible and consistent on cube labelings (every hop moves
/// the Hamming distance by exactly ±1), so `f = g + h` is
/// nondecreasing along expansions and keeps its parity — a two-bucket
/// FIFO (`f` and `f + 2`) replaces a priority queue. Any neighbor of
/// `dst` has `h = 1`, so the first relaxation that touches `dst`
/// closes a shortest route and returns immediately.
fn search_astar_cube<T: NetTopology, P: EngineProbe>(
    view: &RouteView<'_, T>,
    scratch: &mut SearchScratch,
    src: Vertex,
    dst: Vertex,
    max_len: u32,
) -> SearchOutcome {
    // Hot-spot guard: if every live link into `dst` is saturated no
    // route can exist — reject in O(deg) instead of flooding.
    let (any_live, any_free) = view.endpoint_link_census(dst);
    let h0 = hamming_distance(src, dst);
    if !any_free || h0 > max_len {
        let saturated = any_live && !any_free;
        if P::ENABLED && saturated {
            scratch.reject_link = view.first_saturated_link(dst);
        }
        return SearchOutcome::Blocked(if saturated {
            BlockReason::Saturated
        } else {
            BlockReason::NoRoute
        });
    }
    scratch.queue.clear();
    scratch.queue_next.clear();
    scratch.seen[src as usize] = scratch.epoch;
    scratch.dist[src as usize] = 0;
    scratch.queue.push_back((src as u32, 0));
    let mut f = h0;
    let mut capacity_skip = false;
    let net = view.net;
    loop {
        let Some((x, g)) = scratch.queue.pop_front() else {
            if scratch.queue_next.is_empty() || f + 2 > max_len {
                break;
            }
            f += 2;
            std::mem::swap(&mut scratch.queue, &mut scratch.queue_next);
            continue;
        };
        let xi = x as usize;
        // Stale (since improved) or already expanded entries are
        // skipped; first valid pop of a vertex has its optimal g.
        if g != scratch.dist[xi] || scratch.done[xi] == scratch.epoch {
            continue;
        }
        scratch.done[xi] = scratch.epoch;
        if P::ENABLED {
            scratch.expanded += 1;
        }
        let mut found = false;
        let epoch = scratch.epoch;
        let seen = &mut scratch.seen;
        let dist = &mut scratch.dist;
        let parent = &mut scratch.parent;
        let parent_link = &mut scratch.parent_link;
        let queue = &mut scratch.queue;
        let queue_next = &mut scratch.queue_next;
        let reject_link = &mut scratch.reject_link;
        net.for_each_link(u64::from(x), |y, id| {
            if !view.link_live(id) {
                return true;
            }
            if view.usage[id as usize] >= view.dilation {
                capacity_skip = true;
                if P::ENABLED && reject_link.is_none() {
                    *reject_link = Some(id);
                }
                return true;
            }
            if y == dst {
                // h(x) = 1, so this route has length f <= max_len and
                // no shorter one remains undiscovered.
                parent[y as usize] = x;
                parent_link[y as usize] = id;
                found = true;
                return false;
            }
            let g2 = g + 1;
            let yi = y as usize;
            if seen[yi] == epoch && g2 >= dist[yi] {
                return true;
            }
            let f2 = g2 + hamming_distance(y, dst);
            if f2 > max_len {
                return true;
            }
            seen[yi] = epoch;
            dist[yi] = g2;
            parent[yi] = x;
            parent_link[yi] = id;
            if f2 == f {
                queue.push_back((y as u32, g2));
            } else {
                debug_assert_eq!(f2, f + 2, "cube metric keeps f-parity");
                queue_next.push_back((y as u32, g2));
            }
            true
        });
        if P::ENABLED {
            scratch.frontier_peak = scratch
                .frontier_peak
                .max((scratch.queue.len() + scratch.queue_next.len()) as u32);
        }
        if found {
            return reconstruct_found(scratch, src, dst);
        }
    }
    SearchOutcome::Blocked(if capacity_skip {
        BlockReason::Saturated
    } else {
        BlockReason::NoRoute
    })
}

/// Bidirectional BFS: levels expand from whichever frontier is
/// smaller; a vertex discovered by both sides is a meeting candidate,
/// and once the combined expanded depth reaches the best candidate no
/// shorter route can exist. When either endpoint is walled in its
/// frontier empties immediately, so the saturated-hot-spot steady
/// state costs `O(deg)` instead of flooding the network.
fn search_bidirectional<T: NetTopology, P: EngineProbe>(
    view: &RouteView<'_, T>,
    scratch: &mut SearchScratch,
    src: Vertex,
    dst: Vertex,
    max_len: u32,
) -> SearchOutcome {
    // Endpoint guards: a route needs a free link out of `src` and
    // into `dst`; when either endpoint is walled in, reject in
    // O(deg) with the same reason the full search would reach.
    for &end in &[src, dst] {
        let (any_live, any_free) = view.endpoint_link_census(end);
        if !any_free {
            if P::ENABLED && any_live {
                scratch.reject_link = view.first_saturated_link(end);
            }
            return SearchOutcome::Blocked(if any_live {
                BlockReason::Saturated
            } else {
                BlockReason::NoRoute
            });
        }
    }
    scratch.seen[src as usize] = scratch.epoch;
    scratch.dist[src as usize] = 0;
    scratch.seen_b[dst as usize] = scratch.epoch;
    scratch.dist_b[dst as usize] = 0;
    scratch.fr_f.clear();
    scratch.fr_b.clear();
    scratch.fr_f.push(src as u32);
    scratch.fr_b.push(dst as u32);
    let mut lvl_f = 0u32;
    let mut lvl_b = 0u32;
    let mut best = u32::MAX;
    let mut meet = 0u32;
    let mut capacity_skip = false;
    let net = view.net;
    loop {
        let sum = lvl_f + lvl_b;
        // Every route of length <= lvl_f + lvl_b has produced a
        // meeting candidate by now, so `best <= sum` is optimal and
        // `sum >= max_len` proves nothing shorter remains in bound.
        if best <= sum || sum >= max_len {
            break;
        }
        let forward = if scratch.fr_f.is_empty() {
            if scratch.fr_b.is_empty() {
                break;
            }
            false
        } else if scratch.fr_b.is_empty() {
            true
        } else {
            scratch.fr_f.len() <= scratch.fr_b.len()
        };
        if forward {
            scratch.fr_f_next.clear();
            for i in 0..scratch.fr_f.len() {
                let x = scratch.fr_f[i];
                if P::ENABLED {
                    scratch.expanded += 1;
                }
                let epoch = scratch.epoch;
                let seen = &mut scratch.seen;
                let dist = &mut scratch.dist;
                let parent = &mut scratch.parent;
                let parent_link = &mut scratch.parent_link;
                let seen_b = &scratch.seen_b;
                let dist_b = &scratch.dist_b;
                let fr_f_next = &mut scratch.fr_f_next;
                let reject_link = &mut scratch.reject_link;
                net.for_each_link(u64::from(x), |y, id| {
                    if !view.link_live(id) {
                        return true;
                    }
                    if view.usage[id as usize] >= view.dilation {
                        capacity_skip = true;
                        if P::ENABLED && reject_link.is_none() {
                            *reject_link = Some(id);
                        }
                        return true;
                    }
                    let yi = y as usize;
                    if seen[yi] == epoch {
                        return true;
                    }
                    seen[yi] = epoch;
                    dist[yi] = lvl_f + 1;
                    parent[yi] = x;
                    parent_link[yi] = id;
                    if seen_b[yi] == epoch {
                        let total = lvl_f + 1 + dist_b[yi];
                        if total < best {
                            best = total;
                            meet = y as u32;
                        }
                    }
                    fr_f_next.push(y as u32);
                    true
                });
            }
            lvl_f += 1;
            std::mem::swap(&mut scratch.fr_f, &mut scratch.fr_f_next);
            if P::ENABLED {
                scratch.frontier_peak = scratch
                    .frontier_peak
                    .max((scratch.fr_f.len() + scratch.fr_b.len()) as u32);
            }
        } else {
            scratch.fr_b_next.clear();
            for i in 0..scratch.fr_b.len() {
                let x = scratch.fr_b[i];
                if P::ENABLED {
                    scratch.expanded += 1;
                }
                let epoch = scratch.epoch;
                let seen = &scratch.seen;
                let dist = &scratch.dist;
                let seen_b = &mut scratch.seen_b;
                let dist_b = &mut scratch.dist_b;
                let parent_b = &mut scratch.parent_b;
                let parent_link_b = &mut scratch.parent_link_b;
                let fr_b_next = &mut scratch.fr_b_next;
                let reject_link = &mut scratch.reject_link;
                net.for_each_link(u64::from(x), |y, id| {
                    if !view.link_live(id) {
                        return true;
                    }
                    if view.usage[id as usize] >= view.dilation {
                        capacity_skip = true;
                        if P::ENABLED && reject_link.is_none() {
                            *reject_link = Some(id);
                        }
                        return true;
                    }
                    let yi = y as usize;
                    if seen_b[yi] == epoch {
                        return true;
                    }
                    seen_b[yi] = epoch;
                    dist_b[yi] = lvl_b + 1;
                    parent_b[yi] = x;
                    parent_link_b[yi] = id;
                    if seen[yi] == epoch {
                        let total = lvl_b + 1 + dist[yi];
                        if total < best {
                            best = total;
                            meet = y as u32;
                        }
                    }
                    fr_b_next.push(y as u32);
                    true
                });
            }
            lvl_b += 1;
            std::mem::swap(&mut scratch.fr_b, &mut scratch.fr_b_next);
            if P::ENABLED {
                scratch.frontier_peak = scratch
                    .frontier_peak
                    .max((scratch.fr_f.len() + scratch.fr_b.len()) as u32);
            }
        }
    }
    if best <= max_len {
        return reconstruct_meeting(scratch, src, meet);
    }
    SearchOutcome::Blocked(if capacity_skip {
        BlockReason::Saturated
    } else {
        BlockReason::NoRoute
    })
}

/// Walks the parent chain from `dst` back to `src`, leaves the route's
/// link ids in `scratch.path_ids`, and returns the path — without
/// occupying anything (that is the caller's commit step).
fn reconstruct_found(scratch: &mut SearchScratch, src: Vertex, dst: Vertex) -> SearchOutcome {
    let mut path = vec![dst];
    scratch.path_ids.clear();
    let mut cur = dst as u32;
    while u64::from(cur) != src {
        scratch.path_ids.push(scratch.parent_link[cur as usize]);
        cur = scratch.parent[cur as usize];
        path.push(u64::from(cur));
    }
    path.reverse();
    SearchOutcome::Found(path)
}

/// Splices the two halves of a bidirectional search at the meeting
/// vertex — the forward parent chain back to `src`, then the backward
/// parent chain down to `dst` (whose backward depth is 0) — leaving the
/// link ids in `scratch.path_ids`. The minimal meeting candidate never
/// revisits a vertex (a shared vertex would have been a strictly smaller
/// candidate recorded earlier), so the spliced path is simple.
fn reconstruct_meeting(scratch: &mut SearchScratch, src: Vertex, meet: u32) -> SearchOutcome {
    let mut path = Vec::new();
    scratch.path_ids.clear();
    let mut cur = meet;
    while u64::from(cur) != src {
        path.push(u64::from(cur));
        scratch.path_ids.push(scratch.parent_link[cur as usize]);
        cur = scratch.parent[cur as usize];
    }
    path.push(src);
    path.reverse();
    let mut cur = meet;
    while scratch.dist_b[cur as usize] != 0 {
        scratch.path_ids.push(scratch.parent_link_b[cur as usize]);
        cur = scratch.parent_b[cur as usize];
        path.push(u64::from(cur));
    }
    SearchOutcome::Found(path)
}
