//! Topology interface for the circuit-switching simulator: edge tests plus
//! neighbor enumeration (needed for adaptive routing), implemented by both
//! rule-generated sparse hypercubes and materialized graphs.

use shc_core::SparseHypercube;
use shc_graph::{GraphView, Node};

/// Vertex ids, shared with `shc-broadcast`.
pub type Vertex = u64;

/// A routable network topology.
pub trait NetTopology {
    /// Number of vertices.
    fn num_vertices(&self) -> u64;

    /// Undirected edge test.
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool;

    /// Neighbor list of `u`.
    fn neighbors(&self, u: Vertex) -> Vec<Vertex>;
}

impl NetTopology for SparseHypercube {
    fn num_vertices(&self) -> u64 {
        SparseHypercube::num_vertices(self)
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        SparseHypercube::has_edge(self, u, v)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        SparseHypercube::neighbors(self, u)
    }
}

/// Adapter for materialized graphs.
pub struct MaterializedNet<G: GraphView> {
    graph: G,
}

impl<G: GraphView> MaterializedNet<G> {
    /// Wraps an owned graph.
    #[must_use]
    pub fn new(graph: G) -> Self {
        Self { graph }
    }

    /// Borrow the underlying graph.
    #[must_use]
    pub fn inner(&self) -> &G {
        &self.graph
    }
}

impl<G: GraphView> NetTopology for MaterializedNet<G> {
    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = self.graph.num_vertices() as u64;
        u < n && v < n && self.graph.has_edge(u as Node, v as Node)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        self.graph
            .neighbors(u as Node)
            .iter()
            .map(|&v| Vertex::from(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::cycle;

    #[test]
    fn materialized_adapter() {
        let net = MaterializedNet::new(cycle(5));
        assert_eq!(net.num_vertices(), 5);
        assert!(net.has_edge(0, 4));
        assert!(!net.has_edge(0, 2));
        assert_eq!(net.neighbors(0), vec![1, 4]);
        assert!(!net.has_edge(0, 17));
    }

    #[test]
    fn sparse_hypercube_topology() {
        let g = SparseHypercube::construct_base(5, 2);
        assert_eq!(NetTopology::num_vertices(&g), 32);
        let nbrs = NetTopology::neighbors(&g, 0);
        assert_eq!(nbrs.len(), g.degree(0));
    }
}
