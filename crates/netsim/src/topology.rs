//! Topology interface for the circuit-switching simulator: edge tests plus
//! neighbor enumeration (needed for adaptive routing), implemented by both
//! rule-generated sparse hypercubes and materialized graphs, plus the
//! [`FaultedNet`] damage overlay used for fault-injection studies.

use shc_core::SparseHypercube;
use shc_graph::{GraphView, Node};
use std::collections::HashSet;

/// Vertex ids, shared with `shc-broadcast`.
pub type Vertex = u64;

/// A routable network topology.
pub trait NetTopology {
    /// Number of vertices.
    fn num_vertices(&self) -> u64;

    /// Undirected edge test.
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool;

    /// Neighbor list of `u`.
    fn neighbors(&self, u: Vertex) -> Vec<Vertex>;
}

impl NetTopology for SparseHypercube {
    fn num_vertices(&self) -> u64 {
        SparseHypercube::num_vertices(self)
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        SparseHypercube::has_edge(self, u, v)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        SparseHypercube::neighbors(self, u)
    }
}

/// Adapter for materialized graphs.
pub struct MaterializedNet<G: GraphView> {
    graph: G,
}

impl<G: GraphView> MaterializedNet<G> {
    /// Wraps an owned graph.
    #[must_use]
    pub fn new(graph: G) -> Self {
        Self { graph }
    }

    /// Borrow the underlying graph.
    #[must_use]
    pub fn inner(&self) -> &G {
        &self.graph
    }
}

impl<G: GraphView> NetTopology for MaterializedNet<G> {
    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = self.graph.num_vertices() as u64;
        u < n && v < n && self.graph.has_edge(u as Node, v as Node)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        self.graph
            .neighbors(u as Node)
            .iter()
            .map(|&v| Vertex::from(v))
            .collect()
    }
}

/// A damage overlay on any topology: a set of failed links and crashed
/// vertices masked out of the base network *without* materializing or
/// copying it. Replica-safe by construction — each Monte Carlo replica
/// wraps the same shared base topology (`&T`) with its own private fault
/// sets, so thousands of faulted views coexist across worker threads.
pub struct FaultedNet<'a, T: NetTopology> {
    base: &'a T,
    dead_links: HashSet<(Vertex, Vertex)>,
    crashed: HashSet<Vertex>,
}

impl<'a, T: NetTopology> FaultedNet<'a, T> {
    /// Wraps `base` with a set of failed links (normalized internally)
    /// and crashed vertices. A crashed vertex loses all incident links.
    #[must_use]
    pub fn new(
        base: &'a T,
        dead_links: impl IntoIterator<Item = (Vertex, Vertex)>,
        crashed: impl IntoIterator<Item = Vertex>,
    ) -> Self {
        Self {
            base,
            dead_links: dead_links
                .into_iter()
                .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
                .collect(),
            crashed: crashed.into_iter().collect(),
        }
    }

    /// An undamaged view of `base` (0 faults), for baseline comparisons.
    #[must_use]
    pub fn intact(base: &'a T) -> Self {
        Self::new(base, [], [])
    }

    /// Number of failed links.
    #[must_use]
    pub fn num_dead_links(&self) -> usize {
        self.dead_links.len()
    }

    /// Number of crashed vertices.
    #[must_use]
    pub fn num_crashed(&self) -> usize {
        self.crashed.len()
    }

    /// `true` iff `v` has crashed.
    #[must_use]
    pub fn is_crashed(&self, v: Vertex) -> bool {
        self.crashed.contains(&v)
    }

    /// `true` iff the (normalized) link survives: present in the base
    /// topology, not failed, and neither endpoint crashed.
    #[must_use]
    pub fn link_alive(&self, u: Vertex, v: Vertex) -> bool {
        self.has_edge(u, v)
    }
}

impl<T: NetTopology> NetTopology for FaultedNet<'_, T> {
    fn num_vertices(&self) -> u64 {
        self.base.num_vertices()
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let e = if u <= v { (u, v) } else { (v, u) };
        self.base.has_edge(u, v)
            && !self.dead_links.contains(&e)
            && !self.crashed.contains(&u)
            && !self.crashed.contains(&v)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        if self.crashed.contains(&u) {
            return Vec::new();
        }
        self.base
            .neighbors(u)
            .into_iter()
            .filter(|&v| self.has_edge(u, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::cycle;

    #[test]
    fn materialized_adapter() {
        let net = MaterializedNet::new(cycle(5));
        assert_eq!(net.num_vertices(), 5);
        assert!(net.has_edge(0, 4));
        assert!(!net.has_edge(0, 2));
        assert_eq!(net.neighbors(0), vec![1, 4]);
        assert!(!net.has_edge(0, 17));
    }

    #[test]
    fn sparse_hypercube_topology() {
        let g = SparseHypercube::construct_base(5, 2);
        assert_eq!(NetTopology::num_vertices(&g), 32);
        let nbrs = NetTopology::neighbors(&g, 0);
        assert_eq!(nbrs.len(), g.degree(0));
    }

    #[test]
    fn faulted_net_masks_dead_links() {
        let net = MaterializedNet::new(cycle(5));
        // Report the edge reversed: normalization must still match it.
        let damaged = FaultedNet::new(&net, [(1u64, 0u64)], []);
        assert!(!damaged.has_edge(0, 1));
        assert!(!damaged.link_alive(1, 0));
        assert!(damaged.has_edge(1, 2));
        assert_eq!(damaged.neighbors(0), vec![4]);
        assert_eq!(damaged.num_dead_links(), 1);
        assert_eq!(damaged.num_vertices(), 5);
    }

    #[test]
    fn faulted_net_crashes_remove_incident_links() {
        let net = MaterializedNet::new(cycle(5));
        let damaged = FaultedNet::new(&net, [], [2u64]);
        assert!(damaged.is_crashed(2));
        assert!(damaged.neighbors(2).is_empty());
        assert!(!damaged.has_edge(1, 2));
        assert!(!damaged.has_edge(2, 3));
        assert_eq!(damaged.neighbors(1), vec![0]);
        assert_eq!(damaged.num_crashed(), 1);
    }

    #[test]
    fn intact_overlay_is_transparent() {
        let net = MaterializedNet::new(cycle(5));
        let overlay = FaultedNet::intact(&net);
        for u in 0..5u64 {
            assert_eq!(overlay.neighbors(u), net.neighbors(u));
        }
        assert_eq!(overlay.num_dead_links(), 0);
        assert_eq!(overlay.num_crashed(), 0);
    }

    #[test]
    fn faulted_sparse_hypercube_rule_generated() {
        // The overlay composes with the rule-generated topology too (no
        // materialization needed).
        let g = SparseHypercube::construct_base(5, 2);
        let nbrs = NetTopology::neighbors(&g, 0);
        let first = nbrs[0];
        let damaged = FaultedNet::new(&g, [(0u64, first)], []);
        assert!(!damaged.has_edge(0, first));
        assert_eq!(damaged.neighbors(0).len(), nbrs.len() - 1);
    }
}
