//! Topology interface for the circuit-switching simulator: edge tests plus
//! neighbor enumeration (needed for adaptive routing), implemented by both
//! rule-generated sparse hypercubes and materialized graphs, plus the
//! [`FaultedNet`] damage overlay used for fault-injection studies.
//!
//! Every topology can also freeze itself into a [`LinkTable`] — the CSR
//! link index the engine keys its flat occupancy vector off. Concrete
//! topologies that are built once and queried hot ([`MaterializedNet`],
//! the runtime's `BuiltTopology`) freeze at construction and hand out the
//! shared table; [`FaultedNet`] reuses its base's table and masks damage
//! as a bitset over the same link ids.

use crate::links::{LinkId, LinkTable};
use shc_core::SparseHypercube;
use shc_graph::{BitSet, CsrGraph, GraphView, Node};
use std::sync::Arc;

/// Vertex ids, shared with `shc-broadcast`.
pub type Vertex = u64;

/// A routable network topology.
pub trait NetTopology {
    /// Number of vertices.
    fn num_vertices(&self) -> u64;

    /// Undirected edge test.
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool;

    /// Neighbor list of `u`.
    fn neighbors(&self, u: Vertex) -> Vec<Vertex>;

    /// The frozen link index of the **undamaged** topology. Implementors
    /// that are constructed once and simulated many times should override
    /// this with a table frozen at construction; the default freezes on
    /// every call.
    fn link_table(&self) -> Arc<LinkTable>
    where
        Self: Sized,
    {
        Arc::new(LinkTable::build(self.num_vertices(), |u| self.neighbors(u)))
    }

    /// `true` when the link with this id is masked out (failed link or
    /// crashed endpoint). The engine consults this on every traversal of
    /// a [`link_table`](Self::link_table) entry; damage overlays override
    /// it with a bitset probe.
    fn link_blocked(&self, _id: LinkId) -> bool {
        false
    }

    /// `true` when vertex ids are binary-cube coordinates: every live
    /// link joins ids at Hamming distance exactly 1, so
    /// [`shc_graph::cube::hamming_distance`] is an admissible, consistent
    /// lower bound on route length. The engine keys its distance-capped
    /// A* routing fast path off this; the conservative default (`false`)
    /// falls back to bidirectional BFS. Rule-generated sparse hypercubes
    /// and materialized cube subgraphs report `true`; damage overlays
    /// inherit their base's answer (removing links never invalidates a
    /// lower bound).
    fn cube_labeled(&self) -> bool {
        false
    }
}

impl NetTopology for SparseHypercube {
    fn num_vertices(&self) -> u64 {
        SparseHypercube::num_vertices(self)
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = SparseHypercube::num_vertices(self);
        u < n && v < n && SparseHypercube::has_edge(self, u, v)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        SparseHypercube::neighbors(self, u)
    }

    fn cube_labeled(&self) -> bool {
        // Every rule-generated edge flips exactly one bit (`has_edge`
        // demands `u ^ v` be a power of two): a spanning cube subgraph.
        true
    }
}

/// Adapter for materialized graphs. Freezes the graph into a CSR link
/// index once at construction, so engines over it never re-enumerate.
pub struct MaterializedNet<G: GraphView> {
    graph: G,
    table: Arc<LinkTable>,
    cube: bool,
}

impl<G: GraphView> MaterializedNet<G> {
    /// Wraps an owned graph, freezing its CSR link index and detecting
    /// (one `O(E)` popcount scan) whether the vertex ids form a cube
    /// labeling — which unlocks the engine's A* routing fast path.
    #[must_use]
    pub fn new(graph: G) -> Self {
        let table = Arc::new(LinkTable::from_csr(&CsrGraph::from_view(&graph)));
        let cube = shc_graph::cube::is_cube_labeled(&graph);
        Self { graph, table, cube }
    }

    /// Borrow the underlying graph.
    #[must_use]
    pub fn inner(&self) -> &G {
        &self.graph
    }
}

impl<G: GraphView> NetTopology for MaterializedNet<G> {
    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = self.graph.num_vertices() as u64;
        u < n && v < n && self.graph.has_edge(u as Node, v as Node)
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        self.graph
            .neighbors(u as Node)
            .iter()
            .map(|&v| Vertex::from(v))
            .collect()
    }

    fn link_table(&self) -> Arc<LinkTable> {
        Arc::clone(&self.table)
    }

    fn cube_labeled(&self) -> bool {
        self.cube
    }
}

/// A damage overlay on any topology: a set of failed links and crashed
/// vertices masked out of the base network *without* materializing or
/// copying it. Replica-safe by construction — each Monte Carlo replica
/// wraps the same shared base topology (`&T`) with its own private fault
/// sets, so thousands of faulted views coexist across worker threads.
///
/// Damage is stored as a bitset over the base's link ids (crashed
/// vertices fold in as "every incident link dead"), so the engine's
/// per-link liveness probe is a single bit test.
pub struct FaultedNet<'a, T: NetTopology> {
    base: &'a T,
    table: Arc<LinkTable>,
    dead: BitSet,
    num_dead_links: usize,
    crashed: Vec<Vertex>,
}

impl<'a, T: NetTopology> FaultedNet<'a, T> {
    /// Wraps `base` with a set of failed links (normalized internally)
    /// and crashed vertices. A crashed vertex loses all incident links.
    #[must_use]
    pub fn new(
        base: &'a T,
        dead_links: impl IntoIterator<Item = (Vertex, Vertex)>,
        crashed: impl IntoIterator<Item = Vertex>,
    ) -> Self {
        let table = base.link_table();
        let mut dead = BitSet::new(table.num_links());
        let mut pairs: Vec<(Vertex, Vertex)> = dead_links
            .into_iter()
            .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        for &(u, v) in &pairs {
            if let Some(id) = table.link_id(u, v) {
                dead.insert(id as usize);
            }
        }
        let mut crashed: Vec<Vertex> = crashed.into_iter().collect();
        crashed.sort_unstable();
        crashed.dedup();
        for &w in &crashed {
            let (_, ids) = table.links_of(w);
            for &id in ids {
                dead.insert(id as usize);
            }
        }
        Self {
            base,
            table,
            dead,
            num_dead_links: pairs.len(),
            crashed,
        }
    }

    /// An undamaged view of `base` (0 faults), for baseline comparisons.
    #[must_use]
    pub fn intact(base: &'a T) -> Self {
        Self::new(base, [], [])
    }

    /// Number of failed links.
    #[must_use]
    pub fn num_dead_links(&self) -> usize {
        self.num_dead_links
    }

    /// Number of crashed vertices.
    #[must_use]
    pub fn num_crashed(&self) -> usize {
        self.crashed.len()
    }

    /// `true` iff `v` has crashed.
    #[must_use]
    pub fn is_crashed(&self, v: Vertex) -> bool {
        self.crashed.binary_search(&v).is_ok()
    }

    /// `true` iff the (normalized) link survives: present in the base
    /// topology, not failed, and neither endpoint crashed.
    #[must_use]
    pub fn link_alive(&self, u: Vertex, v: Vertex) -> bool {
        self.has_edge(u, v)
    }
}

impl<T: NetTopology> NetTopology for FaultedNet<'_, T> {
    fn num_vertices(&self) -> u64 {
        self.base.num_vertices()
    }

    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.table
            .link_id(u, v)
            .is_some_and(|id| !self.link_blocked(id))
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        let (targets, ids) = self.table.links_of(u);
        targets
            .iter()
            .zip(ids)
            .filter_map(|(&v, &id)| (!self.link_blocked(id)).then_some(u64::from(v)))
            .collect()
    }

    fn link_table(&self) -> Arc<LinkTable> {
        Arc::clone(&self.table)
    }

    fn link_blocked(&self, id: LinkId) -> bool {
        self.dead.contains(id as usize) || self.base.link_blocked(id)
    }

    fn cube_labeled(&self) -> bool {
        // Damage only removes links; a distance lower bound that held on
        // the base holds a fortiori on the subgraph.
        self.base.cube_labeled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::cycle;

    #[test]
    fn materialized_adapter() {
        let net = MaterializedNet::new(cycle(5));
        assert_eq!(net.num_vertices(), 5);
        assert!(net.has_edge(0, 4));
        assert!(!net.has_edge(0, 2));
        assert_eq!(net.neighbors(0), vec![1, 4]);
        assert!(!net.has_edge(0, 17));
        // The frozen table agrees with the live adjacency.
        let table = net.link_table();
        assert_eq!(table.num_links(), 5);
        assert!(table.link_id(0, 4).is_some());
        assert_eq!(table.link_id(0, 2), None);
    }

    #[test]
    fn sparse_hypercube_topology() {
        let g = SparseHypercube::construct_base(5, 2);
        assert_eq!(NetTopology::num_vertices(&g), 32);
        let nbrs = NetTopology::neighbors(&g, 0);
        assert_eq!(nbrs.len(), g.degree(0));
        // The default freeze covers every rule-generated link, in the
        // rule's native neighbor order.
        let table = NetTopology::link_table(&g);
        let (targets, _) = table.links_of(0);
        let targets: Vec<Vertex> = targets.iter().map(|&v| u64::from(v)).collect();
        assert_eq!(targets, nbrs);
    }

    #[test]
    fn faulted_net_masks_dead_links() {
        let net = MaterializedNet::new(cycle(5));
        // Report the edge reversed: normalization must still match it.
        let damaged = FaultedNet::new(&net, [(1u64, 0u64)], []);
        assert!(!damaged.has_edge(0, 1));
        assert!(!damaged.link_alive(1, 0));
        assert!(damaged.has_edge(1, 2));
        assert_eq!(damaged.neighbors(0), vec![4]);
        assert_eq!(damaged.num_dead_links(), 1);
        assert_eq!(damaged.num_vertices(), 5);
    }

    #[test]
    fn faulted_net_crashes_remove_incident_links() {
        let net = MaterializedNet::new(cycle(5));
        let damaged = FaultedNet::new(&net, [], [2u64]);
        assert!(damaged.is_crashed(2));
        assert!(damaged.neighbors(2).is_empty());
        assert!(!damaged.has_edge(1, 2));
        assert!(!damaged.has_edge(2, 3));
        assert_eq!(damaged.neighbors(1), vec![0]);
        assert_eq!(damaged.num_crashed(), 1);
    }

    #[test]
    fn intact_overlay_is_transparent() {
        let net = MaterializedNet::new(cycle(5));
        let overlay = FaultedNet::intact(&net);
        for u in 0..5u64 {
            assert_eq!(overlay.neighbors(u), net.neighbors(u));
        }
        assert_eq!(overlay.num_dead_links(), 0);
        assert_eq!(overlay.num_crashed(), 0);
    }

    #[test]
    fn faulted_sparse_hypercube_rule_generated() {
        // The overlay composes with the rule-generated topology too (no
        // materialization needed).
        let g = SparseHypercube::construct_base(5, 2);
        let nbrs = NetTopology::neighbors(&g, 0);
        let first = nbrs[0];
        let damaged = FaultedNet::new(&g, [(0u64, first)], []);
        assert!(!damaged.has_edge(0, first));
        assert_eq!(damaged.neighbors(0).len(), nbrs.len() - 1);
    }

    #[test]
    fn nested_overlays_compose() {
        let net = MaterializedNet::new(cycle(6));
        let inner = FaultedNet::new(&net, [(0u64, 1u64)], []);
        let outer = FaultedNet::new(&inner, [(2u64, 3u64)], []);
        assert!(!outer.has_edge(0, 1), "inner damage visible through outer");
        assert!(!outer.has_edge(2, 3));
        assert!(outer.has_edge(1, 2));
        assert_eq!(outer.num_dead_links(), 1, "only the outer layer's own");
    }

    #[test]
    fn duplicate_and_phantom_damage_reports() {
        let net = MaterializedNet::new(cycle(5));
        // Duplicates collapse; phantom (non-edge) pairs are counted as
        // reported but mask nothing.
        let damaged = FaultedNet::new(&net, [(0u64, 1u64), (1u64, 0u64), (0u64, 2u64)], [3u64, 3]);
        assert_eq!(damaged.num_dead_links(), 2);
        assert_eq!(damaged.num_crashed(), 1);
        assert!(!damaged.has_edge(0, 1));
        assert!(
            !damaged.has_edge(0, 2),
            "phantom pair is not an edge anyway"
        );
        assert!(damaged.has_edge(1, 2));
    }
}
