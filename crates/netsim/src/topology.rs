//! Topology interface for the circuit-switching simulator: edge tests
//! plus allocation-free neighbor/link enumeration (the adaptive-routing
//! hot path), implemented by rule-generated topologies
//! ([`ImplicitCubeNet`], [`SparseHypercube`]) and materialized graphs
//! ([`MaterializedNet`]), plus the [`FaultedNet`] damage overlay used for
//! fault-injection studies.
//!
//! Every topology hands the engine a [`LinkIndex`] — either a frozen CSR
//! [`LinkTable`] (materialized graphs freeze once at construction and
//! share the table) or arithmetic [`CubeLinks`] (rule-generated
//! topologies compute link ids in closed form and store **nothing** per
//! vertex, which is what lets the sweep reach `n = 20+`). [`FaultedNet`]
//! reuses its base's index and masks damage as a bitset over the same
//! link ids.

use crate::links::{CubeLinks, LinkId, LinkIndex, LinkIndexError, LinkTable};
use shc_core::SparseHypercube;
use shc_graph::{BitSet, CsrGraph, GraphView, Node};
use std::sync::Arc;

/// Vertex ids, shared with `shc-broadcast`.
pub type Vertex = u64;

/// A routable network topology.
///
/// The engine's searches never call [`neighbors`](Self::neighbors) (it
/// allocates); they drive [`for_each_link`](Self::for_each_link), which
/// every implementor provides without per-call allocation — slice walks
/// for frozen tables, rule evaluation for implicit topologies.
pub trait NetTopology {
    /// Number of vertices.
    fn num_vertices(&self) -> u64;

    /// Undirected edge test.
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool;

    /// Enumerates the links of `u` as `(neighbor, link_id)` pairs in the
    /// topology's **native neighbor order** (the order
    /// [`neighbors`](Self::neighbors) lists them), without allocating.
    /// The callback returns `false` to stop early; the method reports
    /// whether the enumeration ran to completion. Out-of-range `u`
    /// enumerates nothing.
    ///
    /// Damage overlays do **not** filter here — they yield every base
    /// link and flag the dead ones through
    /// [`link_blocked`](Self::link_blocked), which the engine probes per
    /// link anyway.
    fn for_each_link(&self, u: Vertex, f: impl FnMut(Vertex, LinkId) -> bool) -> bool;

    /// Stable id of link `{u, v}`, or `None` when the topology has no
    /// such link (including out-of-range endpoints). Unlike
    /// [`LinkIndex::link_id`], this is edge-aware: a sparse rule-generated
    /// topology answers `None` for cube edges it does not contain even
    /// though its arithmetic index could assign them an id.
    fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId>;

    /// The link-id backend of the **undamaged** topology: a shared frozen
    /// table or a copyable arithmetic index. Cheap to call (topologies
    /// constructed once hand out a cached handle).
    fn link_index(&self) -> LinkIndex;

    /// Neighbor list of `u`. Diagnostic / reference-model API — the
    /// engine's hot path uses [`for_each_link`](Self::for_each_link).
    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        let mut out = Vec::new();
        self.for_each_link(u, |v, _| {
            out.push(v);
            true
        });
        out
    }

    /// `true` when the link with this id is masked out (failed link or
    /// crashed endpoint). The engine consults this on every traversal of
    /// a [`for_each_link`](Self::for_each_link) entry; damage overlays
    /// override it with a bitset probe.
    #[inline]
    fn link_blocked(&self, _id: LinkId) -> bool {
        false
    }

    /// `true` when vertex ids are binary-cube coordinates: every live
    /// link joins ids at Hamming distance exactly 1, so
    /// [`shc_graph::cube::hamming_distance`] is an admissible, consistent
    /// lower bound on route length. The engine keys its distance-capped
    /// A* routing fast path off this; the conservative default (`false`)
    /// falls back to bidirectional BFS. Rule-generated cube topologies
    /// answer by construction; materialized graphs cache the verdict
    /// computed during their link-table freeze; damage overlays inherit
    /// their base's answer (removing links never invalidates a lower
    /// bound).
    #[inline]
    fn cube_labeled(&self) -> bool {
        false
    }
}

/// The full binary `n`-cube `Q_n` as a purely rule-generated topology:
/// edge tests, neighbor enumeration, and link ids are all closed-form
/// arithmetic over [`CubeLinks`] — **no adjacency is ever materialized**,
/// so an engine over `Q_20` (1 048 576 vertices, ~10.5 M links) costs
/// only its own occupancy vector and scratch instead of the hundreds of
/// megabytes a frozen CSR table would pin.
///
/// Neighbor order is ascending by vertex id — exactly the sorted CSR
/// order of a materialized `Q_n` — so routes, stats, and snapshots are
/// byte-identical with [`MaterializedNet`] over
/// `shc_graph::builders::hypercube(n)` (property-tested in
/// `crates/netsim/tests/proptests.rs`).
///
/// ```
/// use shc_netsim::{Engine, ImplicitCubeNet, NetTopology};
/// let net = ImplicitCubeNet::new(10);
/// assert_eq!(net.num_vertices(), 1024);
/// let mut sim = Engine::new(&net, 1);
/// sim.begin_round();
/// assert!(sim.request(0, 1023, 12).is_established());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImplicitCubeNet {
    links: CubeLinks,
}

impl ImplicitCubeNet {
    /// Rule-generated `Q_n`.
    ///
    /// # Panics
    /// Panics when `n` exceeds [`CubeLinks::MAX_DIMENSION`] (the `u32`
    /// link-id space); use [`Self::try_new`] for a checked construction.
    #[must_use]
    pub fn new(n: u32) -> Self {
        Self::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::new`] with the id-space overflow surfaced as an error.
    pub fn try_new(n: u32) -> Result<Self, LinkIndexError> {
        Ok(Self {
            links: CubeLinks::new(n)?,
        })
    }

    /// Cube dimension `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.links.n()
    }
}

impl NetTopology for ImplicitCubeNet {
    #[inline]
    fn num_vertices(&self) -> u64 {
        self.links.num_vertices()
    }

    #[inline]
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let nv = self.links.num_vertices();
        u < nv && v < nv && (u ^ v).is_power_of_two()
    }

    #[inline]
    fn for_each_link(&self, u: Vertex, f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        if u >= self.links.num_vertices() {
            return true;
        }
        self.links.for_each_link(u, f)
    }

    #[inline]
    fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        self.links.link_id(u, v)
    }

    fn link_index(&self) -> LinkIndex {
        LinkIndex::Cube(self.links)
    }

    #[inline]
    fn cube_labeled(&self) -> bool {
        true
    }
}

/// The arithmetic index a sparse hypercube keys its links by — the
/// enclosing cube's, since every rule edge is a cube edge. Ids are
/// sparse in the cube's `0..n·2^(n-1)` space; absent edges simply never
/// have their slot touched. The trade, accepted for the zero-storage
/// substrate: engine occupancy and fault bitsets are sized to the dense
/// cube id space (`4n·2^(n-1)` bytes of occupancy — ~88 MB at n = 21)
/// rather than the sparse link count, and simulating a sparse hypercube
/// beyond [`CubeLinks::MAX_DIMENSION`] panics here even though the
/// construction itself allows `n ≤ 60`.
fn sparse_cube_links(g: &SparseHypercube) -> CubeLinks {
    CubeLinks::new(g.n())
        .unwrap_or_else(|e| panic!("sparse hypercube n = {} has no u32 link index: {e}", g.n()))
}

impl NetTopology for SparseHypercube {
    #[inline]
    fn num_vertices(&self) -> u64 {
        SparseHypercube::num_vertices(self)
    }

    #[inline]
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = SparseHypercube::num_vertices(self);
        u < n && v < n && SparseHypercube::has_edge(self, u, v)
    }

    #[inline]
    fn for_each_link(&self, u: Vertex, mut f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        if u >= SparseHypercube::num_vertices(self) {
            return true;
        }
        let links = sparse_cube_links(self);
        // The rule walk yields (paper dimension, neighbor) ascending by
        // dimension — the graph's native neighbor order, preserved so
        // adaptive routes stay bit-identical with the frozen-table era.
        // `for_each_neighbor` has no early exit, so thread a live flag.
        let mut alive = true;
        self.for_each_neighbor(u, |dim, v| {
            if alive {
                alive = f(v, links.id_of_dim(u, dim - 1));
            }
        });
        alive
    }

    #[inline]
    fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        // Edge-aware: the arithmetic index covers every cube edge, but
        // only rule-admitted ones exist here.
        if !NetTopology::has_edge(self, u, v) {
            return None;
        }
        sparse_cube_links(self).link_id(u, v)
    }

    fn link_index(&self) -> LinkIndex {
        LinkIndex::Cube(sparse_cube_links(self))
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        SparseHypercube::neighbors(self, u)
    }

    #[inline]
    fn cube_labeled(&self) -> bool {
        // Every rule-generated edge flips exactly one bit (`has_edge`
        // demands `u ^ v` be a power of two): a spanning cube subgraph.
        true
    }
}

/// Adapter for materialized graphs. Freezes the graph into a CSR link
/// index once at construction, so engines over it never re-enumerate.
pub struct MaterializedNet<G: GraphView> {
    graph: G,
    table: Arc<LinkTable>,
}

impl<G: GraphView> MaterializedNet<G> {
    /// Wraps an owned graph, freezing its CSR link index. Whether the
    /// vertex ids form a cube labeling — which unlocks the engine's A*
    /// routing fast path — is detected **during** the freeze and cached
    /// on the table, so construction makes one adjacency pass, not two,
    /// and Monte Carlo replicas never re-derive it.
    #[must_use]
    pub fn new(graph: G) -> Self {
        let table = Arc::new(LinkTable::from_csr(&CsrGraph::from_view(&graph)));
        Self { graph, table }
    }

    /// Borrow the underlying graph.
    #[must_use]
    pub fn inner(&self) -> &G {
        &self.graph
    }
}

impl<G: GraphView> NetTopology for MaterializedNet<G> {
    #[inline]
    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    #[inline]
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = self.graph.num_vertices() as u64;
        u < n && v < n && self.graph.has_edge(u as Node, v as Node)
    }

    #[inline]
    fn for_each_link(&self, u: Vertex, f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        self.table.for_each_link(u, f)
    }

    #[inline]
    fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        self.table.link_id(u, v)
    }

    fn link_index(&self) -> LinkIndex {
        LinkIndex::Table(Arc::clone(&self.table))
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        self.graph
            .neighbors(u as Node)
            .iter()
            .map(|&v| Vertex::from(v))
            .collect()
    }

    #[inline]
    fn cube_labeled(&self) -> bool {
        self.table.cube_labeled()
    }
}

/// A damage overlay on any topology: a set of failed links and crashed
/// vertices masked out of the base network *without* materializing or
/// copying it. Replica-safe by construction — each Monte Carlo replica
/// wraps the same shared base topology (`&T`) with its own private fault
/// sets, so thousands of faulted views coexist across worker threads.
///
/// Damage is stored as a bitset over the base's link-id space (crashed
/// vertices fold in as "every incident link dead"), so the engine's
/// per-link liveness probe is a single bit test. Works identically over
/// frozen-table and arithmetic (implicit) link indexes.
pub struct FaultedNet<'a, T: NetTopology> {
    base: &'a T,
    index: LinkIndex,
    dead: BitSet,
    num_dead_links: usize,
    crashed: Vec<Vertex>,
}

impl<'a, T: NetTopology> FaultedNet<'a, T> {
    /// Wraps `base` with a set of failed links (normalized internally)
    /// and crashed vertices. A crashed vertex loses all incident links.
    #[must_use]
    pub fn new(
        base: &'a T,
        dead_links: impl IntoIterator<Item = (Vertex, Vertex)>,
        crashed: impl IntoIterator<Item = Vertex>,
    ) -> Self {
        let index = base.link_index();
        let mut dead = BitSet::new(index.num_links());
        let mut pairs: Vec<(Vertex, Vertex)> = dead_links
            .into_iter()
            .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        for &(u, v) in &pairs {
            // Edge-aware lookup: phantom pairs (not edges of the base)
            // mask nothing, exactly as with a frozen table.
            if let Some(id) = base.link_id(u, v) {
                dead.insert(id as usize);
            }
        }
        let mut crashed: Vec<Vertex> = crashed.into_iter().collect();
        crashed.sort_unstable();
        crashed.dedup();
        for &w in &crashed {
            base.for_each_link(w, |_, id| {
                dead.insert(id as usize);
                true
            });
        }
        Self {
            base,
            index,
            dead,
            num_dead_links: pairs.len(),
            crashed,
        }
    }

    /// An undamaged view of `base` (0 faults), for baseline comparisons.
    #[must_use]
    pub fn intact(base: &'a T) -> Self {
        Self::new(base, [], [])
    }

    /// Number of failed links.
    #[must_use]
    pub fn num_dead_links(&self) -> usize {
        self.num_dead_links
    }

    /// Number of crashed vertices.
    #[must_use]
    pub fn num_crashed(&self) -> usize {
        self.crashed.len()
    }

    /// `true` iff `v` has crashed.
    #[must_use]
    pub fn is_crashed(&self, v: Vertex) -> bool {
        self.crashed.binary_search(&v).is_ok()
    }

    /// `true` iff the (normalized) link survives: present in the base
    /// topology, not failed, and neither endpoint crashed.
    #[must_use]
    pub fn link_alive(&self, u: Vertex, v: Vertex) -> bool {
        self.has_edge(u, v)
    }
}

impl<T: NetTopology> NetTopology for FaultedNet<'_, T> {
    #[inline]
    fn num_vertices(&self) -> u64 {
        self.base.num_vertices()
    }

    #[inline]
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.base
            .link_id(u, v)
            .is_some_and(|id| !self.link_blocked(id))
    }

    #[inline]
    fn for_each_link(&self, u: Vertex, f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        // Unfiltered by contract: dead links surface through
        // `link_blocked`, which the engine probes per entry.
        self.base.for_each_link(u, f)
    }

    #[inline]
    fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        self.base.link_id(u, v)
    }

    fn link_index(&self) -> LinkIndex {
        self.index.clone()
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        let mut out = Vec::new();
        self.base.for_each_link(u, |v, id| {
            if !self.link_blocked(id) {
                out.push(v);
            }
            true
        });
        out
    }

    #[inline]
    fn link_blocked(&self, id: LinkId) -> bool {
        self.dead.contains(id as usize) || self.base.link_blocked(id)
    }

    #[inline]
    fn cube_labeled(&self) -> bool {
        // Damage only removes links; a distance lower bound that held on
        // the base holds a fortiori on the subgraph.
        self.base.cube_labeled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::{cycle, hypercube};

    #[test]
    fn materialized_adapter() {
        let net = MaterializedNet::new(cycle(5));
        assert_eq!(net.num_vertices(), 5);
        assert!(net.has_edge(0, 4));
        assert!(!net.has_edge(0, 2));
        assert_eq!(net.neighbors(0), vec![1, 4]);
        assert!(!net.has_edge(0, 17));
        // The frozen index agrees with the live adjacency.
        let index = net.link_index();
        assert_eq!(index.num_links(), 5);
        assert!(net.link_id(0, 4).is_some());
        assert_eq!(net.link_id(0, 2), None);
        assert!(!net.cube_labeled());
    }

    #[test]
    fn sparse_hypercube_topology() {
        let g = SparseHypercube::construct_base(5, 2);
        assert_eq!(NetTopology::num_vertices(&g), 32);
        let nbrs = NetTopology::neighbors(&g, 0);
        assert_eq!(nbrs.len(), g.degree(0));
        // The implicit walk covers every rule-generated link, in the
        // rule's native neighbor order, with arithmetic ids.
        let mut walked = Vec::new();
        let mut ids = Vec::new();
        NetTopology::for_each_link(&g, 0, |v, id| {
            walked.push(v);
            ids.push(id);
            true
        });
        assert_eq!(walked, nbrs);
        for (&v, &id) in walked.iter().zip(&ids) {
            assert_eq!(NetTopology::link_id(&g, 0, v), Some(id));
            assert_eq!(NetTopology::link_id(&g, v, 0), Some(id), "symmetric");
        }
        // The index is arithmetic — no table frozen anywhere.
        assert!(matches!(NetTopology::link_index(&g), LinkIndex::Cube(_)));
    }

    #[test]
    fn sparse_link_id_is_edge_aware() {
        // G_{5,2}: cube edges the rule omits exist in the arithmetic
        // index's geometry but must not get a link id from the topology.
        let g = SparseHypercube::construct_base(5, 2);
        let LinkIndex::Cube(cube) = NetTopology::link_index(&g) else {
            panic!("sparse hypercube must use the arithmetic index");
        };
        let mut absent = None;
        for u in 0..32u64 {
            for d in 0..5u32 {
                let v = u ^ (1 << d);
                if !SparseHypercube::has_edge(&g, u, v) {
                    absent = Some((u, v));
                }
            }
        }
        let (u, v) = absent.expect("a sparse hypercube omits some cube edge");
        assert!(cube.link_id(u, v).is_some(), "geometrically a cube edge");
        assert_eq!(NetTopology::link_id(&g, u, v), None, "but not a rule edge");
    }

    #[test]
    fn implicit_cube_matches_materialized() {
        let n = 6;
        let implicit = ImplicitCubeNet::new(n);
        let mat = MaterializedNet::new(hypercube(n));
        assert_eq!(implicit.num_vertices(), mat.num_vertices());
        assert!(implicit.cube_labeled());
        for u in 0..implicit.num_vertices() {
            assert_eq!(implicit.neighbors(u), mat.neighbors(u), "vertex {u}");
            for v in 0..implicit.num_vertices() {
                assert_eq!(implicit.has_edge(u, v), mat.has_edge(u, v));
            }
        }
        assert!(!implicit.has_edge(0, 1 << n), "out of range");
        assert!(implicit.neighbors(1 << n).is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow the u32 link-id space")]
    fn implicit_cube_rejects_oversized_dimensions() {
        let _ = ImplicitCubeNet::new(29);
    }

    #[test]
    fn faulted_net_masks_dead_links() {
        let net = MaterializedNet::new(cycle(5));
        // Report the edge reversed: normalization must still match it.
        let damaged = FaultedNet::new(&net, [(1u64, 0u64)], []);
        assert!(!damaged.has_edge(0, 1));
        assert!(!damaged.link_alive(1, 0));
        assert!(damaged.has_edge(1, 2));
        assert_eq!(damaged.neighbors(0), vec![4]);
        assert_eq!(damaged.num_dead_links(), 1);
        assert_eq!(damaged.num_vertices(), 5);
    }

    #[test]
    fn faulted_net_crashes_remove_incident_links() {
        let net = MaterializedNet::new(cycle(5));
        let damaged = FaultedNet::new(&net, [], [2u64]);
        assert!(damaged.is_crashed(2));
        assert!(damaged.neighbors(2).is_empty());
        assert!(!damaged.has_edge(1, 2));
        assert!(!damaged.has_edge(2, 3));
        assert_eq!(damaged.neighbors(1), vec![0]);
        assert_eq!(damaged.num_crashed(), 1);
    }

    #[test]
    fn intact_overlay_is_transparent() {
        let net = MaterializedNet::new(cycle(5));
        let overlay = FaultedNet::intact(&net);
        for u in 0..5u64 {
            assert_eq!(overlay.neighbors(u), net.neighbors(u));
        }
        assert_eq!(overlay.num_dead_links(), 0);
        assert_eq!(overlay.num_crashed(), 0);
    }

    #[test]
    fn faulted_sparse_hypercube_rule_generated() {
        // The overlay composes with the rule-generated topology too (no
        // materialization needed — the damage bitset spans the arithmetic
        // id space).
        let g = SparseHypercube::construct_base(5, 2);
        let nbrs = NetTopology::neighbors(&g, 0);
        let first = nbrs[0];
        let damaged = FaultedNet::new(&g, [(0u64, first)], []);
        assert!(!damaged.has_edge(0, first));
        assert_eq!(damaged.neighbors(0).len(), nbrs.len() - 1);
    }

    #[test]
    fn faulted_implicit_cube() {
        let net = ImplicitCubeNet::new(4);
        let damaged = FaultedNet::new(&net, [(0u64, 1u64)], [5u64]);
        assert!(!damaged.has_edge(0, 1));
        assert!(damaged.has_edge(0, 2));
        assert!(damaged.neighbors(5).is_empty());
        assert!(!damaged.has_edge(5, 7));
        assert_eq!(damaged.num_dead_links(), 1);
        assert_eq!(damaged.num_crashed(), 1);
        assert!(damaged.cube_labeled());
    }

    #[test]
    fn nested_overlays_compose() {
        let net = MaterializedNet::new(cycle(6));
        let inner = FaultedNet::new(&net, [(0u64, 1u64)], []);
        let outer = FaultedNet::new(&inner, [(2u64, 3u64)], []);
        assert!(!outer.has_edge(0, 1), "inner damage visible through outer");
        assert!(!outer.has_edge(2, 3));
        assert!(outer.has_edge(1, 2));
        assert_eq!(outer.num_dead_links(), 1, "only the outer layer's own");
    }

    #[test]
    fn duplicate_and_phantom_damage_reports() {
        let net = MaterializedNet::new(cycle(5));
        // Duplicates collapse; phantom (non-edge) pairs are counted as
        // reported but mask nothing.
        let damaged = FaultedNet::new(&net, [(0u64, 1u64), (1u64, 0u64), (0u64, 2u64)], [3u64, 3]);
        assert_eq!(damaged.num_dead_links(), 2);
        assert_eq!(damaged.num_crashed(), 1);
        assert!(!damaged.has_edge(0, 1));
        assert!(
            !damaged.has_edge(0, 2),
            "phantom pair is not an edge anyway"
        );
        assert!(damaged.has_edge(1, 2));
    }
}
