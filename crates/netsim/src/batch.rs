//! Propose-then-commit batched admission types.
//!
//! A round's request batch is admitted in two phases instead of
//! one-at-a-time [`Engine::request`](crate::Engine::request) calls:
//!
//! 1. **Propose** — every pending request is routed by
//!    [`Engine::propose`](crate::Engine::propose) against a *read-only*
//!    view of the committed occupancy/fault state, using caller-owned
//!    [`SearchScratch`](crate::SearchScratch). Proposals are pure
//!    functions of `(committed state, request)`, so they can run on any
//!    number of worker threads in any order — the result is the same
//!    vector of [`Proposal`]s.
//! 2. **Commit** — proposals are applied **serially, in request sequence
//!    order**, by [`Engine::commit_proposal`](crate::Engine::commit_proposal).
//!    A proposal whose route still has capacity is established; one that
//!    was blocked at propose time stays blocked (capacity only shrinks
//!    within a round, so a blocked propose is final); one whose route
//!    lost capacity to an earlier-sequenced commit is a [`Conflict`]
//!    (`CommitOutcome::Conflict`) and re-proposes against the *new*
//!    committed state in the next wave.
//!
//! Waves repeat until no request is pending. Termination: within a wave
//! commits run in sequence order, so the lowest-sequenced pending
//! request proposes against exactly the state its commit validates it
//! on — it either establishes or blocks finally, never conflicts. Every
//! wave therefore concludes at least one request, bounding the wave
//! count by the batch size (in practice a handful).
//!
//! Determinism: the committed outcome and every probe event depend only
//! on the request sequence order and the committed state — never on the
//! thread schedule of the propose phase — so reports *and byte-exact
//! trace journals* are invariant under the worker count. The wave driver
//! lives in `shc-runtime` (`BatchAdmitter`); this module is the engine
//! seam it drives.

use crate::engine::{BlockReason, RouteSearch};
use crate::links::LinkId;
use crate::topology::Vertex;

/// One adaptive circuit request queued for batched admission — the
/// arguments of [`Engine::request`](crate::Engine::request), reified so
/// a round's batch can be partitioned across propose workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRequest {
    /// Source vertex.
    pub src: Vertex,
    /// Destination vertex.
    pub dst: Vertex,
    /// Maximum route length in links.
    pub max_len: u32,
}

/// A routed-but-uncommitted admission: the outcome
/// [`Engine::propose`](crate::Engine::propose) computed against the
/// committed state it saw, plus the search-effort counters a probe
/// would have recorded. Opaque outside the crate — feed it to
/// [`Engine::commit_proposal`](crate::Engine::commit_proposal) (or the
/// flow variant) in request sequence order.
#[derive(Clone, Debug)]
pub struct Proposal {
    pub(crate) src: Vertex,
    pub(crate) dst: Vertex,
    /// `Some((path, link_ids))` when a route was found; `None` when the
    /// propose-time search blocked (final — capacity only shrinks
    /// within a round).
    pub(crate) route: Option<(Vec<Vertex>, Vec<LinkId>)>,
    /// Block reason when `route` is `None`.
    pub(crate) reason: Option<BlockReason>,
    /// Which search strategy routed (or failed to route) the proposal.
    pub(crate) search: RouteSearch,
    pub(crate) expanded: u32,
    pub(crate) frontier_peak: u32,
    pub(crate) reject_link: Option<LinkId>,
}

impl Proposal {
    /// Whether the propose-phase search found a route (the commit may
    /// still turn this into a [`CommitOutcome::Conflict`]).
    #[must_use]
    pub fn is_routed(&self) -> bool {
        self.route.is_some()
    }
}

/// What committing one proposal concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The proposed route still had capacity on every link and is now
    /// established (stats + probe accounted exactly as a serial
    /// [`Engine::request`](crate::Engine::request) admission).
    Established {
        /// Route length in links.
        hops: u32,
    },
    /// The proposal was blocked at propose time; the block is final and
    /// is now accounted (stats + probe) exactly as a serial block.
    Blocked(BlockReason),
    /// An earlier-sequenced commit saturated a link on the proposed
    /// route. Nothing was accounted — the request is still pending and
    /// must re-propose against the new committed state in the next wave.
    Conflict,
}

/// What committing one **flow** proposal concluded — [`CommitOutcome`]
/// with the established arm carrying the flow handle, mirroring
/// [`FlowOutcome`](crate::FlowOutcome).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowCommitOutcome {
    /// Admitted; the flow holds its links across rounds until released.
    Established {
        /// Handle for the eventual release.
        flow: crate::FlowId,
        /// Route length in links.
        hops: u32,
    },
    /// Blocked at propose time (final, accounted).
    Blocked(BlockReason),
    /// Lost a link-capacity race to an earlier-sequenced commit; still
    /// pending, re-propose next wave.
    Conflict,
}

/// Final per-request outcome of a whole batched round — what the wave
/// driver reports once every request concluded (conflicts are internal
/// and never surface here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Established with this route length.
    Established {
        /// Route length in links.
        hops: u32,
    },
    /// Finally blocked for this reason.
    Blocked(BlockReason),
}

impl BatchOutcome {
    /// `true` when established.
    #[must_use]
    pub fn is_established(&self) -> bool {
        matches!(self, Self::Established { .. })
    }
}
