//! Property-based tests for the graph substrate: representation invariants,
//! traversal correctness against brute-force oracles, and round-trips.

use proptest::prelude::*;
use shc_graph::builders::{hypercube, prufer_to_tree};
use shc_graph::prelude::*;
use shc_graph::{domination, dot, edgelist, metrics, parallel, traversal};

/// Strategy: a random simple graph as (n, edge list) with n in [1, 24].
fn arb_graph() -> impl Strategy<Value = AdjGraph> {
    (1usize..=24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as Node, 0..n as Node), 0..=max_edges.min(60))
            .prop_map(move |edges| AdjGraph::from_edges(n, edges))
    })
}

/// Strategy: a random labeled tree via Prüfer sequences, n in [2, 32].
fn arb_tree() -> impl Strategy<Value = AdjGraph> {
    (2usize..=32).prop_flat_map(|n| {
        proptest::collection::vec(0..n, n.saturating_sub(2))
            .prop_map(move |seq| prufer_to_tree(n, &seq))
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_sorted_loopfree(g in arb_graph()) {
        for u in 0..g.num_vertices() as Node {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            prop_assert!(!nbrs.contains(&u), "no self-loop");
            for &v in nbrs {
                prop_assert!(g.has_edge(v, u), "symmetry {u}-{v}");
            }
        }
        let degree_sum: usize = (0..g.num_vertices() as Node).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges(), "handshake lemma");
    }

    #[test]
    fn csr_agrees_with_adjacency(g in arb_graph()) {
        let csr = CsrGraph::from_adj(&g);
        prop_assert_eq!(csr.num_vertices(), g.num_vertices());
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        for u in 0..g.num_vertices() as Node {
            prop_assert_eq!(csr.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn bfs_distance_satisfies_triangle_on_edges(g in arb_graph()) {
        let d0 = traversal::bfs_distances(&g, 0);
        for (u, v) in g.edge_iter() {
            let (du, dv) = (d0[u as usize], d0[v as usize]);
            if du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge endpoints differ by <=1");
            } else {
                // Edge endpoints are in the same component.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[test]
    fn shortest_path_is_shortest(g in arb_graph(), t in 0u32..24) {
        let n = g.num_vertices() as Node;
        let target = t % n;
        let d = traversal::bfs_distances(&g, 0)[target as usize];
        match traversal::shortest_path(&g, 0, target) {
            Some(p) => {
                prop_assert_eq!(p.len() as u32 - 1, d, "path length equals BFS distance");
                prop_assert!(traversal::is_simple_edge_walk(&g, &p));
                prop_assert_eq!(p[0], 0);
                prop_assert_eq!(*p.last().unwrap(), target);
            }
            None => prop_assert_eq!(d, traversal::UNREACHABLE),
        }
    }

    #[test]
    fn bounded_bfs_is_prefix_of_full_bfs(g in arb_graph(), r in 0u32..6) {
        let within = traversal::bfs_within(&g, 0, r);
        let full = traversal::bfs_distances(&g, 0);
        // Everything reported is within radius and at the right distance.
        for &(v, d) in &within {
            prop_assert!(d <= r);
            prop_assert_eq!(full[v as usize], d);
        }
        // Everything within radius is reported.
        let reported: std::collections::HashSet<Node> = within.iter().map(|&(v, _)| v).collect();
        for (v, &d) in full.iter().enumerate() {
            if d != traversal::UNREACHABLE && d <= r {
                prop_assert!(reported.contains(&(v as Node)), "vertex {v} at dist {d} missing");
            }
        }
    }

    #[test]
    fn components_partition_vertices(g in arb_graph()) {
        let (label, count) = traversal::connected_components(&g);
        prop_assert_eq!(label.len(), g.num_vertices());
        if g.num_vertices() > 0 {
            prop_assert!(count >= 1);
            prop_assert!(label.iter().all(|&l| (l as usize) < count));
            // Edges never cross components.
            for (u, v) in g.edge_iter() {
                prop_assert_eq!(label[u as usize], label[v as usize]);
            }
        }
    }

    #[test]
    fn parallel_diameter_matches_serial(g in arb_graph()) {
        prop_assert_eq!(parallel::diameter_parallel(&g, Some(3)), metrics::diameter(&g));
    }

    #[test]
    fn trees_have_n_minus_1_edges_and_are_connected(t in arb_tree()) {
        prop_assert_eq!(t.num_edges(), t.num_vertices() - 1);
        prop_assert!(traversal::is_connected(&t));
        prop_assert!(metrics::is_bipartite(&t), "trees are bipartite");
    }

    #[test]
    fn greedy_dominating_set_dominates(g in arb_tree()) {
        let s = domination::greedy_dominating_set(&g);
        prop_assert!(domination::is_dominating_set(&g, &s));
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let text = edgelist::to_edge_list(&g);
        let back = edgelist::parse_edge_list(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn serde_roundtrip(g in arb_graph()) {
        let json = serde_json::to_string(&g).unwrap();
        let back: AdjGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn dot_mentions_every_edge(g in arb_graph()) {
        let s = dot::to_dot(&g, &dot::DotOptions::named("t"));
        for (u, v) in g.edge_iter() {
            let needle = format!("{u} -- {v};");
            prop_assert!(s.contains(&needle), "missing edge line {}", needle);
        }
    }

    #[test]
    fn bitset_insert_remove_contains(keys in proptest::collection::vec(0usize..512, 0..64)) {
        let mut set = BitSet::new(512);
        let mut model = std::collections::BTreeSet::new();
        for &k in &keys {
            prop_assert_eq!(set.insert(k), model.insert(k));
        }
        prop_assert_eq!(set.count(), model.len());
        prop_assert_eq!(set.to_vec(), model.iter().copied().collect::<Vec<_>>());
        for &k in &keys {
            prop_assert_eq!(set.remove(k), model.remove(&k));
        }
        prop_assert!(set.is_empty());
    }

    #[test]
    fn hypercube_bounded_bfs_counts_binomials(n in 1u32..7, r in 0u32..4) {
        let g = hypercube(n);
        let r = r.min(n);
        let within = traversal::bfs_within(&g, 0, r);
        let expect: usize = (0..=r).map(|i| binom(n, i)).sum();
        prop_assert_eq!(within.len(), expect);
    }
}

fn binom(n: u32, k: u32) -> usize {
    if k > n {
        return 0;
    }
    let mut num = 1usize;
    let mut den = 1usize;
    for i in 0..k as usize {
        num *= n as usize - i;
        den *= i + 1;
    }
    num / den
}
