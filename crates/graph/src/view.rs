//! The [`GraphView`] trait: a minimal read-only interface over undirected
//! graphs, implemented by both the mutable [`crate::AdjGraph`] and the frozen
//! [`crate::CsrGraph`]. All traversal and metric algorithms in this crate are
//! generic over it.

/// Node identifier. Materialized graphs in this workspace stay below
/// `2^32` vertices, so a 32-bit id halves adjacency memory compared to
/// `usize` (Rust Performance Book, "Smaller Integers").
pub type Node = u32;

/// Read-only access to an undirected graph with vertices `0..num_vertices()`.
///
/// Implementations must report each undirected edge `{u, v}` in both
/// adjacency lists, and the lists must be sorted ascending and duplicate-free
/// so that `has_edge` can binary-search.
pub trait GraphView {
    /// Number of vertices; valid node ids are `0..num_vertices()`.
    fn num_vertices(&self) -> usize;

    /// Sorted, duplicate-free neighbor list of `u`.
    fn neighbors(&self, u: Node) -> &[Node];

    /// Number of undirected edges.
    fn num_edges(&self) -> usize;

    /// Degree of vertex `u`.
    fn degree(&self, u: Node) -> usize {
        self.neighbors(u).len()
    }

    /// Edge test via binary search over the (sorted) adjacency of `u`.
    fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ(G); 0 for the empty graph.
    fn max_degree(&self) -> usize {
        (0..self.num_vertices() as Node)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree δ(G); 0 for the empty graph.
    fn min_degree(&self) -> usize {
        (0..self.num_vertices() as Node)
            .map(|u| self.degree(u))
            .min()
            .unwrap_or(0)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    fn edge_iter(&self) -> EdgeIter<'_, Self>
    where
        Self: Sized,
    {
        EdgeIter {
            graph: self,
            u: 0,
            idx: 0,
        }
    }
}

/// Iterator over undirected edges `(u, v)`, `u < v`, produced by
/// [`GraphView::edge_iter`].
pub struct EdgeIter<'a, G: GraphView> {
    graph: &'a G,
    u: Node,
    idx: usize,
}

impl<G: GraphView> Iterator for EdgeIter<'_, G> {
    type Item = (Node, Node);

    fn next(&mut self) -> Option<(Node, Node)> {
        let n = self.graph.num_vertices() as Node;
        while self.u < n {
            let nbrs = self.graph.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if v > self.u {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}
