//! Breadth-first traversal primitives: single-source and bounded BFS,
//! shortest-path extraction, and connected components.
//!
//! Distances use `u32::MAX` as the "unreachable" sentinel to keep the
//! distance array compact (Rust Performance Book, "Smaller Integers").

use crate::view::{GraphView, Node};
use std::collections::VecDeque;

/// Sentinel distance for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Distances from `source` to every vertex (`UNREACHABLE` if disconnected).
#[must_use]
pub fn bfs_distances<G: GraphView>(g: &G, source: Node) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS truncated at `radius`: returns `(vertex, distance)` pairs for every
/// vertex within `radius` of `source`, in non-decreasing distance order
/// (including the source at distance 0).
///
/// Used by the Phase-1 relay search in `shc-core::routing`, where the paper's
/// schemes only ever look `k - 1` hops away.
#[must_use]
pub fn bfs_within<G: GraphView>(g: &G, source: Node, radius: u32) -> Vec<(Node, u32)> {
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    order.push((source, 0));
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                order.push((v, du + 1));
                queue.push_back(v);
            }
        }
    }
    order
}

/// One shortest path from `source` to `target` (inclusive of both ends), or
/// `None` if unreachable. Ties are broken toward the smallest predecessor id,
/// making the result deterministic.
#[must_use]
pub fn shortest_path<G: GraphView>(g: &G, source: Node, target: Node) -> Option<Vec<Node>> {
    if source == target {
        return Some(vec![source]);
    }
    let mut parent = vec![Node::MAX; g.num_vertices()];
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    'outer: while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = dist[u as usize] + 1;
                parent[v as usize] = u;
                if v == target {
                    break 'outer;
                }
                queue.push_back(v);
            }
        }
    }
    if dist[target as usize] == UNREACHABLE {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Graph distance between two vertices, or `None` if disconnected.
#[must_use]
pub fn distance<G: GraphView>(g: &G, u: Node, v: Node) -> Option<u32> {
    let d = bfs_distances(g, u)[v as usize];
    (d != UNREACHABLE).then_some(d)
}

/// Multi-source BFS: distance to the nearest of `sources`.
#[must_use]
pub fn multi_source_bfs<G: GraphView>(g: &G, sources: &[Node]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected-component labels (`0..k`) per vertex, plus the component count.
#[must_use]
pub fn connected_components<G: GraphView>(g: &G) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as Node {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// `true` iff the graph is connected (the empty graph counts as connected).
#[must_use]
pub fn is_connected<G: GraphView>(g: &G) -> bool {
    g.num_vertices() == 0 || connected_components(g).1 == 1
}

/// Checks whether `path` is a valid walk in `g` (consecutive entries
/// adjacent) with no repeated edge. The k-line model requires calls to be
/// routed along such walks; the broadcast validator uses this.
#[must_use]
pub fn is_simple_edge_walk<G: GraphView>(g: &G, path: &[Node]) -> bool {
    if path.is_empty() {
        return false;
    }
    let mut seen = std::collections::HashSet::with_capacity(path.len());
    for w in path.windows(2) {
        if !g.has_edge(w[0], w[1]) {
            return false;
        }
        let key = if w[0] < w[1] {
            (w[0], w[1])
        } else {
            (w[1], w[0])
        };
        if !seen.insert(key) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, hypercube, path as path_graph, theorem1_tree};
    use crate::AdjGraph;

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = AdjGraph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn hypercube_distance_is_hamming() {
        let g = hypercube(5);
        let d = bfs_distances(&g, 0);
        for (v, &dist_v) in d.iter().enumerate() {
            assert_eq!(dist_v, (v as u32).count_ones(), "vertex {v:05b}");
        }
    }

    #[test]
    fn bounded_bfs_respects_radius() {
        let g = hypercube(4);
        let within = bfs_within(&g, 0, 2);
        // |B(0, 2)| in Q4 = 1 + 4 + 6 = 11.
        assert_eq!(within.len(), 11);
        assert!(within
            .iter()
            .all(|&(v, d)| { d <= 2 && (v).count_ones() == d }));
        // Non-decreasing distance order.
        assert!(within.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn bounded_bfs_radius_zero() {
        let g = cycle(5);
        assert_eq!(bfs_within(&g, 3, 0), vec![(3, 0)]);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = cycle(6);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.len(), 4); // distance 3
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 3);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_same_vertex() {
        let g = cycle(4);
        assert_eq!(shortest_path(&g, 2, 2), Some(vec![2]));
    }

    #[test]
    fn shortest_path_disconnected() {
        let g = AdjGraph::from_edges(3, [(0, 1)]);
        assert_eq!(shortest_path(&g, 0, 2), None);
        assert_eq!(distance(&g, 0, 2), None);
        assert_eq!(distance(&g, 0, 1), Some(1));
    }

    #[test]
    fn multi_source_nearest() {
        let g = path_graph(7);
        let d = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn components() {
        let g = AdjGraph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let (label, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[1], label[2]);
        assert_eq!(label[4], label[5]);
        assert_ne!(label[0], label[3]);
        assert_ne!(label[0], label[4]);
        assert!(!is_connected(&g));
        assert!(is_connected(&theorem1_tree(3)));
    }

    #[test]
    fn edge_walk_validation() {
        let g = cycle(5);
        assert!(is_simple_edge_walk(&g, &[0, 1, 2]));
        assert!(is_simple_edge_walk(&g, &[0])); // trivial walk
        assert!(!is_simple_edge_walk(&g, &[0, 2]), "non-adjacent hop");
        assert!(!is_simple_edge_walk(&g, &[0, 1, 0]), "repeated edge");
        assert!(!is_simple_edge_walk(&g, &[]), "empty walk");
        // Repeated vertex with distinct edges is allowed (switching through).
        let star = crate::builders::star(4);
        assert!(is_simple_edge_walk(&star, &[1, 0, 2]));
    }
}
