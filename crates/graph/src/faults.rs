//! Edge-failure injection for robustness studies: remove a random subset
//! of edges (optionally keeping the graph connected), as used by the
//! fault-tolerance experiments on sparse hypercubes.

use crate::adjacency::AdjGraph;
use crate::traversal::is_connected;
use crate::view::{GraphView, Node};
use rand::seq::SliceRandom;
use rand::Rng;

/// Removes up to `count` uniformly random edges. Returns the damaged graph
/// and the list of removed edges.
#[must_use]
pub fn remove_random_edges<R: Rng>(
    g: &AdjGraph,
    count: usize,
    rng: &mut R,
) -> (AdjGraph, Vec<(Node, Node)>) {
    let mut edges: Vec<(Node, Node)> = g.edge_iter().collect();
    edges.shuffle(rng);
    let removed: Vec<(Node, Node)> = edges.into_iter().take(count).collect();
    let mut damaged = g.clone();
    for &(u, v) in &removed {
        damaged.remove_edge(u, v);
    }
    (damaged, removed)
}

/// Removes up to `count` random edges while keeping the graph connected:
/// candidate removals that would disconnect are skipped. Returns the
/// damaged graph and the removed edges (possibly fewer than `count` when
/// the graph runs out of non-bridge edges).
#[must_use]
pub fn remove_random_edges_connected<R: Rng>(
    g: &AdjGraph,
    count: usize,
    rng: &mut R,
) -> (AdjGraph, Vec<(Node, Node)>) {
    let mut edges: Vec<(Node, Node)> = g.edge_iter().collect();
    edges.shuffle(rng);
    let mut damaged = g.clone();
    let mut removed = Vec::with_capacity(count);
    for (u, v) in edges {
        if removed.len() == count {
            break;
        }
        damaged.remove_edge(u, v);
        if is_connected(&damaged) {
            removed.push((u, v));
        } else {
            damaged.add_edge(u, v);
        }
    }
    (damaged, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, hypercube, path};
    use rand::rngs::mock::StepRng;

    #[test]
    fn removes_requested_count() {
        let g = hypercube(4);
        let mut rng = StepRng::new(3, 7);
        let (damaged, removed) = remove_random_edges(&g, 5, &mut rng);
        assert_eq!(removed.len(), 5);
        assert_eq!(damaged.num_edges(), g.num_edges() - 5);
        for &(u, v) in &removed {
            assert!(!damaged.has_edge(u, v));
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn removal_capped_by_edge_count() {
        let g = path(4);
        let mut rng = StepRng::new(1, 1);
        let (damaged, removed) = remove_random_edges(&g, 100, &mut rng);
        assert_eq!(removed.len(), 3);
        assert_eq!(damaged.num_edges(), 0);
    }

    #[test]
    fn connected_variant_preserves_connectivity() {
        let g = hypercube(4);
        let mut rng = StepRng::new(99, 0x9E3779B97F4A7C15);
        let (damaged, removed) = remove_random_edges_connected(&g, 10, &mut rng);
        assert_eq!(removed.len(), 10, "Q4 has plenty of non-bridge edges");
        assert!(is_connected(&damaged));
    }

    #[test]
    fn connected_variant_skips_bridges() {
        // Every edge of a path is a bridge: nothing can be removed.
        let g = path(6);
        let mut rng = StepRng::new(5, 11);
        let (damaged, removed) = remove_random_edges_connected(&g, 3, &mut rng);
        assert!(removed.is_empty());
        assert_eq!(damaged.num_edges(), 5);
    }

    #[test]
    fn cycle_loses_at_most_one_edge_connected() {
        // A cycle tolerates exactly one removal before everything bridges.
        let g = cycle(8);
        let mut rng = StepRng::new(17, 23);
        let (damaged, removed) = remove_random_edges_connected(&g, 5, &mut rng);
        assert_eq!(removed.len(), 1);
        assert!(is_connected(&damaged));
    }
}
