//! Thread-parallel versions of the all-sources sweeps (eccentricities,
//! diameter) using crossbeam scoped threads over chunked source ranges.
//!
//! The pattern follows the hpc-parallel guides: embarrassingly parallel
//! sweeps are split into contiguous chunks, one per worker, with results
//! merged through a `parking_lot::Mutex`-protected accumulator. No unsafe,
//! no shared mutable state beyond the accumulator.

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::view::{GraphView, Node};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Picks a worker count: respects the explicit request, otherwise the
/// available parallelism (capped by the amount of work).
fn worker_count(requested: Option<usize>, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    requested.unwrap_or(hw).clamp(1, work_items.max(1))
}

/// Parallel eccentricities; `None` if the graph is disconnected.
///
/// `threads = None` uses the machine's available parallelism.
///
/// Disconnection is detected by the *first* BFS that sees an unreachable
/// vertex and shared through an [`AtomicBool`]; sibling workers check it
/// between sources, so a disconnected graph aborts after O(one BFS per
/// worker) instead of every worker completing its full O(n·m) sweep.
#[must_use]
pub fn eccentricities_parallel<G: GraphView + Sync>(
    g: &G,
    threads: Option<usize>,
) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    if n == 0 {
        return Some(Vec::new());
    }
    let workers = worker_count(threads, n);
    let chunk = n.div_ceil(workers);
    let ecc = Mutex::new(vec![0u32; n]);
    let disconnected = AtomicBool::new(false);

    crossbeam::scope(|scope| {
        for w in 0..workers {
            let range = (w * chunk)..(((w + 1) * chunk).min(n));
            let ecc = &ecc;
            let disconnected = &disconnected;
            scope.spawn(move |_| {
                let mut local = Vec::with_capacity(range.len());
                for u in range.clone() {
                    // A sibling already proved disconnection: the result
                    // is `None` regardless, stop burning BFS sweeps.
                    if disconnected.load(Ordering::Relaxed) {
                        return;
                    }
                    let dist = bfs_distances(g, u as Node);
                    let mut max = 0u32;
                    for &d in &dist {
                        if d == UNREACHABLE {
                            disconnected.store(true, Ordering::Relaxed);
                            return;
                        }
                        max = max.max(d);
                    }
                    local.push(max);
                }
                let mut guard = ecc.lock();
                guard[range].copy_from_slice(&local);
            });
        }
    })
    .expect("worker panicked");

    if disconnected.load(Ordering::Relaxed) {
        None
    } else {
        Some(ecc.into_inner())
    }
}

/// Parallel exact diameter; `None` if disconnected.
#[must_use]
pub fn diameter_parallel<G: GraphView + Sync>(g: &G, threads: Option<usize>) -> Option<u32> {
    if g.num_vertices() == 0 {
        return Some(0);
    }
    eccentricities_parallel(g, threads).map(|e| e.into_iter().max().unwrap_or(0))
}

/// Runs `f` over `0..n` in parallel chunks, collecting per-index results.
/// Generic fan-out helper reused by validation sweeps in other crates.
#[must_use]
pub fn par_map_indexed<T, F>(n: usize, threads: Option<usize>, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(threads, n);
    let chunk = n.div_ceil(workers);
    let out = Mutex::new(vec![T::default(); n]);
    crossbeam::scope(|scope| {
        for w in 0..workers {
            let range = (w * chunk)..(((w + 1) * chunk).min(n));
            let out = &out;
            let f = &f;
            scope.spawn(move |_| {
                let local: Vec<T> = range.clone().map(f).collect();
                let mut guard = out.lock();
                guard[range].clone_from_slice(&local);
            });
        }
    })
    .expect("worker panicked");
    out.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, hypercube, theorem1_tree};
    use crate::metrics;
    use crate::AdjGraph;

    #[test]
    fn parallel_matches_serial_diameter() {
        for g in [hypercube(7), cycle(100).clone(), theorem1_tree(4)] {
            assert_eq!(
                diameter_parallel(&g, Some(4)),
                metrics::diameter(&g),
                "parallel vs serial diameter"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_eccentricities() {
        let g = hypercube(6);
        assert_eq!(
            eccentricities_parallel(&g, Some(3)),
            metrics::eccentricities(&g)
        );
    }

    #[test]
    fn parallel_disconnected_is_none() {
        let g = AdjGraph::from_edges(5, [(0, 1), (2, 3)]);
        assert_eq!(diameter_parallel(&g, Some(2)), None);
    }

    /// Wrapper that counts `neighbors()` calls — a machine-independent
    /// proxy for BFS work done by the sweep.
    struct CountingView<'a> {
        inner: &'a AdjGraph,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl GraphView for CountingView<'_> {
        fn num_vertices(&self) -> usize {
            self.inner.num_vertices()
        }
        fn neighbors(&self, u: Node) -> &[Node] {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.neighbors(u)
        }
        fn num_edges(&self) -> usize {
            self.inner.num_edges()
        }
    }

    #[test]
    fn parallel_large_disconnected_aborts_early() {
        // Two disjoint hypercubes: every BFS sees half the graph as
        // unreachable, so the very first source per worker trips the
        // shared flag and siblings stop between sources. Without the
        // early-out, all 2048 sweeps run: ~2M neighbor scans. With it,
        // each of the 4 workers finishes at most the sweep it is in
        // (~1024 scans each, plus a few in flight when the flag lands).
        let q = hypercube(10);
        let mut g = AdjGraph::with_vertices(2048);
        for (u, v) in q.edge_iter() {
            g.add_edge(u, v);
            g.add_edge(u + 1024, v + 1024);
        }
        let counting = CountingView {
            inner: &g,
            calls: std::sync::atomic::AtomicUsize::new(0),
        };
        assert_eq!(eccentricities_parallel(&counting, Some(4)), None);
        let calls = counting.calls.load(Ordering::Relaxed);
        assert!(
            calls < 100_000,
            "disconnected sweep did {calls} neighbor scans — early abort regressed"
        );
        assert_eq!(diameter_parallel(&g, Some(4)), None);
    }

    #[test]
    fn parallel_single_thread_ok() {
        let g = cycle(9);
        assert_eq!(diameter_parallel(&g, Some(1)), Some(4));
    }

    #[test]
    fn parallel_empty_graph() {
        let g = AdjGraph::with_vertices(0);
        assert_eq!(diameter_parallel(&g, None), Some(0));
    }

    #[test]
    fn par_map_identity() {
        let v = par_map_indexed(1000, Some(7), |i| i * 2);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn par_map_zero_items() {
        let v: Vec<usize> = par_map_indexed(0, None, |i| i);
        assert!(v.is_empty());
    }
}
