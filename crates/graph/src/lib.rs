//! # shc-graph — graph substrate for the sparse-hypercube reproduction
//!
//! Self-contained undirected graph library backing the reproduction of
//! Fujita & Farley, *"Sparse Hypercube — a minimal k-line broadcast graph"*
//! (IPPS/SPDP'99; DAM 127, 2003). No external graph dependency is used: the
//! paper needs compact representations, BFS-family traversal, diameter /
//! degree metrics, dominating-set machinery (Condition A) and DOT output,
//! all provided here.
//!
//! ## Layout
//! * [`bitset`] — compact vertex sets.
//! * [`view`] — the [`GraphView`] read interface and [`Node`] id type.
//! * [`adjacency`] / [`csr`] — mutable and frozen representations.
//! * [`builders`] — hypercubes, the Theorem-1 tree, and classical families.
//! * [`traversal`] — BFS, bounded BFS, shortest paths, components.
//! * [`metrics`] — eccentricity/diameter/radius, degree stats, bipartiteness.
//! * [`cube`] — the cube metric on vertex labels (Hamming distance as an
//!   admissible routing heuristic).
//! * [`parallel`] — crossbeam-parallel sweeps (diameter, generic fan-out).
//! * [`domination`] — dominating sets and exact domatic partitions.
//! * [`dot`] / [`edgelist`] — interchange formats.
//!
//! ## Example
//!
//! Build `Q_4`, freeze it to CSR, and query the structural basics every
//! upper layer relies on:
//!
//! ```
//! use shc_graph::{builders::hypercube, metrics, CsrGraph, GraphView};
//!
//! let q4 = hypercube(4);
//! assert_eq!(q4.num_vertices(), 16);
//! assert_eq!(q4.max_degree(), 4);
//! assert_eq!(metrics::diameter(&q4), Some(4));
//!
//! // The frozen CSR view answers the same queries, plus stable edge ids.
//! let csr = CsrGraph::from_view(&q4);
//! assert_eq!(csr.num_edges(), 32);
//! assert!(csr.has_edge(0, 8) && !csr.has_edge(0, 3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod bitset;
pub mod builders;
pub mod csr;
pub mod cube;
pub mod domination;
pub mod dot;
pub mod edgelist;
pub mod faults;
pub mod metrics;
pub mod parallel;
pub mod traversal;
pub mod view;

pub use adjacency::AdjGraph;
pub use bitset::BitSet;
pub use csr::{CsrGraph, EdgeId};
pub use view::{GraphView, Node};

/// Convenient glob-import of the common types and traits.
pub mod prelude {
    pub use crate::adjacency::AdjGraph;
    pub use crate::bitset::BitSet;
    pub use crate::csr::CsrGraph;
    pub use crate::view::{GraphView, Node};
}
