//! Frozen compressed-sparse-row graph.
//!
//! [`CsrGraph`] is the read-optimized form used by hot loops (BFS sweeps,
//! diameter computation, the netsim engine): one offsets array and one
//! targets array, contiguous in memory, so neighbor scans are a single
//! cache-friendly slice walk.

use crate::adjacency::AdjGraph;
use crate::view::{GraphView, Node};
use serde::{Deserialize, Serialize};

/// Immutable CSR representation of an undirected graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` indexes `targets` for vertex `u`.
    offsets: Box<[usize]>,
    /// Concatenated sorted adjacency lists.
    targets: Box<[Node]>,
    num_edges: usize,
}

impl CsrGraph {
    /// Freezes an [`AdjGraph`] into CSR form.
    #[must_use]
    pub fn from_adj(g: &AdjGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0usize);
        for u in 0..n as Node {
            targets.extend_from_slice(g.neighbors(u));
            offsets.push(targets.len());
        }
        Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            num_edges: g.num_edges(),
        }
    }

    /// Builds directly from an edge list (convenience for tests/benches).
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (Node, Node)>) -> Self {
        Self::from_adj(&AdjGraph::from_edges(n, edges))
    }

    /// Total length of the target array (`2 |E|`).
    #[must_use]
    pub fn target_len(&self) -> usize {
        self.targets.len()
    }
}

impl From<&AdjGraph> for CsrGraph {
    fn from(g: &AdjGraph) -> Self {
        Self::from_adj(g)
    }
}

impl GraphView for CsrGraph {
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn neighbors(&self, u: Node) -> &[Node] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjGraph {
        AdjGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)])
    }

    #[test]
    fn csr_matches_adj() {
        let adj = sample();
        let csr = CsrGraph::from_adj(&adj);
        assert_eq!(csr.num_vertices(), adj.num_vertices());
        assert_eq!(csr.num_edges(), adj.num_edges());
        for u in 0..adj.num_vertices() as Node {
            assert_eq!(csr.neighbors(u), adj.neighbors(u), "vertex {u}");
        }
    }

    #[test]
    fn csr_edge_queries() {
        let csr = CsrGraph::from_adj(&sample());
        assert!(csr.has_edge(0, 2));
        assert!(csr.has_edge(4, 3));
        assert!(!csr.has_edge(0, 4));
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(3), 1);
        assert_eq!(csr.target_len(), 8);
    }

    #[test]
    fn csr_empty_graph() {
        let csr = CsrGraph::from_adj(&AdjGraph::with_vertices(0));
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn csr_edge_iter_matches() {
        let adj = sample();
        let csr = CsrGraph::from_adj(&adj);
        let a: Vec<_> = adj.edge_iter().collect();
        let c: Vec<_> = csr.edge_iter().collect();
        assert_eq!(a, c);
    }

    #[test]
    fn serde_roundtrip() {
        let csr = CsrGraph::from_adj(&sample());
        let json = serde_json::to_string(&csr).unwrap();
        let back: CsrGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(csr, back);
    }
}
