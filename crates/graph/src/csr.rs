//! Frozen compressed-sparse-row graph.
//!
//! [`CsrGraph`] is the read-optimized form used by hot loops (BFS sweeps,
//! diameter computation, the netsim engine): one offsets array and one
//! targets array, contiguous in memory, so neighbor scans are a single
//! cache-friendly slice walk. Each target entry additionally carries a
//! stable undirected **edge id** in `0..num_edges()`, so per-edge state
//! (link occupancy, fault masks) can live in flat arrays instead of
//! hash maps keyed by vertex pairs.

use crate::adjacency::AdjGraph;
use crate::view::{GraphView, Node};
use serde::{Deserialize, Serialize};

/// Stable identifier of an undirected edge in a [`CsrGraph`], dense in
/// `0..num_edges()`. Ids are assigned in [`GraphView::edge_iter`] order
/// (vertex-major, `u < v`), so they are reproducible across freezes of
/// the same graph.
pub type EdgeId = u32;

/// Immutable CSR representation of an undirected graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` indexes `targets` for vertex `u`.
    offsets: Box<[usize]>,
    /// Concatenated sorted adjacency lists.
    targets: Box<[Node]>,
    /// `edge_ids[i]` is the undirected edge id of the edge `{u, targets[i]}`
    /// (same id on both directions of the edge).
    edge_ids: Box<[EdgeId]>,
    num_edges: usize,
}

impl CsrGraph {
    /// Freezes an [`AdjGraph`] into CSR form. `AdjGraph` keeps its
    /// adjacency sorted, so this is allocation-only.
    #[must_use]
    pub fn from_adj(g: &AdjGraph) -> Self {
        Self::from_view(g)
    }

    /// Freezes any [`GraphView`] into CSR form. Neighbor lists are copied
    /// and — if the source violates the sorted-adjacency contract —
    /// sorted during freezing, so the binary-search-based edge and
    /// edge-id lookups on the frozen graph are always sound.
    ///
    /// # Panics
    /// Panics if an edge appears in only one endpoint's adjacency list or
    /// if a list contains duplicates (a malformed [`GraphView`]).
    #[must_use]
    pub fn from_view<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0usize);
        for u in 0..n as Node {
            let start = targets.len();
            targets.extend_from_slice(g.neighbors(u));
            let slice = &mut targets[start..];
            if !slice.windows(2).all(|w| w[0] < w[1]) {
                slice.sort_unstable();
                assert!(
                    slice.windows(2).all(|w| w[0] < w[1]),
                    "adjacency list of vertex {u} contains duplicates"
                );
            }
            offsets.push(targets.len());
        }
        // Second pass: assign dense undirected edge ids in edge_iter
        // order. For `u < v` the id is fresh; the mirror direction finds
        // it by binary search in `v`'s (already numbered) slice.
        let mut edge_ids = vec![EdgeId::MAX; targets.len()];
        let mut next: EdgeId = 0;
        for u in 0..n {
            for i in offsets[u]..offsets[u + 1] {
                let v = targets[i] as usize;
                if v > u {
                    edge_ids[i] = next;
                    next = next.checked_add(1).expect("more than 2^32 edges");
                } else {
                    let back = targets[offsets[v]..offsets[v + 1]]
                        .binary_search(&(u as Node))
                        .unwrap_or_else(|_| {
                            panic!("edge ({v},{u}) missing its mirror — asymmetric adjacency")
                        });
                    edge_ids[i] = edge_ids[offsets[v] + back];
                }
            }
        }
        assert_eq!(
            next as usize,
            targets.len() / 2,
            "edge count mismatch while freezing (asymmetric adjacency?)"
        );
        Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            edge_ids: edge_ids.into_boxed_slice(),
            num_edges: next as usize,
        }
    }

    /// Builds directly from an edge list (convenience for tests/benches).
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (Node, Node)>) -> Self {
        Self::from_adj(&AdjGraph::from_edges(n, edges))
    }

    /// Total length of the target array (`2 |E|`).
    #[must_use]
    pub fn target_len(&self) -> usize {
        self.targets.len()
    }

    /// Stable id of the undirected edge `{u, v}`, or `None` when absent
    /// (including out-of-range endpoints). `O(log deg)` binary search.
    #[must_use]
    pub fn edge_id(&self, u: Node, v: Node) -> Option<EdgeId> {
        let ui = u as usize;
        if ui + 1 >= self.offsets.len() || (v as usize) + 1 >= self.offsets.len() {
            return None;
        }
        let range = self.offsets[ui]..self.offsets[ui + 1];
        self.targets[range.clone()]
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_ids[range.start + i])
    }

    /// The edge ids parallel to [`GraphView::neighbors`]`(u)`:
    /// `edge_ids_of(u)[i]` is the id of edge `{u, neighbors(u)[i]}`.
    #[must_use]
    pub fn edge_ids_of(&self, u: Node) -> &[EdgeId] {
        let u = u as usize;
        &self.edge_ids[self.offsets[u]..self.offsets[u + 1]]
    }
}

impl From<&AdjGraph> for CsrGraph {
    fn from(g: &AdjGraph) -> Self {
        Self::from_adj(g)
    }
}

impl GraphView for CsrGraph {
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn neighbors(&self, u: Node) -> &[Node] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjGraph {
        AdjGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)])
    }

    #[test]
    fn csr_matches_adj() {
        let adj = sample();
        let csr = CsrGraph::from_adj(&adj);
        assert_eq!(csr.num_vertices(), adj.num_vertices());
        assert_eq!(csr.num_edges(), adj.num_edges());
        for u in 0..adj.num_vertices() as Node {
            assert_eq!(csr.neighbors(u), adj.neighbors(u), "vertex {u}");
        }
    }

    #[test]
    fn csr_edge_queries() {
        let csr = CsrGraph::from_adj(&sample());
        assert!(csr.has_edge(0, 2));
        assert!(csr.has_edge(4, 3));
        assert!(!csr.has_edge(0, 4));
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(3), 1);
        assert_eq!(csr.target_len(), 8);
    }

    #[test]
    fn csr_empty_graph() {
        let csr = CsrGraph::from_adj(&AdjGraph::with_vertices(0));
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn csr_edge_iter_matches() {
        let adj = sample();
        let csr = CsrGraph::from_adj(&adj);
        let a: Vec<_> = adj.edge_iter().collect();
        let c: Vec<_> = csr.edge_iter().collect();
        assert_eq!(a, c);
    }

    #[test]
    fn edge_ids_are_dense_stable_and_symmetric() {
        let csr = CsrGraph::from_adj(&sample());
        // Ids follow edge_iter order: (0,1)=0, (0,2)=1, (1,2)=2, (3,4)=3.
        let expected: Vec<(Node, Node)> = csr.edge_iter().collect();
        for (id, &(u, v)) in expected.iter().enumerate() {
            assert_eq!(csr.edge_id(u, v), Some(id as EdgeId));
            assert_eq!(csr.edge_id(v, u), Some(id as EdgeId), "symmetric");
        }
        assert_eq!(csr.edge_id(0, 4), None);
        assert_eq!(csr.edge_id(0, 99), None, "out of range");
        assert_eq!(csr.edge_id(99, 0), None, "out of range");
    }

    #[test]
    fn edge_ids_of_parallels_neighbors() {
        let csr = CsrGraph::from_adj(&sample());
        for u in 0..csr.num_vertices() as Node {
            let nbrs = csr.neighbors(u);
            let ids = csr.edge_ids_of(u);
            assert_eq!(nbrs.len(), ids.len());
            for (&v, &id) in nbrs.iter().zip(ids) {
                assert_eq!(csr.edge_id(u, v), Some(id));
            }
        }
    }

    /// A GraphView whose adjacency deliberately violates the sorted
    /// contract: freezing must repair it so binary search stays sound.
    struct UnsortedView {
        adj: Vec<Vec<Node>>,
    }

    impl GraphView for UnsortedView {
        fn num_vertices(&self) -> usize {
            self.adj.len()
        }
        fn neighbors(&self, u: Node) -> &[Node] {
            &self.adj[u as usize]
        }
        fn num_edges(&self) -> usize {
            self.adj.iter().map(Vec::len).sum::<usize>() / 2
        }
    }

    #[test]
    fn from_view_sorts_unsorted_insertion_order() {
        // Triangle 0-1-2 plus pendant 3, every list deliberately unsorted.
        let view = UnsortedView {
            adj: vec![vec![2, 3, 1], vec![2, 0], vec![0, 1], vec![0]],
        };
        let csr = CsrGraph::from_view(&view);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(csr.num_edges(), 4);
        // Binary-search-based lookups are sound after the repair.
        assert!(csr.has_edge(0, 3));
        assert!(!csr.has_edge(1, 3));
        assert_eq!(csr.edge_id(3, 0), csr.edge_id(0, 3));
        let ids: Vec<_> = (0..4)
            .map(|u| csr.edge_ids_of(u).to_vec())
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(*ids.iter().max().unwrap() as usize, csr.num_edges() - 1);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn from_view_rejects_duplicate_neighbors() {
        let view = UnsortedView {
            adj: vec![vec![1, 1], vec![0, 0]],
        };
        let _ = CsrGraph::from_view(&view);
    }

    #[test]
    fn serde_roundtrip() {
        let csr = CsrGraph::from_adj(&sample());
        let json = serde_json::to_string(&csr).unwrap();
        let back: CsrGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(csr, back);
    }
}
