//! Cube-metric helpers: treating vertex ids as binary-cube coordinates.
//!
//! Every graph in this workspace that descends from the binary `n`-cube —
//! `Q_n` itself, the paper's sparse hypercubes, and any damaged overlay of
//! either — labels vertex `u` with its cube coordinate, so the Hamming
//! distance between two ids is a *lower bound* on their graph distance
//! whenever every edge flips exactly one bit (each hop changes the Hamming
//! distance to a fixed target by exactly ±1). That lower bound is what
//! makes Hamming distance an admissible, consistent A* heuristic for
//! shortest-path search on these topologies; `shc-netsim` keys its
//! distance-capped A* fast path off [`is_cube_labeled`].
//!
//! ```
//! use shc_graph::builders::hypercube;
//! use shc_graph::cube::{cube_dimension, hamming_distance, is_cube_labeled};
//!
//! assert_eq!(hamming_distance(0b0110, 0b0011), 2);
//! let q4 = hypercube(4);
//! assert!(is_cube_labeled(&q4));
//! assert_eq!(cube_dimension(&q4), Some(4));
//! ```

use crate::view::GraphView;

/// Hamming distance between two cube coordinates — the number of bit
/// positions where `u` and `v` differ.
#[must_use]
pub fn hamming_distance(u: u64, v: u64) -> u32 {
    (u ^ v).count_ones()
}

/// Rank of the dimension-`d` cube edge at `v` among all dimension-`d`
/// edges: `v` with bit `d` deleted, i.e. the index of the edge's lower
/// endpoint among the `2^(n-1)` vertices whose bit `d` is clear. Either
/// endpoint of the edge gives the same rank (the differing bit is the
/// one deleted). This is the `rank(v, d)` of the arithmetic link-id
/// scheme `id = d · 2^(n-1) + rank(v, d)` that lets `shc-netsim` index
/// cube links without materializing `Q_n`.
///
/// ```
/// use shc_graph::cube::edge_rank;
/// assert_eq!(edge_rank(0b1011, 1), 0b101);
/// assert_eq!(edge_rank(0b1001, 1), edge_rank(0b1011, 1), "endpoint-free");
/// ```
#[inline]
#[must_use]
pub fn edge_rank(v: u64, d: u32) -> u64 {
    ((v >> (d + 1)) << d) | (v & ((1u64 << d) - 1))
}

/// `true` when every edge of `g` joins vertices at Hamming distance
/// exactly 1 — i.e. the vertex ids are coordinates of a subgraph of some
/// binary cube. On such graphs [`hamming_distance`] lower-bounds the
/// graph distance between any two vertices (and exactly equals it on the
/// full cube), so it is an admissible and consistent shortest-path
/// heuristic. Vacuously `true` for edgeless graphs.
#[must_use]
pub fn is_cube_labeled<G: GraphView>(g: &G) -> bool {
    g.edge_iter()
        .all(|(u, v)| hamming_distance(u64::from(u), u64::from(v)) == 1)
}

/// The dimension `d` of the smallest binary cube `Q_d` that `g` is a
/// spanning subgraph of: requires `num_vertices == 2^d` and every edge at
/// Hamming distance 1. `None` when either condition fails (the Hamming
/// heuristic may still apply — see [`is_cube_labeled`] — but the graph is
/// not a spanning cube subgraph). `Q_0` (a single vertex) has dimension 0.
#[must_use]
pub fn cube_dimension<G: GraphView>(g: &G) -> Option<u32> {
    let n = g.num_vertices();
    if n == 0 || !n.is_power_of_two() || !is_cube_labeled(g) {
        return None;
    }
    Some(n.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, hypercube, star};

    #[test]
    fn hamming_distance_basics() {
        assert_eq!(hamming_distance(0, 0), 0);
        assert_eq!(hamming_distance(0, u64::MAX), 64);
        assert_eq!(hamming_distance(0b1010, 0b0101), 4);
        assert_eq!(hamming_distance(7, 6), 1);
    }

    #[test]
    fn cubes_and_cube_subgraphs_are_cube_labeled() {
        for n in 1..=6 {
            let q = hypercube(n);
            assert!(is_cube_labeled(&q), "Q_{n}");
            assert_eq!(cube_dimension(&q), Some(n));
        }
        // C_4 with vertices 0,1,2,3: edge (1,2) flips two bits.
        assert!(!is_cube_labeled(&cycle(4)));
        assert_eq!(cube_dimension(&cycle(4)), None);
        // The star's hub 0 connects to 3 = 0b11: two bits.
        assert!(!is_cube_labeled(&star(5)));
    }

    #[test]
    fn dimension_requires_power_of_two_vertex_count() {
        // A single edge {0, 1} over 3 vertices is cube-labeled but not a
        // spanning subgraph of any cube.
        let g = crate::AdjGraph::from_edges(3, [(0, 1)]);
        assert!(is_cube_labeled(&g));
        assert_eq!(cube_dimension(&g), None);
        // Over 2 vertices it is exactly Q_1.
        let q1 = crate::AdjGraph::from_edges(2, [(0, 1)]);
        assert_eq!(cube_dimension(&q1), Some(1));
    }

    #[test]
    fn edge_rank_is_a_bijection_per_dimension() {
        // For each dimension of Q_5, ranks over the lower endpoints are a
        // permutation of 0..2^4, and both endpoints agree.
        for d in 0..5u32 {
            let mut seen = [false; 16];
            for v in 0..32u64 {
                if (v >> d) & 1 == 0 {
                    let r = edge_rank(v, d);
                    assert_eq!(r, edge_rank(v | (1 << d), d), "endpoint-free");
                    assert!(!seen[r as usize], "rank collision at v={v}, d={d}");
                    seen[r as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn edgeless_graphs() {
        let empty = crate::AdjGraph::with_vertices(4);
        assert!(is_cube_labeled(&empty), "vacuous");
        assert_eq!(cube_dimension(&empty), Some(2));
        assert_eq!(cube_dimension(&crate::AdjGraph::with_vertices(0)), None);
    }
}
