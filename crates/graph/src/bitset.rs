//! A compact fixed-capacity bit set.
//!
//! Used throughout the workspace for vertex sets: informed sets during
//! broadcast simulation, dominating-set membership, visited marks in
//! traversals. Storage is a boxed slice of `u64` words, so a set over the
//! `2^n` vertices of an `n`-cube costs `2^n / 8` bytes.

use serde::{Deserialize, Serialize};

/// Number of bits in one storage word.
const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` keys in `0..len`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Box<[u64]>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for keys `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(WORD_BITS);
        Self {
            words: vec![0u64; n_words].into_boxed_slice(),
            len,
        }
    }

    /// Creates a set containing every key in `0..len`.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Capacity (exclusive upper bound on keys).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Zeroes the bits beyond `len` in the last word so that popcounts and
    /// equality checks stay exact.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Inserts `key`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `key >= capacity()`.
    pub fn insert(&mut self, key: usize) -> bool {
        assert!(key < self.len, "BitSet key {key} out of range {}", self.len);
        let (w, b) = (key / WORD_BITS, key % WORD_BITS);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !had
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: usize) -> bool {
        assert!(key < self.len, "BitSet key {key} out of range {}", self.len);
        let (w, b) = (key / WORD_BITS, key % WORD_BITS);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        had
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.len {
            return false;
        }
        let (w, b) = (key / WORD_BITS, key % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` when every key in `0..capacity` is present.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.count() == self.len
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// `true` if the two sets share at least one element.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// `true` if `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Smallest element, if any.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects the elements into a vector (ascending order).
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.count());
        v.extend(self.iter());
        v
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element plus one.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = Self::new(len);
        for k in items {
            s.insert(k);
        }
        s
    }
}

/// Iterator over set elements produced by [`BitSet::iter`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn remove_works() {
        let mut s = BitSet::new(10);
        s.insert(3);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(5);
        s.insert(5);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(5);
        assert!(!s.contains(99));
    }

    #[test]
    fn full_set() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.is_full());
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn full_set_tail_is_clean() {
        // Tail bits beyond the capacity must not be set, otherwise count()
        // would overreport.
        let s = BitSet::full(1);
        assert_eq!(s.count(), 1);
        let s = BitSet::full(64);
        assert_eq!(s.count(), 64);
        let s = BitSet::full(65);
        assert_eq!(s.count(), 65);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![2]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1]);

        assert!(a.intersects(&b));
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        let keys = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &k in &keys {
            s.insert(k);
        }
        assert_eq!(s.to_vec(), keys.to_vec());
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 5, 9]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(33);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn empty_capacity_zero() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
