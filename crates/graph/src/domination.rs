//! Dominating-set machinery.
//!
//! Condition A of the paper (eq. (3)) states that every label class of a
//! labeling `f : V(Q_m) -> C` must be a *dominating set*: each vertex either
//! carries the label or has a neighbor that does. Equivalently, a maximal
//! Condition-A labeling is a partition of `V` into the maximum number of
//! dominating sets — the graph's *domatic number*. This module provides the
//! checks plus a small exact domatic-partition search used by
//! `shc-labeling::search` to certify optimal `λ_m` for small `m`.

use crate::bitset::BitSet;
use crate::view::{GraphView, Node};

/// `true` iff `set` dominates `g`: every vertex is in `set` or adjacent to a
/// member of `set`.
#[must_use]
pub fn is_dominating_set<G: GraphView>(g: &G, set: &BitSet) -> bool {
    let n = g.num_vertices();
    (0..n as Node).all(|u| {
        set.contains(u as usize) || g.neighbors(u).iter().any(|&v| set.contains(v as usize))
    })
}

/// Greedy dominating set: repeatedly picks the vertex covering the most
/// still-uncovered closed neighborhoods. Classical `ln(Δ+1)`-approximation;
/// used as an upper-bound baseline in labeling experiments.
#[must_use]
pub fn greedy_dominating_set<G: GraphView>(g: &G) -> BitSet {
    let n = g.num_vertices();
    let mut chosen = BitSet::new(n);
    let mut covered = BitSet::new(n);
    while !covered.is_full() {
        let mut best: Node = 0;
        let mut best_gain = 0usize;
        for u in 0..n as Node {
            let mut gain = usize::from(!covered.contains(u as usize));
            gain += g
                .neighbors(u)
                .iter()
                .filter(|&&v| !covered.contains(v as usize))
                .count();
            if gain > best_gain {
                best_gain = gain;
                best = u;
            }
        }
        debug_assert!(best_gain > 0, "progress must be possible");
        chosen.insert(best as usize);
        covered.insert(best as usize);
        for &v in g.neighbors(best) {
            covered.insert(v as usize);
        }
    }
    chosen
}

/// Closed neighborhood `N[u] = {u} ∪ N(u)` as a sorted vector.
#[must_use]
pub fn closed_neighborhood<G: GraphView>(g: &G, u: Node) -> Vec<Node> {
    let nbrs = g.neighbors(u);
    let mut out = Vec::with_capacity(nbrs.len() + 1);
    let pos = nbrs.partition_point(|&v| v < u);
    out.extend_from_slice(&nbrs[..pos]);
    out.push(u);
    out.extend_from_slice(&nbrs[pos..]);
    out
}

/// Tries to partition `V(g)` into `parts` dominating sets by backtracking.
/// Returns one such partition (vertex -> part index) if it exists.
///
/// The search assigns vertices in increasing id order and prunes when a
/// closed neighborhood can no longer see every part: if `N[u]` is fully
/// assigned and misses some part, the branch dies. Feasible for graphs up to
/// a few dozen vertices (exactly the regime Lemma 2's small cases need).
#[must_use]
pub fn domatic_partition<G: GraphView>(g: &G, parts: usize) -> Option<Vec<u16>> {
    let n = g.num_vertices();
    if parts == 0 || n == 0 {
        return None;
    }
    if parts == 1 {
        return Some(vec![0; n]);
    }
    // Necessary condition: domatic number <= δ + 1.
    if parts > g.min_degree() + 1 {
        return None;
    }
    let closed: Vec<Vec<Node>> = (0..n as Node).map(|u| closed_neighborhood(g, u)).collect();
    let mut assign = vec![u16::MAX; n];
    // Symmetry breaking: vertex 0 goes to part 0.
    assign[0] = 0;
    if backtrack(1, n, parts as u16, &closed, &mut assign) {
        Some(assign)
    } else {
        None
    }
}

fn backtrack(next: usize, n: usize, parts: u16, closed: &[Vec<Node>], assign: &mut [u16]) -> bool {
    if next == n {
        // Full assignment: verify every closed neighborhood hits every part.
        return (0..n).all(|u| neighborhood_ok(&closed[u], parts, assign));
    }
    // Symmetry breaking: the first vertex placed in part p forces parts
    // 0..p to be in use already (canonical order of part introduction).
    let used = assign[..next].iter().copied().max().map_or(0, |m| m + 1);
    let limit = parts.min(used + 1);
    for part in 0..limit {
        assign[next] = part;
        if prefix_feasible(next, parts, closed, assign)
            && backtrack(next + 1, n, parts, closed, assign)
        {
            return true;
        }
    }
    assign[next] = u16::MAX;
    false
}

/// A closed neighborhood that is fully assigned must contain all parts; one
/// that is partially assigned must still be able to reach the missing parts
/// with its unassigned slots.
fn prefix_feasible(last: usize, parts: u16, closed: &[Vec<Node>], assign: &[u16]) -> bool {
    // Only neighborhoods containing `last` changed.
    std::iter::once(last as Node)
        .chain(closed[last].iter().copied())
        .all(|u| {
            let nb = &closed[u as usize];
            let mut seen = 0u64;
            let mut unassigned = 0u16;
            for &v in nb {
                let a = assign[v as usize];
                if a == u16::MAX {
                    unassigned += 1;
                } else {
                    seen |= 1u64 << a;
                }
            }
            let missing = parts - (seen.count_ones() as u16);
            missing <= unassigned
        })
}

fn neighborhood_ok(nb: &[Node], parts: u16, assign: &[u16]) -> bool {
    let mut seen = 0u64;
    for &v in nb {
        seen |= 1u64 << assign[v as usize];
    }
    seen.count_ones() as u16 == parts
}

/// The exact domatic number of a small graph: the largest `d` such that
/// `V` splits into `d` dominating sets.
#[must_use]
pub fn domatic_number<G: GraphView>(g: &G) -> usize {
    if g.num_vertices() == 0 {
        return 0;
    }
    let upper = g.min_degree() + 1;
    (1..=upper)
        .rev()
        .find(|&d| domatic_partition(g, d).is_some())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{complete, cycle, hypercube, star};

    #[test]
    fn whole_vertex_set_dominates() {
        let g = cycle(6);
        let all = BitSet::full(6);
        assert!(is_dominating_set(&g, &all));
    }

    #[test]
    fn empty_set_does_not_dominate() {
        let g = cycle(6);
        assert!(!is_dominating_set(&g, &BitSet::new(6)));
    }

    #[test]
    fn star_center_dominates() {
        let g = star(7);
        let mut s = BitSet::new(7);
        s.insert(0);
        assert!(is_dominating_set(&g, &s));
        let mut leaf = BitSet::new(7);
        leaf.insert(1);
        assert!(!is_dominating_set(&g, &leaf));
    }

    #[test]
    fn greedy_result_dominates() {
        for g in [cycle(10), hypercube(4), star(9)] {
            let s = greedy_dominating_set(&g);
            assert!(is_dominating_set(&g, &s));
        }
    }

    #[test]
    fn greedy_on_star_picks_center_only() {
        let s = greedy_dominating_set(&star(8));
        assert_eq!(s.to_vec(), vec![0]);
    }

    #[test]
    fn closed_neighborhood_sorted() {
        let g = cycle(5);
        assert_eq!(closed_neighborhood(&g, 0), vec![0, 1, 4]);
        assert_eq!(closed_neighborhood(&g, 3), vec![2, 3, 4]);
    }

    #[test]
    fn domatic_partition_validates() {
        let g = hypercube(3);
        // Q3 has a perfect partition into 4 dominating sets (Example 1 of the
        // paper: pairs of antipodal vertices).
        let p = domatic_partition(&g, 4).expect("Q3 domatic number is 4");
        for part in 0..4u16 {
            let mut set = BitSet::new(8);
            for (v, &a) in p.iter().enumerate() {
                if a == part {
                    set.insert(v);
                }
            }
            assert!(is_dominating_set(&g, &set), "part {part} must dominate");
        }
    }

    #[test]
    fn domatic_number_known_values() {
        // K_n: every singleton dominates, domatic number = n.
        assert_eq!(domatic_number(&complete(4)), 4);
        // C_4: two antipodal pairs, domatic number 2 (min degree + 1 = 3 unreachable).
        assert_eq!(domatic_number(&cycle(4)), 2);
        // C_6: {0,3},{1,4},{2,5} -> 3.
        assert_eq!(domatic_number(&cycle(6)), 3);
        // Q_2 = C_4 -> 2 (matches λ_2 = 2 in the paper's Example 1).
        assert_eq!(domatic_number(&hypercube(2)), 2);
        // Q_3 -> 4 (matches λ_3 = 4, Example 1 / Hamming).
        assert_eq!(domatic_number(&hypercube(3)), 4);
    }

    #[test]
    fn domatic_partition_impossible() {
        // C_5 has domatic number 2; 3 must fail.
        assert!(domatic_partition(&cycle(5), 3).is_none());
        assert_eq!(domatic_number(&cycle(5)), 2);
    }

    #[test]
    fn domatic_zero_parts_none() {
        assert!(domatic_partition(&cycle(4), 0).is_none());
    }
}
