//! Mutable undirected graph backed by per-vertex sorted adjacency vectors.

use crate::view::{GraphView, Node};
use serde::{Deserialize, Serialize};

/// An undirected simple graph (no self-loops, no parallel edges) with
/// vertices `0..n`. Adjacency lists are kept sorted so edge queries are
/// `O(log d)` and conversion to [`crate::CsrGraph`] is allocation-only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjGraph {
    adj: Vec<Vec<Node>>,
    num_edges: usize,
}

impl AdjGraph {
    /// Creates an edgeless graph on `n` vertices.
    #[must_use]
    pub fn with_vertices(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph on `n` vertices from an edge list. Duplicate edges and
    /// self-loops are ignored.
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (Node, Node)>) -> Self {
        let mut g = Self::with_vertices(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge is new;
    /// self-loops and duplicates are rejected (returning `false`).
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        let n = self.adj.len();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u},{v}) out of range {n}"
        );
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency lists out of sync");
                self.adj[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Removes the undirected edge `{u, v}` if present; returns whether it
    /// existed.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        if u == v || (u as usize) >= self.adj.len() || (v as usize) >= self.adj.len() {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[u as usize].remove(pos_u);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect("adjacency lists out of sync");
                self.adj[v as usize].remove(pos_v);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Appends `count` isolated vertices, returning the id of the first one.
    pub fn add_vertices(&mut self, count: usize) -> Node {
        let first = self.adj.len() as Node;
        self.adj.resize_with(self.adj.len() + count, Vec::new);
        first
    }

    /// Sum of all degrees (`2 |E|`).
    #[must_use]
    pub fn degree_sum(&self) -> usize {
        2 * self.num_edges
    }

    /// The degree sequence, sorted descending.
    #[must_use]
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Returns the subgraph induced by `keep` (given as a sorted list of
    /// distinct vertex ids) together with the mapping `new_id -> old_id`.
    #[must_use]
    pub fn induced_subgraph(&self, keep: &[Node]) -> (AdjGraph, Vec<Node>) {
        debug_assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "keep must be sorted+distinct"
        );
        let mut new_id = vec![Node::MAX; self.adj.len()];
        for (i, &old) in keep.iter().enumerate() {
            new_id[old as usize] = i as Node;
        }
        let mut g = AdjGraph::with_vertices(keep.len());
        for &old in keep {
            for &nbr in &self.adj[old as usize] {
                let (a, b) = (new_id[old as usize], new_id[nbr as usize]);
                if b != Node::MAX && a < b {
                    g.add_edge(a, b);
                }
            }
        }
        (g, keep.to_vec())
    }
}

impl GraphView for AdjGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn neighbors(&self, u: Node) -> &[Node] {
        &self.adj[u as usize]
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }
}

/// Serialization mirror: vertex count plus edge list. Chosen over serializing
/// raw adjacency to keep the format small and obviously canonical.
#[derive(Serialize, Deserialize)]
struct AdjGraphWire {
    num_vertices: usize,
    edges: Vec<(Node, Node)>,
}

impl Serialize for AdjGraph {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        AdjGraphWire {
            num_vertices: self.num_vertices(),
            edges: self.edge_iter().collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for AdjGraph {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = AdjGraphWire::deserialize(deserializer)?;
        for &(u, v) in &wire.edges {
            if (u as usize) >= wire.num_vertices || (v as usize) >= wire.num_vertices {
                return Err(serde::de::Error::custom(format!(
                    "edge ({u},{v}) out of range {}",
                    wire.num_vertices
                )));
            }
        }
        Ok(AdjGraph::from_edges(wire.num_vertices, wire.edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = AdjGraph::with_vertices(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_deduped() {
        let mut g = AdjGraph::with_vertices(4);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0), "reverse duplicate rejected");
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = AdjGraph::with_vertices(3);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = AdjGraph::with_vertices(6);
        for v in [5, 1, 3, 2, 4] {
            g.add_edge(0, v);
        }
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn remove_edge() {
        let mut g = AdjGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_iter_lists_each_edge_once() {
        let g = AdjGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let edges: Vec<_> = g.edge_iter().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sequence_sorted_desc() {
        let g = AdjGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_sequence(), vec![3, 1, 1, 1]);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn add_vertices_grows() {
        let mut g = AdjGraph::with_vertices(2);
        let first = g.add_vertices(3);
        assert_eq!(first, 2);
        assert_eq!(g.num_vertices(), 5);
        g.add_edge(4, 0);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        // Path 0-1-2-3 plus chord 0-2; keep {0, 2, 3}.
        let g = AdjGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let (sub, map) = g.induced_subgraph(&[0, 2, 3]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edges kept: {0,2} -> (0,1) and {2,3} -> (1,2).
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = AdjGraph::with_vertices(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn serde_roundtrip() {
        let g = AdjGraph::from_edges(5, [(0, 1), (2, 3), (3, 4)]);
        let json = serde_json::to_string(&g).unwrap();
        let back: AdjGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn serde_rejects_out_of_range_edge() {
        let json = r#"{"num_vertices":2,"edges":[[0,5]]}"#;
        assert!(serde_json::from_str::<AdjGraph>(json).is_err());
    }
}
