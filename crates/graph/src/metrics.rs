//! Whole-graph metrics: eccentricity, diameter, radius, degree statistics,
//! bipartiteness. The diameter of a sparse hypercube bounds the calls the
//! paper's footnote 1 discusses (`diam(G) <= k * ceil(log2 |V|)` for any
//! k-mlbg), which experiment E16 checks.

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::view::{GraphView, Node};
use serde::{Deserialize, Serialize};

/// Eccentricity of `u`: greatest distance from `u` to any vertex, or `None`
/// if the graph is disconnected from `u`.
#[must_use]
pub fn eccentricity<G: GraphView>(g: &G, u: Node) -> Option<u32> {
    let dist = bfs_distances(g, u);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// All eccentricities (serial). `None` for a disconnected graph.
#[must_use]
pub fn eccentricities<G: GraphView>(g: &G) -> Option<Vec<u32>> {
    (0..g.num_vertices() as Node)
        .map(|u| eccentricity(g, u))
        .collect()
}

/// Exact diameter by running BFS from every vertex; `None` if disconnected.
/// For large graphs prefer [`crate::parallel::diameter_parallel`].
#[must_use]
pub fn diameter<G: GraphView>(g: &G) -> Option<u32> {
    if g.num_vertices() == 0 {
        return Some(0);
    }
    eccentricities(g).map(|e| e.into_iter().max().unwrap_or(0))
}

/// Exact radius (minimum eccentricity); `None` if disconnected.
#[must_use]
pub fn radius<G: GraphView>(g: &G) -> Option<u32> {
    if g.num_vertices() == 0 {
        return Some(0);
    }
    eccentricities(g).map(|e| e.into_iter().min().unwrap_or(0))
}

/// Summary statistics of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree δ(G).
    pub min: usize,
    /// Maximum degree Δ(G) — the paper's goodness measure.
    pub max: usize,
    /// Mean degree `2|E|/|V|`.
    pub mean: f64,
    /// Vertex count.
    pub num_vertices: usize,
    /// Edge count.
    pub num_edges: usize,
}

/// Computes [`DegreeStats`] for a graph.
#[must_use]
pub fn degree_stats<G: GraphView>(g: &G) -> DegreeStats {
    let n = g.num_vertices();
    DegreeStats {
        min: g.min_degree(),
        max: g.max_degree(),
        mean: if n == 0 {
            0.0
        } else {
            2.0 * g.num_edges() as f64 / n as f64
        },
        num_vertices: n,
        num_edges: g.num_edges(),
    }
}

/// Two-colors the graph if bipartite, returning the side of each vertex;
/// `None` when an odd cycle exists. Hypercubes and their subgraphs (hence
/// every sparse hypercube) are bipartite — a structural test in `shc-core`.
#[must_use]
pub fn bipartition<G: GraphView>(g: &G) -> Option<Vec<u8>> {
    let n = g.num_vertices();
    let mut side = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as Node {
        if side[start as usize] != u8::MAX {
            continue;
        }
        side[start as usize] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if side[v as usize] == u8::MAX {
                    side[v as usize] = 1 - side[u as usize];
                    queue.push_back(v);
                } else if side[v as usize] == side[u as usize] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// `true` iff the graph contains no odd cycle.
#[must_use]
pub fn is_bipartite<G: GraphView>(g: &G) -> bool {
    bipartition(g).is_some()
}

/// Mean pairwise distance estimated from `samples` random source vertices
/// (exact when `samples >= |V|`). Disconnected graphs return `None`.
#[must_use]
pub fn mean_distance_sampled<G: GraphView, R: rand::Rng>(
    g: &G,
    samples: usize,
    rng: &mut R,
) -> Option<f64> {
    let n = g.num_vertices();
    if n < 2 {
        return Some(0.0);
    }
    let sources: Vec<Node> = if samples >= n {
        (0..n as Node).collect()
    } else {
        (0..samples).map(|_| rng.gen_range(0..n as Node)).collect()
    };
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in &sources {
        let dist = bfs_distances(g, s);
        for (v, &d) in dist.iter().enumerate() {
            if v as Node == s {
                continue;
            }
            if d == UNREACHABLE {
                return None;
            }
            total += u64::from(d);
            pairs += 1;
        }
    }
    Some(total as f64 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{complete, cycle, hypercube, path, star, theorem1_tree};
    use crate::AdjGraph;

    #[test]
    fn hypercube_diameter_is_n() {
        for n in 1..=6u32 {
            assert_eq!(diameter(&hypercube(n)), Some(n), "Q_{n}");
        }
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter(&cycle(8)), Some(4));
        assert_eq!(diameter(&cycle(9)), Some(4));
        assert_eq!(radius(&cycle(8)), Some(4));
    }

    #[test]
    fn path_radius_and_diameter() {
        assert_eq!(diameter(&path(7)), Some(6));
        assert_eq!(radius(&path(7)), Some(3));
    }

    #[test]
    fn theorem1_tree_diameter_bound() {
        // Paper, Theorem 1: max distance <= 2h.
        for h in 1..=5u32 {
            let t = theorem1_tree(h);
            assert_eq!(diameter(&t), Some(2 * h), "h={h}");
        }
    }

    #[test]
    fn disconnected_diameter_none() {
        let g = AdjGraph::from_edges(4, [(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.num_edges, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn hypercube_is_bipartite() {
        assert!(is_bipartite(&hypercube(5)));
        let side = bipartition(&hypercube(3)).unwrap();
        // Sides correspond to parity of popcount.
        for v in 0..8u32 {
            assert_eq!(
                u32::from(side[v as usize]) != u32::from(side[0]),
                v.count_ones() % 2 == 1
            );
        }
    }

    #[test]
    fn odd_cycle_not_bipartite() {
        assert!(!is_bipartite(&cycle(5)));
        assert!(is_bipartite(&cycle(6)));
    }

    #[test]
    fn mean_distance_complete_graph() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let m = mean_distance_sampled(&complete(6), 100, &mut rng).unwrap();
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_disconnected_none() {
        let g = AdjGraph::from_edges(3, [(0, 1)]);
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        assert_eq!(mean_distance_sampled(&g, 10, &mut rng), None);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = AdjGraph::with_vertices(0);
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(radius(&g), Some(0));
        assert_eq!(degree_stats(&g).mean, 0.0);
    }
}
