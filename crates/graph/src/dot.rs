//! Graphviz DOT export, used by the figure-regeneration harness
//! (`exp_figures`) to emit the paper's Figs. 1–4 as renderable files.

use crate::view::{GraphView, Node};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Graph name in the DOT header.
    pub name: String,
    /// Optional per-vertex display labels (defaults to the vertex id).
    pub vertex_labels: Vec<String>,
    /// Edges to highlight (drawn bold red), as `(u, v)` unordered pairs.
    pub highlight_edges: Vec<(Node, Node)>,
    /// Vertices to highlight (drawn filled).
    pub highlight_vertices: Vec<Node>,
}

impl DotOptions {
    /// Options with a graph name and default styling.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Sets binary-string labels of width `n` for all `2^n` vertices —
    /// the natural display for hypercube-family graphs.
    #[must_use]
    pub fn with_binary_labels(mut self, n: u32, num_vertices: usize) -> Self {
        self.vertex_labels = (0..num_vertices)
            .map(|v| format!("{v:0width$b}", width = n as usize))
            .collect();
        self
    }
}

fn norm(e: (Node, Node)) -> (Node, Node) {
    if e.0 <= e.1 {
        e
    } else {
        (e.1, e.0)
    }
}

/// Renders `g` to DOT format.
#[must_use]
pub fn to_dot<G: GraphView>(g: &G, opts: &DotOptions) -> String {
    let name = if opts.name.is_empty() {
        "G"
    } else {
        &opts.name
    };
    let mut out = String::with_capacity(64 + 32 * g.num_edges());
    writeln!(out, "graph \"{name}\" {{").unwrap();
    writeln!(out, "  node [shape=circle fontsize=10];").unwrap();
    let hi_v: std::collections::HashSet<Node> = opts.highlight_vertices.iter().copied().collect();
    let hi_e: std::collections::HashSet<(Node, Node)> =
        opts.highlight_edges.iter().map(|&e| norm(e)).collect();
    for v in 0..g.num_vertices() as Node {
        let label = opts
            .vertex_labels
            .get(v as usize)
            .cloned()
            .unwrap_or_else(|| v.to_string());
        if hi_v.contains(&v) {
            writeln!(
                out,
                "  {v} [label=\"{label}\" style=filled fillcolor=lightblue];"
            )
            .unwrap();
        } else {
            writeln!(out, "  {v} [label=\"{label}\"];").unwrap();
        }
    }
    for (u, v) in g.edge_iter() {
        if hi_e.contains(&norm((u, v))) {
            writeln!(out, "  {u} -- {v} [color=red penwidth=2];").unwrap();
        } else {
            writeln!(out, "  {u} -- {v};").unwrap();
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle, hypercube};

    #[test]
    fn dot_contains_all_edges() {
        let g = cycle(4);
        let dot = to_dot(&g, &DotOptions::named("c4"));
        assert!(dot.starts_with("graph \"c4\" {"));
        for line in ["0 -- 1;", "1 -- 2;", "2 -- 3;", "0 -- 3;"] {
            assert!(dot.contains(line), "missing {line} in:\n{dot}");
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_binary_labels() {
        let g = hypercube(2);
        let opts = DotOptions::named("q2").with_binary_labels(2, 4);
        let dot = to_dot(&g, &opts);
        for lbl in ["\"00\"", "\"01\"", "\"10\"", "\"11\""] {
            assert!(dot.contains(lbl), "missing label {lbl}");
        }
    }

    #[test]
    fn dot_highlights() {
        let g = cycle(4);
        let mut opts = DotOptions::named("c4");
        opts.highlight_edges.push((1, 0)); // reversed on purpose
        opts.highlight_vertices.push(2);
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("0 -- 1 [color=red penwidth=2];"));
        assert!(dot.contains("2 [label=\"2\" style=filled fillcolor=lightblue];"));
    }

    #[test]
    fn dot_default_name() {
        let g = cycle(3);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("graph \"G\" {"));
    }
}
