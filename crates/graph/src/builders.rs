//! Constructors for the standard topologies used across the reproduction:
//! binary hypercubes (the paper's baseline), the Theorem-1 tree, and the
//! classical families referenced in the paper's related-work discussion
//! (cycles, stars, complete graphs, grids/tori, de Bruijn graphs, CCC).

use crate::adjacency::AdjGraph;
use crate::view::Node;
use rand::Rng;

/// The binary `n`-cube `Q_n`: vertices are the bit strings `{0,1}^n`
/// (encoded as integers), with an edge whenever two strings differ in exactly
/// one bit. `Δ(Q_n) = n`, `|E| = n · 2^(n-1)` (paper §3).
///
/// # Panics
/// Panics if `n > 30` (a materialized graph that size would not fit memory;
/// rule-based oracles in `shc-core` cover larger `n`).
#[must_use]
pub fn hypercube(n: u32) -> AdjGraph {
    assert!(
        n <= 30,
        "materialized hypercube limited to n <= 30, got {n}"
    );
    let size = 1usize << n;
    let mut g = AdjGraph::with_vertices(size);
    for u in 0..size {
        for i in 0..n {
            let v = u ^ (1usize << i);
            if v > u {
                g.add_edge(u as Node, v as Node);
            }
        }
    }
    g
}

/// Cycle `C_n` (`n >= 3`): used by Theorem 3's degree-2 infeasibility
/// argument.
#[must_use]
pub fn cycle(n: usize) -> AdjGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices, got {n}");
    let mut g = AdjGraph::with_vertices(n);
    for u in 0..n {
        g.add_edge(u as Node, ((u + 1) % n) as Node);
    }
    g
}

/// Path `P_n` on `n` vertices.
#[must_use]
pub fn path(n: usize) -> AdjGraph {
    let mut g = AdjGraph::with_vertices(n);
    for u in 1..n {
        g.add_edge((u - 1) as Node, u as Node);
    }
    g
}

/// Star `K_{1,n-1}`: center 0 joined to all leaves. The paper (§2) notes the
/// star is the edge-minimal member of `G_k` for every `k >= 2`.
#[must_use]
pub fn star(n: usize) -> AdjGraph {
    assert!(n >= 1, "star needs at least 1 vertex");
    let mut g = AdjGraph::with_vertices(n);
    for u in 1..n {
        g.add_edge(0, u as Node);
    }
    g
}

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> AdjGraph {
    let mut g = AdjGraph::with_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u as Node, v as Node);
        }
    }
    g
}

/// Complete binary tree of depth `d` (`2^(d+1) - 1` vertices, heap
/// numbering: children of `i` are `2i+1` and `2i+2`).
#[must_use]
pub fn complete_binary_tree(depth: u32) -> AdjGraph {
    let size = (1usize << (depth + 1)) - 1;
    let mut g = AdjGraph::with_vertices(size);
    for u in 1..size {
        g.add_edge(u as Node, ((u - 1) / 2) as Node);
    }
    g
}

/// The Theorem-1 tree: three complete binary trees of depth `h-1` whose
/// roots are joined to one extra center vertex.
///
/// Properties proved in the paper and asserted by our tests:
/// `|V| = 3·2^h − 2`, `Δ = 3`, `diam <= 2h`, and the tree is a `2h`-mlbg.
///
/// Vertex layout: `0` is the center; branch `b ∈ {0,1,2}` occupies ids
/// `1 + b·(2^h − 1) ..`, heap-numbered within the branch.
///
/// # Panics
/// Panics if `h == 0` (the construction needs at least one level).
#[must_use]
pub fn theorem1_tree(h: u32) -> AdjGraph {
    assert!(h >= 1, "theorem1_tree requires h >= 1");
    let branch = (1usize << h) - 1; // vertices per complete binary tree
    let size = 3 * branch + 1; // == 3 * 2^h - 2
    let mut g = AdjGraph::with_vertices(size);
    for b in 0..3usize {
        let base = 1 + b * branch;
        g.add_edge(0, base as Node); // center to branch root
        for u in 1..branch {
            g.add_edge((base + u) as Node, (base + (u - 1) / 2) as Node);
        }
    }
    g
}

/// 2-D grid `rows × cols` (row-major vertex ids).
#[must_use]
pub fn grid(rows: usize, cols: usize) -> AdjGraph {
    let mut g = AdjGraph::with_vertices(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    g
}

/// 2-D torus `rows × cols` (wrap-around grid); requires both sides >= 3 so
/// the graph stays simple.
#[must_use]
pub fn torus(rows: usize, cols: usize) -> AdjGraph {
    assert!(rows >= 3 && cols >= 3, "torus sides must be >= 3");
    let mut g = AdjGraph::with_vertices(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id((r + 1) % rows, c));
            g.add_edge(id(r, c), id(r, (c + 1) % cols));
        }
    }
    g
}

/// Undirected de Bruijn graph `DB(2, n)` on `2^n` vertices: `u` is adjacent
/// to `(2u ± b) mod 2^n` shifts. Listed in the paper's intro as a classical
/// low-degree topology; used as a comparison baseline.
#[must_use]
pub fn de_bruijn(n: u32) -> AdjGraph {
    assert!((1..=30).contains(&n), "de_bruijn supports 1 <= n <= 30");
    let size = 1usize << n;
    let mask = size - 1;
    let mut g = AdjGraph::with_vertices(size);
    for u in 0..size {
        for b in 0..2usize {
            let v = ((u << 1) | b) & mask;
            if v != u {
                g.add_edge(u as Node, v as Node);
            }
        }
    }
    g
}

/// Cube-connected cycles `CCC(n)`: each hypercube vertex is replaced by an
/// `n`-cycle; cited in §3 as a classical degree-reduction of the hypercube
/// (degree 3, but larger diameter — the trade-off sparse hypercubes avoid).
///
/// Vertex `(u, i)` is encoded as `u * n + i`.
#[must_use]
pub fn cube_connected_cycles(n: u32) -> AdjGraph {
    assert!((3..=24).contains(&n), "ccc supports 3 <= n <= 24");
    let cube = 1usize << n;
    let n_us = n as usize;
    let mut g = AdjGraph::with_vertices(cube * n_us);
    let id = |u: usize, i: usize| (u * n_us + i) as Node;
    for u in 0..cube {
        for i in 0..n_us {
            // cycle edge
            g.add_edge(id(u, i), id(u, (i + 1) % n_us));
            // hypercube-dimension edge
            let v = u ^ (1usize << i);
            if v > u {
                g.add_edge(id(u, i), id(v, i));
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph, for fuzzing graph algorithms.
#[must_use]
pub fn random_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> AdjGraph {
    let mut g = AdjGraph::with_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u as Node, v as Node);
            }
        }
    }
    g
}

/// A uniformly random labeled tree on `n` vertices via a random Prüfer
/// sequence; used to fuzz the tree line-broadcast scheduler.
#[must_use]
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> AdjGraph {
    if n <= 1 {
        return AdjGraph::with_vertices(n);
    }
    if n == 2 {
        return AdjGraph::from_edges(2, [(0, 1)]);
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    prufer_to_tree(n, &seq)
}

/// Decodes a Prüfer sequence (length `n-2`, entries in `0..n`) to its tree.
#[must_use]
pub fn prufer_to_tree(n: usize, seq: &[usize]) -> AdjGraph {
    assert!(n >= 2, "prufer needs n >= 2");
    assert_eq!(seq.len(), n - 2, "prufer sequence must have length n-2");
    assert!(seq.iter().all(|&x| x < n), "prufer entries out of range");
    let mut degree = vec![1usize; n];
    for &x in seq {
        degree[x] += 1;
    }
    let mut g = AdjGraph::with_vertices(n);
    // Min-leaf extraction; O(n log n) with a sorted set substitute.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer invariant: leaf exists");
        g.add_edge(leaf as Node, x as Node);
        degree[leaf] -= 1;
        degree[x] -= 1;
        if degree[x] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    g.add_edge(a as Node, b as Node);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::GraphView;

    #[test]
    fn hypercube_counts() {
        for n in 0..=6u32 {
            let g = hypercube(n);
            assert_eq!(g.num_vertices(), 1 << n, "Q_{n} vertex count");
            assert_eq!(
                g.num_edges(),
                (n as usize) << n.saturating_sub(1),
                "Q_{n} edge count n*2^(n-1)"
            );
            if n > 0 {
                assert_eq!(g.max_degree(), n as usize);
                assert_eq!(g.min_degree(), n as usize);
            }
        }
    }

    #[test]
    fn hypercube_edges_are_single_bit_flips() {
        let g = hypercube(4);
        for (u, v) in g.edge_iter() {
            assert_eq!((u ^ v).count_ones(), 1, "edge ({u:04b},{v:04b})");
        }
    }

    #[test]
    fn cycle_and_path() {
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert_eq!(c.max_degree(), 2);
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
    }

    #[test]
    fn star_and_complete() {
        let s = star(6);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.min_degree(), 1);
        let k = complete(6);
        assert_eq!(k.num_edges(), 15);
        assert_eq!(k.min_degree(), 5);
    }

    #[test]
    fn binary_tree_shape() {
        let t = complete_binary_tree(3);
        assert_eq!(t.num_vertices(), 15);
        assert_eq!(t.num_edges(), 14);
        assert_eq!(t.degree(0), 2); // root
        assert_eq!(t.max_degree(), 3); // internal
    }

    #[test]
    fn theorem1_tree_matches_paper_counts() {
        // Paper, proof of Theorem 1: |V| = 3·2^h − 2 and Δ = 3.
        for h in 1..=6u32 {
            let t = theorem1_tree(h);
            assert_eq!(t.num_vertices(), 3 * (1 << h) - 2, "h={h}");
            assert_eq!(t.num_edges(), t.num_vertices() - 1, "tree edge count");
            assert_eq!(t.max_degree(), 3, "h={h}");
        }
    }

    #[test]
    fn theorem1_tree_fig1_instance() {
        // Fig. 1 shows h = 3: 22 vertices.
        let t = theorem1_tree(3);
        assert_eq!(t.num_vertices(), 22);
        assert_eq!(t.degree(0), 3);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2); // 9 horizontal + 8 vertical
        let t = torus(3, 4);
        assert_eq!(t.num_edges(), 2 * 12);
        assert_eq!(t.max_degree(), 4);
        assert_eq!(t.min_degree(), 4);
    }

    #[test]
    fn de_bruijn_basics() {
        let g = de_bruijn(3);
        assert_eq!(g.num_vertices(), 8);
        // Degree at most 4 (two successors, two predecessors).
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn ccc_degree_three() {
        let g = cube_connected_cycles(3);
        assert_eq!(g.num_vertices(), 24);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 3);
    }

    #[test]
    fn prufer_decodes_known_tree() {
        // Sequence [3,3,3,4] on n=6 gives star-ish tree: known degree of 3 is 3+1... just verify tree-ness and degree.
        let g = prufer_to_tree(6, &[3, 3, 3, 4]);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(4), 2);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9E3779B97F4A7C15);
        for n in [1usize, 2, 3, 10, 33] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), n.saturating_sub(1));
        }
    }

    #[test]
    #[should_panic(expected = "n <= 30")]
    fn hypercube_too_large_panics() {
        let _ = hypercube(31);
    }
}
