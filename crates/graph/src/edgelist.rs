//! Plain-text edge-list format: line 1 holds `num_vertices num_edges`,
//! then one `u v` pair per line. Human-diffable interchange format for the
//! experiment harness; round-trips through [`crate::AdjGraph`].

use crate::adjacency::AdjGraph;
use crate::view::{GraphView, Node};
use std::fmt::Write as _;

/// Errors from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeListError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// An edge line is malformed or out of range.
    BadEdge {
        /// 1-based line number of the offending line.
        line: usize,
        /// The raw line content.
        content: String,
    },
    /// Fewer/more edge lines than the header promised.
    CountMismatch {
        /// Edge count announced by the header.
        expected: usize,
        /// Edge lines actually present.
        found: usize,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader(h) => write!(f, "bad edge-list header: {h:?}"),
            Self::BadEdge { line, content } => {
                write!(f, "bad edge at line {line}: {content:?}")
            }
            Self::CountMismatch { expected, found } => {
                write!(f, "edge count mismatch: header {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

/// Serializes a graph to the edge-list format.
#[must_use]
pub fn to_edge_list<G: GraphView>(g: &G) -> String {
    let mut out = String::with_capacity(16 + 12 * g.num_edges());
    writeln!(out, "{} {}", g.num_vertices(), g.num_edges()).unwrap();
    for (u, v) in g.edge_iter() {
        writeln!(out, "{u} {v}").unwrap();
    }
    out
}

/// Parses the edge-list format back into an [`AdjGraph`].
///
/// # Errors
/// Returns [`EdgeListError`] on malformed input, out-of-range endpoints, or
/// an edge count that disagrees with the header.
pub fn parse_edge_list(text: &str) -> Result<AdjGraph, EdgeListError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| EdgeListError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| EdgeListError::BadHeader(header.to_string()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| EdgeListError::BadHeader(header.to_string()))?;
    if parts.next().is_some() {
        return Err(EdgeListError::BadHeader(header.to_string()));
    }
    let mut g = AdjGraph::with_vertices(n);
    let mut found = 0usize;
    for (idx, line) in lines {
        let bad = || EdgeListError::BadEdge {
            line: idx + 1,
            content: line.to_string(),
        };
        let mut it = line.split_whitespace();
        let u: Node = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let v: Node = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        if it.next().is_some() || (u as usize) >= n || (v as usize) >= n {
            return Err(bad());
        }
        g.add_edge(u, v);
        found += 1;
    }
    if found != m {
        return Err(EdgeListError::CountMismatch { expected: m, found });
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::hypercube;

    #[test]
    fn roundtrip() {
        let g = hypercube(3);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parse_simple() {
        let g = parse_edge_list("3 2\n0 1\n1 2\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn parse_ignores_blank_lines() {
        let g = parse_edge_list("\n2 1\n\n0 1\n\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_bad_header() {
        assert!(matches!(
            parse_edge_list("nope\n"),
            Err(EdgeListError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list(""),
            Err(EdgeListError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list("3 1 9\n0 1\n"),
            Err(EdgeListError::BadHeader(_))
        ));
    }

    #[test]
    fn parse_bad_edge() {
        assert!(matches!(
            parse_edge_list("3 1\n0 7\n"),
            Err(EdgeListError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("3 1\n0\n"),
            Err(EdgeListError::BadEdge { .. })
        ));
    }

    #[test]
    fn parse_count_mismatch() {
        assert!(matches!(
            parse_edge_list("3 2\n0 1\n"),
            Err(EdgeListError::CountMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn error_display() {
        let e = EdgeListError::CountMismatch {
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
