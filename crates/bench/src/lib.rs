//! # shc-bench — experiment harness and benchmarks
//!
//! Regenerates every figure, worked example, and theorem-backed table of
//! the paper, plus the robustness/ablation/scenario extensions
//! (experiments E1–E22, indexed in DESIGN.md), and hosts the criterion
//! benchmarks. Binaries:
//!
//! * `exp_all` — run all experiments (or `--only E10 …`), print tables,
//!   exit nonzero on any FAIL; `--json PATH` dumps machine-readable
//!   results.
//! * `exp_figures` — emit DOT renderings of Figs. 1–4.
//! * `exp_congestion` — the §5 congestion extension in detail.
//! * `exp_scenarios` — the `shc-runtime` built-in scenario catalog:
//!   originator sweeps, Monte Carlo fault injection, hot-spot traffic,
//!   dilated networks, executed across all cores.
//! * `exp_perf` — the netsim engine throughput sweep behind
//!   `BENCH_netsim.json` (cells parallelized on the runtime executor;
//!   see `docs/BENCHMARKS.md`).
//!
//! ## Example
//!
//! Run one registered experiment programmatically:
//!
//! ```
//! use shc_bench::{run_one, RunConfig};
//!
//! let e1 = run_one("E1", &RunConfig::fast()).unwrap();
//! assert_eq!(e1.id, "E1");
//! assert!(e1.pass);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use experiments::{run_all, run_one, RunConfig};
pub use table::Experiment;
