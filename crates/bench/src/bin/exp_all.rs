//! Runs the full experiment suite (E1–E20) and prints each reproduction
//! table; the output of `cargo run --release -p shc-bench --bin exp_all`
//! is the source of EXPERIMENTS.md.
//!
//! Flags:
//! * `--only E9,E12` — run a subset.
//! * `--fast`        — reduced sweep sizes (debug-build friendly).
//! * `--json PATH`   — also dump results as JSON.

#![forbid(unsafe_code)]

use shc_bench::{run_all, run_one, RunConfig};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RunConfig::default();
    let mut only: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => cfg = RunConfig::fast(),
            "--only" => {
                i += 1;
                only = args
                    .get(i)
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--threads" => {
                i += 1;
                cfg.threads = args.get(i).and_then(|s| s.parse().ok());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // analyze:allow(wall_clock): whole-suite elapsed_ms banner only; never enters a result table
    let started = std::time::Instant::now();
    let results = if only.is_empty() {
        run_all(&cfg)
    } else {
        only.iter()
            .map(|id| {
                run_one(id, &cfg).unwrap_or_else(|| {
                    eprintln!("unknown experiment id {id}");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# Sparse Hypercube — paper reproduction experiments\n\n\
         Fujita & Farley, IPPS/SPDP'99 (DAM 127, 2003). Each experiment \
         reproduces one figure/example/theorem; PASS means the paper's \
         claim held under machine verification.\n"
    )
    .unwrap();
    let mut failures = 0usize;
    for e in &results {
        writeln!(out, "{}", e.render()).unwrap();
        if !e.pass {
            failures += 1;
        }
    }
    writeln!(
        out,
        "---\n{} experiments, {} failed, {:.1}s",
        results.len(),
        failures,
        started.elapsed().as_secs_f64()
    )
    .unwrap();

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&results).expect("serializable");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        writeln!(out, "JSON results written to {path}").unwrap();
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
