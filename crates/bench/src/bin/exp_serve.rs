//! Long-lived flow service sweep: drives the `shc-runtime` service layer
//! (open-loop Poisson arrivals, holding times, admission policies) over
//! the built-in serve catalog and writes a machine-readable
//! `BENCH_serve.json` of per-window latency / blocking / occupancy
//! percentiles — the operational counterpart of `exp_perf`'s throughput
//! sweep. `docs/SERVICE.md` documents every metric in the artifact.
//!
//! Cells (topology × admission policy, plus one diurnal stress cell per
//! topology) execute in parallel on the work-stealing executor; each
//! cell's simulation is sequential from its own seed, so the reports —
//! including their JSON bytes — are identical for any `--threads` value.
//! `--seed-check` proves it by running the sweep at 1 and N threads and
//! comparing bytes — and repeats the proof for the trace journals, which
//! it also replays through the `trace::audit` invariant checker.
//!
//! Flags:
//! * `--fast`       — reduced sweep (CI sizes: `n = 6`, 120 rounds).
//! * `--json PATH`  — output path (default `BENCH_serve.json`).
//! * `--threads T`  — worker threads for the cell sweep (0 = all cores).
//! * `--intra W`    — intra-round propose workers for the batched
//!   admission cells (default 1; serial cells ignore it).
//! * `--trace PATH` — attach a deterministic `TraceJournal` per cell and
//!   write all journals as JSONL (cells in catalog order); the journals
//!   are audited before writing. See `docs/OBSERVABILITY.md`.
//! * `--seed-check` — assert the 1-thread/1-intra and T-thread/W-intra
//!   runs produce byte-identical reports *and* byte-identical trace
//!   journals (with `--intra 4` this pins batched admission across
//!   propose worker counts), audit the journals, then exit.

#![forbid(unsafe_code)]

use serde::Serialize;
use shc_runtime::trace::audit::audit_journals;
use shc_runtime::{
    builtin_service_catalog, run_indexed_timed, run_service_intra, run_service_traced_intra,
    Metrics, MetricsSnapshot, ServiceReport, ServiceSpec, TraceJournal,
};
// analyze:allow(wall_clock): sweep elapsed_ms + executor telemetry; excluded from the deterministic projection
use std::time::Instant;

/// Per-cell journal ring capacity: comfortably above the event volume of
/// the full-size catalog cells, so `dropped` stays 0 and the audit can
/// certify conservation from a complete stream.
const TRACE_CAPACITY: usize = 1 << 20;

/// Whole-run artifact: cell reports plus run header.
#[derive(Debug, Serialize)]
struct ServeArtifact {
    /// Artifact schema/bench name.
    bench: &'static str,
    /// `--fast` sizes in effect.
    fast: bool,
    /// Worker threads the sweep ran on (0 = all cores).
    threads: usize,
    /// Intra-round propose workers for the batched admission cells.
    intra: usize,
    /// Wall-clock milliseconds for the whole sweep (not deterministic;
    /// excluded from the seed-check projection).
    elapsed_ms: f64,
    /// Deterministic whole-sweep fold of every cell's `totals` snapshot
    /// under `Metrics::merge` semantics (counters add, gauges keep the
    /// high-water mark, histograms add bucket-wise).
    run_totals: MetricsSnapshot,
    /// Wall-clock executor utilization report (steal counters, queue
    /// gauges, per-task wall-time histograms). Scheduler-dependent, so
    /// excluded from the seed-check projection like `elapsed_ms`.
    executor: MetricsSnapshot,
    /// One deterministic report per catalog cell, in catalog order.
    reports: Vec<ServiceReport>,
}

/// The deterministic projection of a sweep: JSON of the reports only.
fn det_json(reports: &[ServiceReport]) -> String {
    serde_json::to_string_pretty(reports).expect("reports serialize")
}

fn run_sweep(cells: &[ServiceSpec], threads: usize, intra: usize) -> Vec<ServiceReport> {
    shc_runtime::map_cells(cells, threads, |spec| run_service_intra(spec, intra))
}

fn run_sweep_traced(
    cells: &[ServiceSpec],
    threads: usize,
    intra: usize,
) -> (Vec<ServiceReport>, Vec<TraceJournal>) {
    let (pairs, _) = run_indexed_timed(cells.len(), threads, |i| {
        let cell = u32::try_from(i).expect("cell index fits u32");
        run_service_traced_intra(&cells[i], cell, TRACE_CAPACITY, intra)
    });
    pairs.into_iter().unzip()
}

/// Folds every cell's cumulative snapshot into one sweep-wide snapshot.
fn fold_totals(reports: &[ServiceReport]) -> MetricsSnapshot {
    let mut m = Metrics::new();
    for r in reports {
        m.merge(&r.totals);
    }
    m.snapshot()
}

/// Renders all journals as one JSONL stream, cells in catalog order.
fn render_journals(journals: &[TraceJournal]) -> String {
    let mut out = String::new();
    for j in journals {
        j.render_jsonl_into(&mut out);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut seed_check = false;
    let mut json_path = String::from("BENCH_serve.json");
    let mut trace_path: Option<String> = None;
    let mut threads = 0usize;
    let mut intra = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--seed-check" => seed_check = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                });
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs a path");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--intra" => {
                i += 1;
                intra = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--intra needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cells = builtin_service_catalog(fast);

    if seed_check {
        let many_threads = if threads == 0 {
            shc_runtime::available_threads()
        } else {
            threads
        };
        let check_intra = intra.max(2);
        println!(
            "exp_serve seed check: {} cells, 1 vs {many_threads} threads, \
             batched cells at intra 1 vs {check_intra}",
            cells.len()
        );
        let one = det_json(&run_sweep(&cells, 1, 1));
        let many = det_json(&run_sweep(&cells, many_threads, check_intra));
        if one != many {
            eprintln!("seed check FAILED: 1-thread and {many_threads}-thread sweeps diverge");
            std::process::exit(1);
        }
        let (traced_reports, j1) = run_sweep_traced(&cells, 1, 1);
        let (_, jn) = run_sweep_traced(&cells, many_threads, check_intra);
        if det_json(&traced_reports) != one {
            eprintln!("seed check FAILED: attaching the trace probe perturbed the reports");
            std::process::exit(1);
        }
        if render_journals(&j1) != render_journals(&jn) {
            eprintln!("seed check FAILED: trace journals diverge across thread counts");
            std::process::exit(1);
        }
        match audit_journals(&j1) {
            Ok(audit) => println!(
                "trace audit OK: {} events, {} requests, {} flows opened / {} released, \
                 {} rounds checked",
                audit.events,
                audit.requests,
                audit.flows_opened,
                audit.flows_released,
                audit.rounds_checked
            ),
            Err(e) => {
                eprintln!("seed check FAILED: {e}");
                std::process::exit(1);
            }
        }
        println!(
            "seed check OK: service reports and trace journals byte-identical \
             across thread counts and intra-round worker counts"
        );
        return;
    }

    println!(
        "exp_serve sweep: {} cells, {} threads{}{}",
        cells.len(),
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        },
        if fast { " (fast)" } else { "" },
        if trace_path.is_some() {
            " (traced)"
        } else {
            ""
        }
    );

    // analyze:allow(wall_clock): wall elapsed_ms for the banner; the seed-check diffs a projection without it
    let start = Instant::now();
    let (reports, journals, telemetry) = if trace_path.is_some() {
        let (pairs, telemetry) = run_indexed_timed(cells.len(), threads, |i| {
            let cell = u32::try_from(i).expect("cell index fits u32");
            run_service_traced_intra(&cells[i], cell, TRACE_CAPACITY, intra)
        });
        let (reports, journals): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        (reports, Some(journals), telemetry)
    } else {
        let (reports, telemetry) =
            run_indexed_timed(cells.len(), threads, |i| run_service_intra(&cells[i], intra));
        (reports, None, telemetry)
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    for r in &reports {
        let last = r.windows.last().expect("at least one window");
        let arrivals: u64 = r.windows.iter().map(|w| w.arrivals).sum();
        let rejected: u64 = r.windows.iter().map(|w| w.rejected).sum();
        let loss = if arrivals == 0 {
            0.0
        } else {
            rejected as f64 / arrivals as f64
        };
        println!(
            "{:<28} {:<16} arrivals={:<6} loss={:>6.3} p99_hops={:<3} p99_wait={:<3} active_end={}",
            r.service,
            r.policy,
            arrivals,
            loss,
            last.latency_hops.p99,
            last.queue_wait_rounds.p99,
            last.active_flows_end
        );
    }
    println!(
        "executor: {} tasks on {} workers, utilization {:.2}",
        telemetry.tasks,
        telemetry.threads,
        telemetry.utilization()
    );

    if let (Some(path), Some(journals)) = (&trace_path, &journals) {
        match audit_journals(journals) {
            Ok(audit) => println!(
                "trace audit OK: {} events across {} journals, {} rounds checked",
                audit.events,
                journals.len(),
                audit.rounds_checked
            ),
            Err(e) => {
                eprintln!("trace audit FAILED: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = std::fs::write(path, render_journals(journals)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("trace journal written to {path}");
    }

    let artifact = ServeArtifact {
        bench: "flow_service",
        fast,
        threads,
        intra,
        elapsed_ms,
        run_totals: fold_totals(&reports),
        executor: telemetry.utilization_report(),
        reports,
    };
    let json = serde_json::to_string_pretty(&artifact).unwrap();
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(2);
    }
    println!("BENCH artifact written to {json_path} ({elapsed_ms:.0} ms)");
}
