//! Long-lived flow service sweep: drives the `shc-runtime` service layer
//! (open-loop Poisson arrivals, holding times, admission policies) over
//! the built-in serve catalog and writes a machine-readable
//! `BENCH_serve.json` of per-window latency / blocking / occupancy
//! percentiles — the operational counterpart of `exp_perf`'s throughput
//! sweep. `docs/SERVICE.md` documents every metric in the artifact.
//!
//! Cells (topology × admission policy, plus one diurnal stress cell per
//! topology) execute in parallel on the work-stealing executor; each
//! cell's simulation is sequential from its own seed, so the reports —
//! including their JSON bytes — are identical for any `--threads` value.
//! `--seed-check` proves it by running the sweep at 1 and N threads and
//! comparing bytes, the same contract `exp_perf --seed-check` enforces.
//!
//! Flags:
//! * `--fast`      — reduced sweep (CI sizes: `n = 6`, 120 rounds).
//! * `--json PATH` — output path (default `BENCH_serve.json`).
//! * `--threads T` — worker threads for the cell sweep (0 = all cores).
//! * `--seed-check` — assert 1-thread and T-thread runs produce
//!   byte-identical reports, then exit.

use serde::Serialize;
use shc_runtime::{builtin_service_catalog, run_service, ServiceReport, ServiceSpec};
use std::time::Instant;

/// Whole-run artifact: cell reports plus run header.
#[derive(Debug, Serialize)]
struct ServeArtifact {
    /// Artifact schema/bench name.
    bench: &'static str,
    /// `--fast` sizes in effect.
    fast: bool,
    /// Worker threads the sweep ran on (0 = all cores).
    threads: usize,
    /// Wall-clock milliseconds for the whole sweep (not deterministic;
    /// excluded from the seed-check projection).
    elapsed_ms: f64,
    /// One deterministic report per catalog cell, in catalog order.
    reports: Vec<ServiceReport>,
}

/// The deterministic projection of a sweep: JSON of the reports only.
fn det_json(reports: &[ServiceReport]) -> String {
    serde_json::to_string_pretty(reports).expect("reports serialize")
}

fn run_sweep(cells: &[ServiceSpec], threads: usize) -> Vec<ServiceReport> {
    shc_runtime::map_cells(cells, threads, run_service)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut seed_check = false;
    let mut json_path = String::from("BENCH_serve.json");
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--seed-check" => seed_check = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cells = builtin_service_catalog(fast);

    if seed_check {
        let many_threads = if threads == 0 {
            shc_runtime::available_threads()
        } else {
            threads
        };
        println!(
            "exp_serve seed check: {} cells, 1 vs {many_threads} threads",
            cells.len()
        );
        let one = det_json(&run_sweep(&cells, 1));
        let many = det_json(&run_sweep(&cells, many_threads));
        if one == many {
            println!("seed check OK: service reports byte-identical across thread counts");
            return;
        }
        eprintln!("seed check FAILED: 1-thread and {many_threads}-thread sweeps diverge");
        std::process::exit(1);
    }

    println!(
        "exp_serve sweep: {} cells, {} threads{}",
        cells.len(),
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        },
        if fast { " (fast)" } else { "" }
    );

    let start = Instant::now();
    let reports = run_sweep(&cells, threads);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    for r in &reports {
        let last = r.windows.last().expect("at least one window");
        let arrivals: u64 = r.windows.iter().map(|w| w.arrivals).sum();
        let rejected: u64 = r.windows.iter().map(|w| w.rejected).sum();
        let loss = if arrivals == 0 {
            0.0
        } else {
            rejected as f64 / arrivals as f64
        };
        println!(
            "{:<28} {:<16} arrivals={:<6} loss={:>6.3} p99_hops={:<3} p99_wait={:<3} active_end={}",
            r.service,
            r.policy,
            arrivals,
            loss,
            last.latency_hops.p99,
            last.queue_wait_rounds.p99,
            last.active_flows_end
        );
    }

    let artifact = ServeArtifact {
        bench: "flow_service",
        fast,
        threads,
        elapsed_ms,
        reports,
    };
    let json = serde_json::to_string_pretty(&artifact).unwrap();
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(2);
    }
    println!("BENCH artifact written to {json_path} ({elapsed_ms:.0} ms)");
}
