//! Runs the `shc-runtime` built-in scenario catalog: originator sweeps,
//! Monte Carlo fault injection, hot-spot traffic, and dilated multiedge
//! networks, executed across all cores on the work-stealing executor.
//!
//! Flags:
//! * `--list`          — print the catalog and exit.
//! * `--only NAME`     — run a single scenario by name.
//! * `--fast`          — reduced sizes (debug-build / CI friendly).
//! * `--threads N`     — worker threads (default: all cores).
//! * `--intra W`       — intra-round propose workers for batched
//!   scenarios (default 1; non-batched scenarios ignore it).
//! * `--json PATH`     — dump all reports as JSON.
//! * `--trace PATH`    — attach a deterministic `TraceJournal` per
//!   replica and write every journal as JSONL (scenarios in catalog
//!   order, replicas in index order; the `cell` stamp is the replica
//!   index within its scenario). Journals are audited before writing.
//! * `--seed-check`    — re-run everything single-threaded **at one
//!   intra-round worker** and fail if any aggregate differs (the
//!   determinism guarantee, end to end — with `--intra 4` this pins
//!   batched admission byte-identical between 1 and 4 propose workers);
//!   with tracing on, journals must also match byte-for-byte and pass
//!   the `trace::audit` invariant replay.

#![forbid(unsafe_code)]

use shc_runtime::trace::audit::audit_journals;
use shc_runtime::{
    available_threads, builtin_catalog, run_scenario_intra, run_scenario_traced_intra,
    ScenarioReport, TraceJournal,
};

/// Per-replica journal ring capacity; far above any catalog scenario's
/// event volume, so audits see complete streams.
const TRACE_CAPACITY: usize = 1 << 20;

/// Renders journals as one JSONL stream, in replica order.
fn render_journals(journals: &[TraceJournal]) -> String {
    let mut out = String::new();
    for j in journals {
        j.render_jsonl_into(&mut out);
    }
    out
}

fn print_report(report: &ScenarioReport, elapsed: std::time::Duration) {
    let rounds = report.metric("rounds").expect("rounds metric");
    let peak = report.metric("peak_link_load").expect("peak metric");
    let severed = report.metric("severed_calls").expect("severed metric");
    println!(
        "{:<22} {:<9} {:<16} {:>8} {:>9.1}% {:>9.1}% {:>5}/{:<5} {:>5} {:>8} {:>9}",
        report.scenario,
        report.topology,
        report.workload,
        report.replications,
        100.0 * report.blocking_rate,
        100.0 * report.mean_informed_fraction,
        rounds.p50,
        rounds.max,
        peak.p99,
        format!("{:.2}", severed.mean),
        format!("{:.0?}", elapsed),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut list = false;
    let mut seed_check = false;
    let mut threads = 0usize; // 0 = all cores
    let mut intra = 1usize;
    let mut only: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--list" => list = true,
            "--seed-check" => seed_check = true,
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--intra" => {
                i += 1;
                intra = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--intra needs a number");
                    std::process::exit(2);
                });
            }
            "--only" => {
                i += 1;
                only = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--only needs a scenario name (try --list)");
                    std::process::exit(2);
                }));
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut catalog = builtin_catalog(fast);
    if let Some(name) = &only {
        catalog.retain(|s| &s.name == name);
        if catalog.is_empty() {
            eprintln!("no scenario named `{name}` (try --list)");
            std::process::exit(2);
        }
    }
    if list {
        println!(
            "{:<22} {:<9} {:<16} {:>8} {:>6}",
            "scenario", "topology", "workload", "replicas", "seed"
        );
        for s in &catalog {
            println!(
                "{:<22} {:<9} {:<16} {:>8} {:>6x}",
                s.name,
                s.topology.label(),
                s.workload.label(),
                s.replications,
                s.seed
            );
        }
        return;
    }

    let workers = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    println!(
        "scenario catalog ({} scenarios, {} worker threads, {} intra propose workers{})",
        catalog.len(),
        workers,
        intra.max(1),
        if fast { ", fast sizes" } else { "" }
    );
    println!(
        "{:<22} {:<9} {:<16} {:>8} {:>10} {:>10} {:>11} {:>5} {:>8} {:>9}",
        "scenario",
        "topology",
        "workload",
        "replicas",
        "blocked",
        "informed",
        "rounds p50/max",
        "p99pk",
        "severed",
        "elapsed"
    );

    let mut reports: Vec<ScenarioReport> = Vec::new();
    let mut journals: Vec<TraceJournal> = Vec::new();
    let mut determinism_ok = true;
    for scenario in &catalog {
        // analyze:allow(wall_clock): per-scenario elapsed_ms banner only; never enters report JSON
        let started = std::time::Instant::now();
        let report = if trace_path.is_some() {
            let (report, js) = run_scenario_traced_intra(scenario, threads, TRACE_CAPACITY, intra);
            if seed_check {
                let (single, js1) = run_scenario_traced_intra(scenario, 1, TRACE_CAPACITY, 1);
                if single != report {
                    eprintln!("DETERMINISM VIOLATION in `{}`", scenario.name);
                    determinism_ok = false;
                }
                if render_journals(&js1) != render_journals(&js) {
                    eprintln!(
                        "TRACE DIVERGENCE in `{}`: journals differ by thread count",
                        scenario.name
                    );
                    determinism_ok = false;
                }
            }
            match audit_journals(&js) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("TRACE AUDIT FAILED in `{}`: {e}", scenario.name);
                    determinism_ok = false;
                }
            }
            journals.extend(js);
            report
        } else {
            let report = run_scenario_intra(scenario, threads, intra);
            if seed_check {
                let single = run_scenario_intra(scenario, 1, 1);
                if single != report {
                    eprintln!("DETERMINISM VIOLATION in `{}`", scenario.name);
                    determinism_ok = false;
                }
            }
            report
        };
        print_report(&report, started.elapsed());
        reports.push(report);
    }

    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, render_journals(&journals)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "trace journal written to {path} ({} journals, {} records)",
            journals.len(),
            journals
                .iter()
                .map(shc_runtime::TraceJournal::len)
                .sum::<usize>()
        );
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&reports).unwrap()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("JSON written to {path}");
    }
    if seed_check {
        println!(
            "seed check: {}",
            if determinism_ok {
                "1-thread/1-intra == N-thread/W-intra for every scenario"
            } else {
                "FAILED"
            }
        );
        if !determinism_ok {
            std::process::exit(1);
        }
    }
}
