//! Netsim engine throughput sweep: Q_n vs SQ_n under the runtime
//! workloads (broadcast replay, hot-spot, permutation, plus batched
//! propose-then-commit variants of the adaptive rows), emitting a
//! machine-readable `BENCH_netsim.json` so the perf trajectory has
//! recorded points to compare refactors against.
//!
//! Cells (one topology × dimension, three workload rows each) execute in
//! parallel on the `shc-runtime` work-stealing executor. Every cell is
//! self-contained — its own topology, schedules, and seeded RNG — so the
//! deterministic part of the output (the per-cell [`SimStats`] sample) is
//! byte-identical for any `--threads` value; `--seed-check` proves it by
//! running the sweep untimed at 1 and N threads and comparing JSON bytes.
//!
//! Flags:
//! * `--fast`        — reduced sweep (CI / bit-rot guard sizes).
//! * `--json PATH`   — output path (default `BENCH_netsim.json`).
//! * `--max-n N`     — cap the cube dimension (default 20, fast: 10;
//!   pass `21` to opportunistically include the `n = 21` cells).
//! * `--target-ms M` — measurement budget per cell (default 300).
//! * `--threads T`   — worker threads for the cell sweep (0 = all cores).
//! * `--intra W`     — intra-round propose workers for the batched rows
//!   (default 4). The `*_batch` rows are measured at intra 1 **and** at
//!   `W`, so the artifact carries the intra-cell thread-scaling pair;
//!   the deterministic sample is identical at both by contract.
//! * `--trace PATH`  — run one extra *untimed* traced pass per cell (a
//!   `TraceJournal` engine probe; the timed loops stay probe-free) and
//!   write all journals as JSONL after auditing them. See
//!   `docs/OBSERVABILITY.md`.
//! * `--seed-check`  — skip timing; assert 1-thread and T-thread runs
//!   produce byte-identical deterministic output — including the trace
//!   journals, which are also replayed through `trace::audit`, and the
//!   batched rows, whose samples must match between 1 and `W`
//!   intra-round propose workers — then exit.
//!
//! Measurement follows the criterion-shim pattern (one warmup, then
//! geometric batch growth until the time budget is spent), but reports
//! domain throughput — rounds/sec and requests/sec — rather than raw
//! time per iteration, plus a peak-RSS proxy read from
//! `/proc/self/status` where available. Timed cells sharing cores contend
//! with each other, so treat parallel-run throughput as a smoke signal;
//! record trajectory numbers with `--threads 1`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use shc_broadcast::Schedule;
use shc_netsim::{
    random_permutation_round_with, replay_competing, replay_competing_probed, BatchRequest, Engine,
    NetTopology, SimStats,
};
use shc_runtime::trace::audit::audit_journals;
use shc_runtime::{BatchAdmitter, TopologySpec, TraceJournal};
use std::hint::black_box;
// analyze:allow(wall_clock): throughput measurement harness; timings are segregated from the deterministic row sample
use std::time::{Duration, Instant};

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
struct BenchRow {
    /// Topology label (`Q_n` / `G_{n,m}`).
    topology: String,
    /// Workload label.
    workload: String,
    /// Cube dimension.
    n: u32,
    /// Vertices in the topology.
    num_vertices: u64,
    /// Intra-round propose workers (1 for the serial admission rows;
    /// the `*_batch` rows appear once per measured worker count).
    intra: usize,
    /// Simulated rounds per wall-clock second.
    rounds_per_sec: f64,
    /// Circuit requests (established + blocked) per wall-clock second.
    requests_per_sec: f64,
    /// Iterations measured.
    iters: u64,
    /// Total measured wall-clock milliseconds.
    elapsed_ms: f64,
    /// Deterministic single-iteration stats (same for any thread count).
    sample: SimStats,
}

/// Whole-run artifact: the sweep plus a peak-RSS proxy.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Artifact schema/bench name.
    bench: &'static str,
    /// `--fast` sizes in effect.
    fast: bool,
    /// Worker threads the cell sweep ran on (0 = all cores).
    threads: usize,
    /// Intra-round propose workers the `*_batch` rows scaled up to.
    intra: usize,
    /// Peak resident set size in kilobytes (`VmHWM`; 0 if unavailable).
    peak_rss_kb: u64,
    /// Measured cells.
    rows: Vec<BenchRow>,
}

/// Times `routine` with warmup + geometric batch growth until `target`
/// is spent; returns (per-iteration stats sample, iterations, elapsed).
/// With `target == ZERO` only the deterministic sample runs (seed-check
/// mode).
fn measure<F: FnMut() -> SimStats>(target: Duration, mut routine: F) -> (SimStats, u64, Duration) {
    let sample = black_box(routine()); // warmup + shape sample
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut batch = 1u64;
    while total < target && iters < 1_000_000 {
        // analyze:allow(wall_clock): the measured quantity itself
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        total += start.elapsed();
        iters += batch;
        batch = batch.saturating_mul(2);
    }
    (sample, iters, total)
}

fn row(
    topology: &str,
    workload: &str,
    n: u32,
    num_vertices: u64,
    intra: usize,
    target: Duration,
    routine: impl FnMut() -> SimStats,
) -> BenchRow {
    let (sample, iters, elapsed) = measure(target, routine);
    let secs = elapsed.as_secs_f64();
    let requests = (sample.established + sample.blocked) as u64 * iters;
    let rounds = sample.rounds as u64 * iters;
    // iters == 0 (seed-check mode) reports 0 throughput, 0 elapsed —
    // deterministic by construction.
    let per_sec = |count: u64| {
        if iters == 0 {
            0.0
        } else {
            count as f64 / secs.max(1e-9)
        }
    };
    BenchRow {
        topology: topology.to_string(),
        workload: workload.to_string(),
        n,
        num_vertices,
        intra,
        rounds_per_sec: per_sec(rounds),
        requests_per_sec: per_sec(requests),
        iters,
        elapsed_ms: secs * 1e3,
        sample,
    }
}

/// `VmHWM` (peak RSS) in kB from `/proc/self/status`; 0 when unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// One parallel cell: builds the topology (freezing its link table once,
/// shared by every engine constructed inside the timed loops), then runs
/// the three runtime workloads over it.
fn run_cell(spec: &TopologySpec, n: u32, target: Duration, intra: usize) -> Vec<BenchRow> {
    let topo = spec.build();
    let label = spec.label();
    let nv = topo.num_vertices();
    let schedules: Vec<Schedule> = [0u64, 1, (1 << n) / 2, (1 << n) - 1]
        .iter()
        .map(|&s| topo.schedule(s))
        .collect();
    let mut rows = Vec::with_capacity(7);
    // Broadcast: 4 competing minimum-time broadcasts share the network.
    rows.push(row(&label, "broadcast_x4", n, nv, 1, target, || {
        replay_competing(&topo, &schedules, 1)
    }));
    // Hot-spot: every sender wants vertex 0, adaptively routed. One
    // engine serves every iteration (`take_stats` windows) so the row
    // times routing, not per-iteration construction — at n = 20 a fresh
    // engine is ~80 MB of allocation + zeroing per round.
    let senders: Vec<u64> = (1..nv.min(1025)).collect();
    let hot_reqs: Vec<BatchRequest> = senders
        .iter()
        .map(|&s| BatchRequest {
            src: s,
            dst: 0,
            max_len: n + 2,
        })
        .collect();
    let mut hot = Engine::new(&topo, 1);
    rows.push(row(&label, "hot_spot", n, nv, 1, target, move || {
        hot.begin_round();
        for &s in &senders {
            let _ = hot.request(s, 0, n + 2);
        }
        hot.take_stats()
    }));
    // Permutation: random pairwise adaptive traffic, one round per iter,
    // same amortized-engine pattern.
    let pairs = nv.min(2048) as usize;
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    let mut perm = Engine::new(&topo, 1);
    rows.push(row(&label, "permutation", n, nv, 1, target, move || {
        random_permutation_round_with(&mut perm, pairs, n + 2, &mut rng)
    }));
    // Batched counterparts of the two adaptive rows, once per intra
    // worker count: the same request stream admitted as one
    // propose-then-commit batch per round. The deterministic sample is
    // identical at every worker count by contract — only the throughput
    // columns move, which is the intra-cell scaling the artifact records.
    let intra_values: &[usize] = if intra > 1 { &[1, intra] } else { &[1] };
    for &workers in intra_values {
        let reqs = hot_reqs.clone();
        let mut adm = BatchAdmitter::new(nv, workers);
        let mut sim = Engine::new(&topo, 1);
        rows.push(row(&label, "hot_spot_batch", n, nv, workers, target, move || {
            sim.begin_round();
            let _ = adm.admit_round(&mut sim, &reqs);
            sim.take_stats()
        }));
    }
    for &workers in intra_values {
        let mut rng = StdRng::seed_from_u64(0xBE9C);
        let mut adm = BatchAdmitter::new(nv, workers);
        let mut sim = Engine::new(&topo, 1);
        let mut reqs: Vec<BatchRequest> = Vec::with_capacity(pairs);
        rows.push(row(&label, "permutation_batch", n, nv, workers, target, move || {
            use rand::Rng;
            reqs.clear();
            let mut skipped = 0usize;
            for _ in 0..pairs {
                let src = rng.gen_range(0..nv);
                let dst = rng.gen_range(0..nv);
                if src == dst {
                    skipped += 1;
                    continue;
                }
                reqs.push(BatchRequest {
                    src,
                    dst,
                    max_len: n + 2,
                });
            }
            sim.begin_round();
            let _ = adm.admit_round(&mut sim, &reqs);
            let mut stats = sim.take_stats();
            stats.requested = pairs;
            stats.skipped = skipped;
            stats
        }));
    }
    rows
}

/// Runs the whole sweep across cells on `threads` workers, returning
/// rows in deterministic (dimension-major, spec-minor, workload) order.
fn run_sweep(dims: &[u32], target: Duration, threads: usize, intra: usize) -> Vec<BenchRow> {
    let cells: Vec<(u32, TopologySpec)> = dims
        .iter()
        .flat_map(|&n| {
            [
                (n, TopologySpec::Hypercube { n }),
                (n, TopologySpec::SparseBase { n, m: 3.min(n - 1) }),
            ]
        })
        .collect();
    shc_runtime::map_cells(&cells, threads, |(n, spec)| run_cell(spec, *n, target, intra))
        .into_iter()
        .flatten()
        .collect()
}

/// Journal capacity for one traced workload row: the broadcast row emits
/// ~4 calls per vertex plus flow/round bookkeeping, so 8 × vertices
/// (floored for tiny cells) keeps `dropped` at 0 and the audit honest.
fn trace_capacity(num_vertices: u64) -> usize {
    usize::try_from(num_vertices.saturating_mul(8))
        .unwrap_or(usize::MAX)
        .max(1 << 16)
}

/// One *untimed* traced pass over a cell: each workload row runs its
/// deterministic sample once with a [`TraceJournal`] attached (cell ids
/// `base`, `base + 1`, `base + 2` for broadcast / hot-spot /
/// permutation). The timed loops in [`run_cell`] stay probe-free.
fn traced_cell(spec: &TopologySpec, n: u32, base: u32) -> Vec<TraceJournal> {
    let topo = spec.build();
    let nv = topo.num_vertices();
    let cap = trace_capacity(nv);
    let schedules: Vec<Schedule> = [0u64, 1, (1 << n) / 2, (1 << n) - 1]
        .iter()
        .map(|&s| topo.schedule(s))
        .collect();
    let mut journals = Vec::with_capacity(3);
    let (_, j) = replay_competing_probed(
        &topo,
        &schedules,
        1,
        TraceJournal::new(base, cap),
        |_, _| {},
    );
    journals.push(j);
    let senders: Vec<u64> = (1..nv.min(1025)).collect();
    let mut hot = Engine::with_probe(&topo, 1, TraceJournal::new(base + 1, cap));
    hot.begin_round();
    for &s in &senders {
        let _ = hot.request(s, 0, n + 2);
    }
    let (_, j) = hot.finish_with_probe();
    journals.push(j);
    let pairs = nv.min(2048) as usize;
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    let mut perm = Engine::with_probe(&topo, 1, TraceJournal::new(base + 2, cap));
    let _ = random_permutation_round_with(&mut perm, pairs, n + 2, &mut rng);
    let (_, j) = perm.finish_with_probe();
    journals.push(j);
    journals
}

/// Traced counterpart of [`run_sweep`]: same deterministic cell order,
/// one journal per workload row, independent of `threads`.
fn run_sweep_traced(dims: &[u32], threads: usize) -> Vec<TraceJournal> {
    let cells: Vec<(u32, TopologySpec)> = dims
        .iter()
        .flat_map(|&n| {
            [
                (n, TopologySpec::Hypercube { n }),
                (n, TopologySpec::SparseBase { n, m: 3.min(n - 1) }),
            ]
        })
        .collect();
    shc_runtime::run_indexed(cells.len(), threads, |i| {
        let (n, spec) = &cells[i];
        let base = u32::try_from(i * 3).expect("cell index fits u32");
        traced_cell(spec, *n, base)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders journals as one JSONL stream, in sweep order.
fn render_journals(journals: &[TraceJournal]) -> String {
    let mut out = String::new();
    for j in journals {
        j.render_jsonl_into(&mut out);
    }
    out
}

/// The deterministic projection of a sweep: JSON of the rows only (the
/// report header carries RSS, which legitimately differs run to run).
fn det_json(rows: &[BenchRow]) -> String {
    serde_json::to_string_pretty(&rows).expect("rows serialize")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut seed_check = false;
    let mut json_path = String::from("BENCH_netsim.json");
    let mut trace_path: Option<String> = None;
    let mut max_n: Option<u32> = None;
    let mut target_ms = 300u64;
    let mut threads = 0usize;
    let mut intra = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--seed-check" => seed_check = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                });
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs a path");
                    std::process::exit(2);
                }));
            }
            "--max-n" => {
                i += 1;
                max_n = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-n needs a number");
                    std::process::exit(2);
                }));
            }
            "--target-ms" => {
                i += 1;
                target_ms = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--target-ms needs a number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--intra" => {
                i += 1;
                intra = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--intra needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Both topologies are rule-generated (implicit link substrate), so
    // the sweep reaches n = 20 — 1 048 576 vertices — without the CSR
    // memory wall that capped the frozen-table era at n = 18; n = 21 is
    // opportunistic (--max-n 21) since its four-schedule broadcast cell
    // wants a few extra GB of schedule storage.
    let cap = max_n.unwrap_or(if fast { 10 } else { 20 });
    let dims: Vec<u32> = [8u32, 10, 12, 14, 16, 18, 20, 21]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let target = Duration::from_millis(if fast { target_ms.min(60) } else { target_ms });

    if seed_check {
        let many_threads = if threads == 0 {
            shc_runtime::available_threads()
        } else {
            threads
        };
        let check_intra = intra.max(2);
        println!(
            "exp_perf seed check: n in {dims:?}, untimed, 1 vs {many_threads} threads, \
             batch rows at intra 1 vs {check_intra}"
        );
        let rows_one = run_sweep(&dims, Duration::ZERO, 1, check_intra);
        let one = det_json(&rows_one);
        let many = det_json(&run_sweep(&dims, Duration::ZERO, many_threads, check_intra));
        if one != many {
            eprintln!("seed check FAILED: 1-thread and {many_threads}-thread sweeps diverge");
            std::process::exit(1);
        }
        // Intra invariance of the batched rows: the deterministic sample
        // of every `*_batch` row must be identical at 1 and check_intra
        // propose workers.
        for r in rows_one.iter().filter(|r| r.intra > 1) {
            let serial = rows_one
                .iter()
                .find(|s| {
                    s.intra == 1 && s.workload == r.workload && s.topology == r.topology && s.n == r.n
                })
                .expect("every batch row has an intra-1 twin");
            if serial.sample != r.sample {
                eprintln!(
                    "seed check FAILED: {} {} n={} sample diverges between intra 1 and {}",
                    r.topology, r.workload, r.n, r.intra
                );
                std::process::exit(1);
            }
        }
        let j1 = run_sweep_traced(&dims, 1);
        let jn = run_sweep_traced(&dims, many_threads);
        if render_journals(&j1) != render_journals(&jn) {
            eprintln!("seed check FAILED: trace journals diverge across thread counts");
            std::process::exit(1);
        }
        match audit_journals(&j1) {
            Ok(audit) => println!(
                "trace audit OK: {} events, {} requests across {} journals",
                audit.events,
                audit.requests,
                j1.len()
            ),
            Err(e) => {
                eprintln!("seed check FAILED: {e}");
                std::process::exit(1);
            }
        }
        println!(
            "seed check OK: deterministic output and trace journals byte-identical \
             across thread counts and intra-round worker counts"
        );
        return;
    }

    println!(
        "exp_perf sweep: n in {dims:?}, {} ms budget per cell, {} threads, intra {intra}{}",
        target.as_millis(),
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        },
        if fast { " (fast)" } else { "" }
    );

    if let Some(path) = &trace_path {
        // Untimed traced pass, before the timed loops so probe work
        // cannot contaminate the throughput numbers.
        let journals = run_sweep_traced(&dims, threads);
        match audit_journals(&journals) {
            Ok(audit) => println!(
                "trace audit OK: {} events across {} journals",
                audit.events,
                journals.len()
            ),
            Err(e) => {
                eprintln!("trace audit FAILED: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = std::fs::write(path, render_journals(&journals)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("trace journal written to {path}");
    }

    let rows = run_sweep(&dims, target, threads, intra);
    for r in &rows {
        println!(
            "{:<10} {:<18} n={:<2} intra={:<2} {:>12.0} rounds/s {:>14.0} req/s   ({} iters, {:.0} ms)",
            r.topology,
            r.workload,
            r.n,
            r.intra,
            r.rounds_per_sec,
            r.requests_per_sec,
            r.iters,
            r.elapsed_ms
        );
    }

    let report = BenchReport {
        bench: "netsim_engine",
        fast,
        threads,
        intra,
        peak_rss_kb: peak_rss_kb(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "BENCH artifact written to {json_path} (peak RSS {} kB)",
        report.peak_rss_kb
    );
}
