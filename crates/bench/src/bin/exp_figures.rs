//! Emits DOT renderings of the paper's figures into `out/figures/`:
//!
//! * `fig1_tree.dot`        — the Theorem-1 tree at h = 3 (Fig. 1);
//! * `fig2_g42_rule1.dot`   — G_{4,2} with Rule-1 edges highlighted (Fig. 2);
//! * `fig3_g42.dot`         — the full G_{4,2} (Fig. 3);
//! * `fig4_broadcast.dot`   — Fig. 4's first two broadcast rounds, calls
//!   highlighted.
//!
//! Render with `dot -Tsvg out/figures/fig3_g42.dot -o fig3.svg`.

#![forbid(unsafe_code)]

use shc_bench::experiments::figures::g42_paper;
use shc_broadcast::broadcast_scheme;
use shc_graph::builders::theorem1_tree;
use shc_graph::dot::{to_dot, DotOptions};
use shc_graph::{GraphView, Node};

fn main() {
    let out_dir = std::path::Path::new("out/figures");
    std::fs::create_dir_all(out_dir).expect("create out/figures");
    let mut written = Vec::new();

    // Fig. 1: the Theorem-1 tree for h = 3 (22 vertices, Δ = 3).
    let tree = theorem1_tree(3);
    let mut opts = DotOptions::named("fig1_theorem1_tree_h3");
    opts.highlight_vertices.push(0); // the center
    let path = out_dir.join("fig1_tree.dot");
    std::fs::write(&path, to_dot(&tree, &opts)).expect("write fig1");
    written.push(path);

    // Figs. 2–3: G_{4,2} (paper labeling, S_1 = {3}, S_2 = {4}).
    let g = g42_paper();
    let mat = g.to_graph();
    let rule1: Vec<(Node, Node)> = mat
        .edge_iter()
        .filter(|&(u, v)| ((u ^ v) as u64).trailing_zeros() < 2)
        .collect();
    let mut opts = DotOptions::named("fig2_g42_rule1").with_binary_labels(4, 16);
    opts.highlight_edges = rule1;
    let path = out_dir.join("fig2_g42_rule1.dot");
    std::fs::write(&path, to_dot(&mat, &opts)).expect("write fig2");
    written.push(path);

    let opts = DotOptions::named("fig3_g42").with_binary_labels(4, 16);
    let path = out_dir.join("fig3_g42.dot");
    std::fs::write(&path, to_dot(&mat, &opts)).expect("write fig3");
    written.push(path);

    // Fig. 4: the first two rounds of Broadcast_2 from 0000.
    let schedule = broadcast_scheme(&g, 0);
    let mut opts = DotOptions::named("fig4_broadcast_rounds12").with_binary_labels(4, 16);
    for round in schedule.rounds.iter().take(2) {
        for call in &round.calls {
            for w in call.path.windows(2) {
                opts.highlight_edges.push((w[0] as Node, w[1] as Node));
            }
            opts.highlight_vertices.push(call.receiver() as Node);
        }
    }
    opts.highlight_vertices.push(0);
    let path = out_dir.join("fig4_broadcast.dot");
    std::fs::write(&path, to_dot(&mat, &opts)).expect("write fig4");
    written.push(path);

    println!("wrote {} figure files:", written.len());
    for p in written {
        println!("  {}", p.display());
    }
}
