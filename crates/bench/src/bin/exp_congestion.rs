//! The §5 congestion extension in detail: sweeps competing-broadcast
//! counts and link dilations on a sparse hypercube and on the full
//! hypercube, printing blocking rates, peak loads, and mean hops.
//!
//! Flags: `--n <dim>` (default 10), `--m <base>` (default 3),
//! `--seed <u64>`, `--json PATH`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shc_broadcast::schemes::hypercube::hypercube_broadcast;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_broadcast::Schedule;
use shc_core::SparseHypercube;
use shc_graph::builders::hypercube;
use shc_netsim::{replay_competing, MaterializedNet, SimStats};

#[derive(serde::Serialize)]
struct CongestionRow {
    topology: String,
    broadcasts: usize,
    dilation: u32,
    blocking_rate: f64,
    peak_link_load: u32,
    mean_hops: f64,
    mean_round_latency: f64,
    established: usize,
    blocked: usize,
}

fn stats_row(topology: &str, broadcasts: usize, dilation: u32, s: &SimStats) -> CongestionRow {
    CongestionRow {
        topology: topology.to_string(),
        broadcasts,
        dilation,
        blocking_rate: s.blocking_rate(),
        peak_link_load: s.peak_link_load,
        mean_hops: s.mean_hops(),
        mean_round_latency: s.mean_round_latency(),
        established: s.established,
        blocked: s.blocked,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 10u32;
    let mut m = 3u32;
    let mut seed = 7u64;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n <dim>");
            }
            "--m" => {
                i += 1;
                m = args[i].parse().expect("--m <base>");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed <u64>");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(m >= 1 && m < n && n <= 16, "need 1 <= m < n <= 16");

    let mut rng = StdRng::seed_from_u64(seed);
    let g = SparseHypercube::construct_base(n, m);
    let q = MaterializedNet::new(hypercube(n));
    println!(
        "congestion sweep on G_{{{n},{m}}} (Δ = {}) vs Q_{n} (Δ = {n}), seed {seed}",
        g.max_degree()
    );
    println!(
        "{:<8} {:>10} {:>8} {:>9} {:>9} {:>9} {:>12} {:>14}",
        "topology",
        "broadcasts",
        "dilation",
        "blocked",
        "rate",
        "peak",
        "mean hops",
        "round latency"
    );

    let mut rows: Vec<CongestionRow> = Vec::new();
    for competitors in [1usize, 2, 4, 8, 16] {
        // Distinct random sources, 0 always included for determinism.
        let mut sources = std::collections::BTreeSet::from([0u64]);
        while sources.len() < competitors {
            sources.insert(rng.gen_range(0..(1u64 << n)));
        }
        let sparse: Vec<Schedule> = sources.iter().map(|&s| broadcast_scheme(&g, s)).collect();
        let cube: Vec<Schedule> = sources.iter().map(|&s| hypercube_broadcast(n, s)).collect();
        for dilation in [1u32, 2, 4] {
            for (name, stats) in [
                ("sparse", replay_competing(&g, &sparse, dilation)),
                ("Q_n", replay_competing(&q, &cube, dilation)),
            ] {
                println!(
                    "{:<8} {:>10} {:>8} {:>9} {:>8.1}% {:>9} {:>12.2} {:>14.2}",
                    name,
                    competitors,
                    dilation,
                    stats.blocked,
                    100.0 * stats.blocking_rate(),
                    stats.peak_link_load,
                    stats.mean_hops(),
                    stats.mean_round_latency()
                );
                rows.push(stats_row(name, competitors, dilation, &stats));
            }
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, serde_json::to_string_pretty(&rows).unwrap()).expect("write json");
        println!("JSON written to {path}");
    }
}
