//! Minimal ASCII table renderer for the experiment harness output
//! (EXPERIMENTS.md is generated from these tables).

/// A rendered experiment: identity, claim, measured rows, verdict.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Experiment {
    /// Experiment id from DESIGN.md (e.g. "E10").
    pub id: &'static str,
    /// Which part of the paper it reproduces.
    pub paper_ref: &'static str,
    /// One-line title.
    pub title: String,
    /// The paper's claim being checked.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Summary of what was measured.
    pub observed: String,
    /// Did the measurement confirm the claim?
    pub pass: bool,
}

impl Experiment {
    /// Renders the experiment as a markdown-ish block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## {} — {} ({})\n\nClaim: {}\n\n",
            self.id, self.title, self.paper_ref, self.claim
        ));
        out.push_str(&render_table(&self.headers, &self.rows));
        out.push_str(&format!(
            "\nObserved: {}\nVerdict: {}\n",
            self.observed,
            if self.pass { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Renders rows as a fixed-width ASCII table.
#[must_use]
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Shorthand for building a row of strings.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($cell.to_string()),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["n".to_string(), "value".to_string()],
            &[row!["3", "x"], row!["10", "long"]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(" n |"));
        assert!(lines[2].contains("  3 |"));
        // All lines the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn experiment_render_contains_verdict() {
        let e = Experiment {
            id: "E0",
            paper_ref: "none",
            title: "smoke".into(),
            claim: "c".into(),
            headers: vec!["a".into()],
            rows: vec![row!["1"]],
            observed: "ok".into(),
            pass: true,
        };
        let r = e.render();
        assert!(r.contains("## E0"));
        assert!(r.contains("Verdict: PASS"));
    }
}
