//! Scheme-correctness sweeps: E9 (Theorem 4), E12 (Theorem 6), E18
//! (Properties 1–2). These are the largest machine checks: every (n, m)
//! resp. parameter tuple, several sources each, validated against
//! Definition 1 by the `shc-broadcast` verifier — in parallel via the
//! crossbeam fan-out helper.

use crate::row;
use crate::table::Experiment;
use shc_broadcast::{broadcast_scheme, verify_minimum_time, verify_schedule};
use shc_core::SparseHypercube;
use shc_graph::parallel::par_map_indexed;

fn sources_for(n: u32) -> Vec<u64> {
    let size = 1u64 << n;
    let mut s = vec![0, size - 1, size / 2, 0xAAAA_AAAA & (size - 1), 1];
    s.sort_unstable();
    s.dedup();
    s
}

/// E9 — Theorem 4: `Broadcast_2` is minimum-time on every
/// `Construct_BASE(n, m)`, checked for all `1 <= m < n <= max_n` and a
/// spread of sources.
#[must_use]
pub fn e9_theorem4_sweep(max_n: u32, threads: Option<usize>) -> Experiment {
    let cases: Vec<(u32, u32)> = (2..=max_n)
        .flat_map(|n| (1..n).map(move |m| (n, m)))
        .collect();
    let results: Vec<(u32, u32, usize, bool)> = par_map_indexed(cases.len(), threads, |i| {
        let (n, m) = cases[i];
        let g = SparseHypercube::construct_base(n, m);
        let mut checked = 0usize;
        let mut ok = true;
        for source in sources_for(n) {
            let schedule = broadcast_scheme(&g, source);
            match verify_minimum_time(&g, &schedule, 2) {
                Ok(r) => {
                    ok &= r.rounds == n as usize && r.max_call_len <= 2;
                }
                Err(_) => ok = false,
            }
            checked += 1;
        }
        (n, m, checked, ok)
    });
    let mut rows = Vec::new();
    let mut pass = true;
    for n in 2..=max_n {
        let group: Vec<&(u32, u32, usize, bool)> = results.iter().filter(|r| r.0 == n).collect();
        let all_ok = group.iter().all(|r| r.3);
        let checks: usize = group.iter().map(|r| r.2).sum();
        pass &= all_ok;
        rows.push(row![
            n,
            group.len(),
            checks,
            if all_ok {
                "all minimum-time"
            } else {
                "FAILURE"
            }
        ]);
    }
    Experiment {
        id: "E9",
        paper_ref: "Theorem 4",
        title: "Broadcast_2 is a minimum-time 2-line scheme on every G_{n,m}".into(),
        claim: "For every 1 <= m < n, Scheme Broadcast_2 completes in \
                exactly n = log2 N rounds with calls of length <= 2, from \
                any source"
            .into(),
        headers: vec![
            "n".into(),
            "(n,m) pairs".into(),
            "schedules verified".into(),
            "result".into(),
        ],
        rows,
        observed: format!(
            "{} (n,m) pairs × ~5 sources machine-verified against \
             Definition 1",
            cases.len()
        ),
        pass,
    }
}

/// E12 — Theorem 6: `Broadcast_k` is minimum-time on recursive
/// constructions for k = 3, 4, 5.
#[must_use]
pub fn e12_theorem6_sweep(threads: Option<usize>) -> Experiment {
    // Parameter tuples across k = 3, 4, 5 with materializable n.
    let cases: Vec<Vec<u32>> = vec![
        vec![1, 2, 5],
        vec![1, 3, 6],
        vec![2, 4, 7],
        vec![2, 4, 9],
        vec![2, 5, 10],
        vec![3, 5, 11],
        vec![3, 6, 12],
        vec![1, 2, 3, 7],
        vec![1, 3, 5, 9],
        vec![2, 4, 6, 10],
        vec![2, 4, 7, 12],
        vec![1, 2, 3, 4, 8],
        vec![1, 2, 4, 6, 11],
        vec![2, 3, 4, 5, 13],
    ];
    let results: Vec<(usize, usize, bool, usize)> = par_map_indexed(cases.len(), threads, |i| {
        let dims = &cases[i];
        let k = dims.len();
        let g = SparseHypercube::construct(dims);
        let n = g.n();
        let mut ok = true;
        let mut checked = 0usize;
        let mut max_len = 0usize;
        for source in sources_for(n) {
            let schedule = broadcast_scheme(&g, source);
            match verify_minimum_time(&g, &schedule, k) {
                Ok(r) => {
                    ok &= r.rounds == n as usize;
                    max_len = max_len.max(r.max_call_len);
                }
                Err(_) => ok = false,
            }
            checked += 1;
        }
        (k, checked, ok, max_len)
    });
    let mut rows = Vec::new();
    let mut pass = true;
    for (dims, (k, checked, ok, max_len)) in cases.iter().zip(&results) {
        pass &= ok;
        rows.push(row![
            k,
            format!("{dims:?}"),
            checked,
            max_len,
            if *ok { "minimum-time" } else { "FAILURE" }
        ]);
    }
    Experiment {
        id: "E12",
        paper_ref: "Theorem 6",
        title: "Broadcast_k is a minimum-time k-line scheme (k = 3, 4, 5)".into(),
        claim: "Scheme Broadcast_k on Construct(k; n, n_{k−1}, …, n_1) \
                finishes in exactly n rounds with call lengths <= k, from \
                any source"
            .into(),
        headers: vec![
            "k".into(),
            "dims".into(),
            "schedules".into(),
            "max call len".into(),
            "result".into(),
        ],
        rows,
        observed: "every schedule verified; the longest call never exceeds k".into(),
        pass,
    }
}

/// E18 — Properties 1 and 2: schedules valid at `k` remain valid at
/// `k' > k`; membership classes are nested.
#[must_use]
pub fn e18_monotonicity() -> Experiment {
    let g2 = SparseHypercube::construct_base(8, 3);
    let s2 = broadcast_scheme(&g2, 0);
    let g3 = SparseHypercube::construct(&[2, 4, 8]);
    let s3 = broadcast_scheme(&g3, 0);
    let mut rows = Vec::new();
    let mut pass = true;
    for k in 2..=8usize {
        let ok2 = verify_schedule(&g2, &s2, k).is_ok();
        let ok3 = k >= 3 && verify_schedule(&g3, &s3, k).is_ok();
        pass &= ok2 && (k < 3 || ok3);
        rows.push(row![
            k,
            if ok2 { "valid" } else { "INVALID" },
            if k < 3 {
                "n/a (k < 3)".to_string()
            } else if ok3 {
                "valid".to_string()
            } else {
                "INVALID".to_string()
            }
        ]);
    }
    Experiment {
        id: "E18",
        paper_ref: "Properties 1–2",
        title: "Monotonicity: k-line schemes remain valid for larger k".into(),
        claim: "A minimum-time k-line scheme is a minimum-time (k+1)-line \
                scheme (Property 1), hence G_k ⊆ G_{k+1} (Property 2)"
            .into(),
        headers: vec![
            "k".into(),
            "Broadcast_2 schedule on G_{8,3}".into(),
            "Broadcast_3 schedule on (2,4,8)".into(),
        ],
        rows,
        observed: "each schedule validates at its native k and at every \
                   larger k"
            .into(),
        pass,
    }
}
