//! E17 — the §5 extension, measured: congestion of competing broadcasts on
//! sparse vs. full hypercubes, and how link dilation (multi-circuit links)
//! absorbs it. E21 re-runs the sweep as Monte Carlo **scenarios** on the
//! `shc-runtime` parallel executor, cross-checked against E17's legacy
//! single-thread replay path.

use crate::row;
use crate::table::Experiment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shc_broadcast::schemes::hypercube::hypercube_broadcast;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_broadcast::Schedule;
use shc_core::SparseHypercube;
use shc_graph::builders::hypercube;
use shc_netsim::{replay_competing, MaterializedNet};
use shc_runtime::{run_scenario, OriginatorPolicy, Scenario, TopologySpec, Workload};

fn distinct_sources(n: u32, count: usize, rng: &mut StdRng) -> Vec<u64> {
    let size = 1u64 << n;
    let mut set = std::collections::BTreeSet::new();
    set.insert(0u64);
    while set.len() < count {
        set.insert(rng.gen_range(0..size));
    }
    set.into_iter().collect()
}

/// E17 — blocking rate of `c` competing broadcasts under dilation 1, 2, 4.
#[must_use]
pub fn e17_congestion(n: u32, m: u32, seed: u64) -> Experiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = SparseHypercube::construct_base(n, m);
    let q = MaterializedNet::new(hypercube(n));

    let mut rows = Vec::new();
    let mut pass = true;
    for &competitors in &[1usize, 2, 4, 8] {
        let sources = distinct_sources(n, competitors, &mut rng);
        let sparse_schedules: Vec<Schedule> =
            sources.iter().map(|&s| broadcast_scheme(&g, s)).collect();
        let cube_schedules: Vec<Schedule> =
            sources.iter().map(|&s| hypercube_broadcast(n, s)).collect();
        for &dilation in &[1u32, 2, 4] {
            let sp = replay_competing(&g, &sparse_schedules, dilation);
            let qu = replay_competing(&q, &cube_schedules, dilation);
            // Single broadcast at dilation 1 must never block (Theorem 4's
            // edge-disjointness, re-checked physically).
            if competitors == 1 && dilation == 1 {
                pass &= sp.blocked == 0 && qu.blocked == 0;
            }
            rows.push(row![
                competitors,
                dilation,
                format!("{:.1}%", 100.0 * sp.blocking_rate()),
                sp.peak_link_load,
                format!("{:.1}%", 100.0 * qu.blocking_rate()),
                qu.peak_link_load
            ]);
        }
    }
    // Monotonicity: more dilation never increases blocking for the same
    // competitor set (checked coarsely over the collected rows).
    Experiment {
        id: "E17",
        paper_ref: "§5 (congestion / dilated networks), implemented extension",
        title: format!("Competing broadcasts on G_{{{n},{m}}} vs Q_{n}: blocking vs dilation"),
        claim: "Sparseness concentrates traffic: with several simultaneous \
                broadcasts, dilation-1 links block calls; increasing link \
                multiplicity (dilated networks, §5) absorbs the congestion"
            .into(),
        headers: vec![
            "broadcasts".into(),
            "dilation".into(),
            "sparse blocked".into(),
            "sparse peak load".into(),
            "Q_n blocked".into(),
            "Q_n peak load".into(),
        ],
        rows,
        observed: "single broadcasts never block at dilation 1 (physical \
                   re-check of edge-disjointness); blocking grows with \
                   competitor count and shrinks with dilation; the sparse \
                   graph pays more than Q_n, quantifying §5's trade-off"
            .into(),
        pass,
    }
}

/// E21 — the E17 sweep ported to the `shc-runtime` scenario engine:
/// Monte Carlo over random co-source draws instead of one fixed draw,
/// executed on `threads` workers (None = all cores), with three
/// correctness cross-checks against the legacy path.
#[must_use]
pub fn e21_runtime_congestion(n: u32, m: u32, seed: u64, threads: Option<usize>) -> Experiment {
    let threads = threads.unwrap_or(0); // 0 = all cores
    let g = SparseHypercube::construct_base(n, m);
    let mut rows = Vec::new();
    let mut pass = true;

    // Cross-check 1 (legacy single-thread path): a single fixed-source
    // broadcast run through the runtime must reproduce the legacy
    // `replay_competing` counters exactly.
    let solo = Scenario::new(
        "e21-solo",
        TopologySpec::SparseBase { n, m },
        Workload::Broadcast { competing: 1 },
    )
    .seed(seed);
    let solo_report = run_scenario(&solo, threads);
    let legacy = replay_competing(&g, &[broadcast_scheme(&g, 0)], 1);
    pass &= solo_report.total_established == legacy.established as u64
        && solo_report.total_blocked == legacy.blocked as u64
        && solo_report.metric("peak_link_load").map(|s| s.max)
            == Some(u64::from(legacy.peak_link_load));

    let mut prev_blocking = f64::INFINITY;
    for &dilation in &[1u32, 2, 4] {
        let scenario = Scenario::new(
            format!("e21-d{dilation}"),
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 4 },
        )
        .originators(OriginatorPolicy::Random)
        .dilation(dilation)
        .replications(32)
        .seed(seed);
        let report = run_scenario(&scenario, threads);
        // Cross-check 2: same seed, 1 worker vs N workers — identical
        // aggregates (the determinism contract, exercised in-experiment).
        pass &= report == run_scenario(&scenario, 1);
        // Cross-check 3: dilation monotonicity of the aggregate.
        pass &= report.blocking_rate <= prev_blocking;
        prev_blocking = report.blocking_rate;
        let peak = report.metric("peak_link_load").expect("metric present");
        rows.push(row![
            4,
            dilation,
            report.replications,
            format!("{:.1}%", 100.0 * report.blocking_rate),
            format!("{:.2}", peak.mean),
            peak.p99
        ]);
    }
    Experiment {
        id: "E21",
        paper_ref: "§5 congestion, Monte Carlo via shc-runtime",
        title: format!("Scenario engine: competing broadcasts on G_{{{n},{m}}}, replicated"),
        claim: "The parallel scenario executor reproduces the legacy \
                single-thread congestion replay exactly, its aggregates are \
                identical for 1 and N workers, and blocking still falls \
                monotonically with dilation when randomized over co-sources"
            .into(),
        headers: vec![
            "broadcasts".into(),
            "dilation".into(),
            "replicas".into(),
            "blocking rate".into(),
            "mean peak load".into(),
            "p99 peak load".into(),
        ],
        rows,
        observed: "runtime == legacy on the solo broadcast; 1-thread == \
                   N-thread aggregates; dilation absorbs randomized \
                   contention just as it absorbed the fixed draw"
            .into(),
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_experiment_passes() {
        let e = e17_congestion(8, 3, 42);
        assert!(e.pass, "{}", e.render());
        assert_eq!(e.rows.len(), 12);
    }

    #[test]
    fn runtime_congestion_passes() {
        let e = e21_runtime_congestion(8, 3, 42, Some(4));
        assert!(e.pass, "{}", e.render());
        assert_eq!(e.rows.len(), 3);
    }
}
