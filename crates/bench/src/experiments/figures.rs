//! Experiments reproducing the paper's figures and worked examples:
//! E1 (Fig. 1 / Theorem 1), E4 (Example 1), E6 (Example 2 / Figs. 2–3),
//! E7 (Example 3), E8 (Example 4 / Fig. 4), E11 (Examples 5–6 / Fig. 5).

use crate::row;
use crate::table::Experiment;
use shc_broadcast::{broadcast_scheme, tree_line_broadcast, verify_minimum_time, GraphOracle};
use shc_core::bounds::ceil_log2;
use shc_core::{DimPartition, SparseHypercube};
use shc_graph::builders::theorem1_tree;
use shc_graph::{metrics, GraphView, Node};
use shc_labeling::constructions::{paper_example1_q2, paper_example1_q3};
use shc_labeling::verify::{is_perfect_labeling, satisfies_condition_a};

/// The paper's Example-2 instance of `Construct_BASE(4, 2)` (Example 1's
/// Q2 labeling, `S_1 = {3}`, `S_2 = {4}`).
#[must_use]
pub fn g42_paper() -> SparseHypercube {
    SparseHypercube::construct_base_with(
        4,
        2,
        paper_example1_q2(),
        Some(DimPartition::from_subsets(2, 4, &[vec![3], vec![4]])),
    )
}

/// E1 — Fig. 1 / Theorem 1: degree-3 trees are `2h`-mlbgs.
#[must_use]
pub fn e1_theorem1_tree(max_h: u32) -> Experiment {
    let mut rows = Vec::new();
    let mut all_ok = true;
    for h in 1..=max_h {
        let t = theorem1_tree(h);
        let n = t.num_vertices();
        let o = GraphOracle::new(&t);
        let diam = metrics::diameter(&t).expect("tree connected");
        let k = 2 * h as usize;
        // All sources for small trees, a spread of sources for larger.
        let sources: Vec<Node> = if n <= 100 {
            (0..n as Node).collect()
        } else {
            (0..n as Node)
                .step_by(n / 37)
                .chain([0, (n - 1) as Node])
                .collect()
        };
        let mut worst_rounds = 0usize;
        let mut worst_call = 0usize;
        let mut ok = true;
        for &s in &sources {
            match tree_line_broadcast(&t, s) {
                Ok(sched) => match verify_minimum_time(&o, &sched, k) {
                    Ok(r) => {
                        worst_rounds = worst_rounds.max(r.rounds);
                        worst_call = worst_call.max(r.max_call_len);
                    }
                    Err(_) => ok = false,
                },
                Err(_) => ok = false,
            }
        }
        all_ok &= ok;
        rows.push(row![
            h,
            n,
            t.max_degree(),
            diam,
            k,
            ceil_log2(n as u64),
            worst_rounds,
            worst_call,
            sources.len(),
            if ok { "yes" } else { "NO" }
        ]);
    }
    Experiment {
        id: "E1",
        paper_ref: "Fig. 1 + Theorem 1",
        title: "Degree-3 tree is a minimal 2h-line broadcast graph".into(),
        claim: "For k >= 2*ceil(log2((N+2)/3)) a Δ=3 tree on N = 3*2^h - 2 \
                vertices broadcasts in ceil(log2 N) rounds from every source \
                with calls of length <= 2h"
            .into(),
        headers: vec![
            "h".into(),
            "N".into(),
            "Δ".into(),
            "diam".into(),
            "k=2h".into(),
            "ceil(log2 N)".into(),
            "rounds".into(),
            "max call".into(),
            "sources".into(),
            "min-time".into(),
        ],
        rows,
        observed: "every tested source broadcasts in exactly ceil(log2 N) rounds; \
                   calls never exceed the diameter <= 2h"
            .into(),
        pass: all_ok,
    }
}

/// E4 — Example 1: the paper's Condition-A labelings of Q2 and Q3.
#[must_use]
pub fn e4_example1_labelings() -> Experiment {
    let q2 = paper_example1_q2();
    let q3 = paper_example1_q3();
    let q2_ok = satisfies_condition_a(&q2) && q2.num_labels() == 2;
    let q3_ok = satisfies_condition_a(&q3) && q3.num_labels() == 4 && is_perfect_labeling(&q3);
    let fmt_classes = |l: &shc_labeling::Labeling, width: usize| -> String {
        l.classes()
            .iter()
            .enumerate()
            .map(|(c, class)| {
                let members: Vec<String> = class.iter().map(|&v| format!("{v:0width$b}")).collect();
                format!("c{}={{{}}}", c + 1, members.join(","))
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    let rows = vec![
        row![
            "Q2",
            2,
            fmt_classes(&q2, 2),
            if q2_ok { "yes" } else { "NO" }
        ],
        row![
            "Q3",
            4,
            fmt_classes(&q3, 3),
            if q3_ok { "yes" } else { "NO" }
        ],
    ];
    Experiment {
        id: "E4",
        paper_ref: "Example 1",
        title: "Condition-A labelings of Q2 (2 labels) and Q3 (4 labels)".into(),
        claim: "f(00)=f(11)=c1, f(01)=f(10)=c2 satisfies Condition A on Q2; \
                the antipodal-pair labeling satisfies it on Q3 with 4 labels"
            .into(),
        headers: vec![
            "cube".into(),
            "λ".into(),
            "classes".into(),
            "Condition A".into(),
        ],
        rows,
        observed: "both labelings verified; the Q3 labeling is additionally \
                   perfect (each closed neighborhood sees each label once), \
                   matching its Hamming-code origin"
            .into(),
        pass: q2_ok && q3_ok,
    }
}

/// E6 — Example 2 / Figs. 2–3: the graph `G_{4,2}`.
#[must_use]
pub fn e6_g42() -> Experiment {
    let g = g42_paper();
    let mat = g.to_graph();
    let rule1: Vec<(Node, Node)> = mat
        .edge_iter()
        .filter(|&(u, v)| ((u ^ v) as u64).trailing_zeros() < 2)
        .collect();
    let rule2: Vec<(Node, Node)> = mat
        .edge_iter()
        .filter(|&(u, v)| ((u ^ v) as u64).trailing_zeros() >= 2)
        .collect();
    let pass = rule1.len() == 16
        && rule2.len() == 8
        && mat.max_degree() == 3
        && mat.min_degree() == 3
        && g.has_edge(0b0011, 0b0111);
    let fmt_edges = |edges: &[(Node, Node)]| {
        edges
            .iter()
            .map(|&(u, v)| format!("{u:04b}-{v:04b}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let rows = vec![
        row!["Rule 1 (Fig. 2)", rule1.len(), fmt_edges(&rule1)],
        row!["Rule 2", rule2.len(), fmt_edges(&rule2)],
    ];
    Experiment {
        id: "E6",
        paper_ref: "Example 2 + Figs. 2–3",
        title: "G_{4,2}: 16 subcube edges + 8 cross edges, Δ = 3".into(),
        claim: "Construct_BASE(4,2) with S_1={3}, S_2={4} yields the Fig. 3 \
                graph: every vertex keeps its two Q2 edges plus exactly one \
                cross edge (0011–0111 among them); Δ = 3 vs Δ(Q4) = 4"
            .into(),
        headers: vec!["edge class".into(), "count".into(), "edges".into()],
        rows,
        observed: format!(
            "Δ = {}, |E| = {} (= 24); vertex 0011 adjacent to 0111: {}",
            mat.max_degree(),
            mat.num_edges(),
            g.has_edge(0b0011, 0b0111)
        ),
        pass,
    }
}

/// E7 — Example 3: `G_{15,3}` has degree 6, under half of `Δ(Q15) = 15`.
#[must_use]
pub fn e7_g153() -> Experiment {
    let g = SparseHypercube::construct_base(15, 3);
    let delta = g.max_degree();
    let nbrs_zero: Vec<String> = g
        .neighbors(0)
        .iter()
        .map(|&v| format!("2^{}", v.trailing_zeros()))
        .collect();
    let pass = delta == 6 && g.num_vertices() == 1 << 15;
    let rows = vec![
        row!["|V|", g.num_vertices()],
        row!["Δ(G_{15,3})", delta],
        row!["Δ(Q15)", 15],
        row!["|E(G)|", g.num_edges()],
        row!["|E(Q15)|", 15u64 * (1 << 14)],
        row!["neighbors of 0^15", nbrs_zero.join(" ")],
    ];
    Experiment {
        id: "E7",
        paper_ref: "Example 3",
        title: "G_{15,3}: Δ = 6 = 3 + 3, less than half of Δ(Q15)".into(),
        claim: "With S_1={15,14,13}, ..., S_4={6,5,4}, vertex 0^15 connects \
                to dims 1,2,3 (Rule 1) and 13,14,15 (Rule 2); Δ = 6 < 15/2·2"
            .into(),
        headers: vec!["quantity".into(), "value".into()],
        rows,
        observed: format!(
            "Δ = {delta}, edges reduced to {:.1}% of Q15",
            100.0 * g.num_edges() as f64 / (15.0 * f64::from(1u32 << 14))
        ),
        pass,
    }
}

/// E8 — Example 4 / Fig. 4: broadcast from 0000 in `G_{4,2}`.
#[must_use]
pub fn e8_broadcast_g42() -> Experiment {
    let g = g42_paper();
    let schedule = broadcast_scheme(&g, 0b0000);
    let report = verify_minimum_time(&g, &schedule, 2);
    let mut rows = Vec::new();
    for (t, round) in schedule.rounds.iter().enumerate() {
        let calls: Vec<String> = round
            .calls
            .iter()
            .map(|c| {
                c.path
                    .iter()
                    .map(|v| format!("{v:04b}"))
                    .collect::<Vec<_>>()
                    .join("→")
            })
            .collect();
        rows.push(row![t + 1, round.calls.len(), calls.join("  ")]);
    }
    let pass = matches!(&report, Ok(r) if r.rounds == 4 && r.max_call_len == 2);
    Experiment {
        id: "E8",
        paper_ref: "Example 4 + Fig. 4",
        title: "Broadcast_2 from 0000 in G_{4,2}: 4 rounds, calls <= 2".into(),
        claim: "Round 1 places one length-2 call crossing dimension 4 via a \
                Q2 relay (the paper routes 0000→0010→1010; the equally legal \
                relay 0001→1001 may appear); rounds 3–4 broadcast inside the \
                2-cubes; 16 vertices informed in 4 = log2 16 time units"
            .into(),
        headers: vec!["round".into(), "calls".into(), "paths".into()],
        rows,
        observed: match &report {
            Ok(r) => format!(
                "minimum time: {} rounds, informed after each round: {:?}",
                r.rounds, r.informed_after_round
            ),
            Err(e) => format!("FAILED: {e}"),
        },
        pass,
    }
}

/// E11 — Examples 5–6 / Fig. 5: `Construct_REC(7, 4, 2)`.
#[must_use]
pub fn e11_construct_rec() -> Experiment {
    let g = SparseHypercube::construct(&[2, 4, 7]);
    let top = &g.levels()[1];
    let subsets = top.partition().subsets();
    let nbrs: Vec<String> = g.neighbors(0).iter().map(|&v| format!("{v:07b}")).collect();
    let schedule = broadcast_scheme(&g, 0);
    let verified = verify_minimum_time(&g, &schedule, 3).is_ok();
    let pass = g.max_degree() == 5 && verified && subsets.len() == 2;
    let rows = vec![
        row!["params (k; n, n2, n1)", "(3; 7, 4, 2)"],
        row!["labels at top level", top.labeling().num_labels()],
        row![
            "S partition of {5,6,7}",
            subsets
                .iter()
                .enumerate()
                .map(|(j, s)| format!("S{}={:?}", j + 1, s))
                .collect::<Vec<_>>()
                .join(" ")
        ],
        row!["neighbors of 0000000", nbrs.join(" ")],
        row!["Δ", g.max_degree()],
        row![
            "Broadcast_3 minimum-time",
            if verified { "yes" } else { "NO" }
        ],
    ];
    Experiment {
        id: "E11",
        paper_ref: "Examples 5–6 + Fig. 5",
        title: "Construct_REC(7,4,2): recursive labeling and S-partition".into(),
        claim: "V = {0,1}^7 labeled over bit range (2,4] with 2 labels; \
                S = {7,6,5} split into two subsets (the paper picks \
                S_1 = {7,6}, S_2 = {5}); 0000000 gains two Rule-2 edges"
            .into(),
        headers: vec!["quantity".into(), "value".into()],
        rows,
        observed: format!(
            "Δ = {} (= 2 base + 1 + 2 cross), Broadcast_3 verified: {}",
            g.max_degree(),
            verified
        ),
        pass,
    }
}
