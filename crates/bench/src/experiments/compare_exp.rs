//! E16 — the headline comparison: sparse hypercube vs. full hypercube
//! (degree, edges, diameter, footnote-1 diameter bound) across sizes.

use crate::row;
use crate::table::Experiment;
use shc_core::params::{best_base_params, optimized_params};
use shc_core::{ShcStats, SparseHypercube};
use shc_graph::parallel::diameter_parallel;

/// E16 — degree/edge/diameter reduction table for k = 2 and k = 3.
#[must_use]
pub fn e16_comparison(max_materialized_n: u32) -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for &n in &[8u32, 12, 16, 20, 24, 32, 48, 60] {
        for k in [2u32, 3] {
            if n <= k + 1 {
                continue;
            }
            let choice = if k == 2 {
                best_base_params(n)
            } else {
                optimized_params(k, n)
            };
            let g = SparseHypercube::construct(&choice.dims);
            let stats = ShcStats::for_graph(&g);
            pass &= stats.max_degree <= u64::from(n);
            pass &= stats.num_edges < stats.hypercube_edges;
            // Footnote 1: any k-mlbg has diameter <= k * log2 N; check on
            // materializable instances.
            let diam = if n <= max_materialized_n {
                let mat = g.to_graph();
                let d = diameter_parallel(&mat, None).expect("connected");
                pass &= u64::from(d) <= u64::from(k) * u64::from(n);
                d.to_string()
            } else {
                "-".to_string()
            };
            rows.push(row![
                n,
                k,
                format!("{:?}", choice.dims),
                stats.max_degree,
                n,
                format!("{:.1}%", 100.0 * stats.edge_ratio()),
                diam,
                u64::from(k) * u64::from(n),
                format!("{:.2}x", stats.degree_reduction())
            ]);
        }
    }
    Experiment {
        id: "E16",
        paper_ref: "§3 headline claim + footnote 1",
        title: "Sparse vs full hypercube: degree, edges, diameter".into(),
        claim: "Sparse hypercubes cut Δ from n to O(n^(1/k)) while keeping \
                minimum-time k-line broadcast; any k-mlbg has diameter \
                <= k·log2 N (footnote 1)"
            .into(),
        headers: vec![
            "n".into(),
            "k".into(),
            "dims".into(),
            "Δ(G)".into(),
            "Δ(Q_n)".into(),
            "edges kept".into(),
            "diam(G)".into(),
            "k·n bound".into(),
            "Δ reduction".into(),
        ],
        rows,
        observed: "degree reduced at every size; edge count strictly below \
                   the hypercube's; measured diameters respect footnote 1"
            .into(),
        pass,
    }
}
