//! Bound-table experiments: E2/E3 (lower bounds, Theorems 2–3), E5
//! (Lemma 2's λ_m), E10 (Theorem 5), E13 (Theorem 7 + the improved-
//! coefficient remark), E14 (Corollary 1), E15 (Corollary 2 tightness).

use crate::row;
use crate::table::Experiment;
use shc_core::bounds;
use shc_core::params::{optimized_params, paper_params};
use shc_labeling::constructions::constructed_lambda;
use shc_labeling::search;

/// E2 — Theorem 2: `Δ >= ceil(n^(1/k))` for `k = 2, 3, 4`, compared with
/// the degree our construction achieves.
#[must_use]
pub fn e2_lower_bounds_small_k() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for k in 2..=4u32 {
        for n in [8u32, 16, 27, 32, 48, 60] {
            if n <= k {
                continue;
            }
            let lower = bounds::thm2_lower_bound(k, n);
            let achieved = paper_params(k, n).max_degree;
            pass &= achieved >= lower;
            rows.push(row![
                k,
                n,
                lower,
                achieved,
                format!("{:.2}", achieved as f64 / lower as f64)
            ]);
        }
    }
    Experiment {
        id: "E2",
        paper_ref: "Theorem 2",
        title: "Degree lower bound for k = 2, 3, 4".into(),
        claim: "Any k-mlbg on 2^n vertices has Δ >= ceil(n^(1/k)); the \
                construction's degree respects (and approaches) it"
            .into(),
        headers: vec![
            "k".into(),
            "n".into(),
            "lower bound".into(),
            "Δ(construction)".into(),
            "ratio".into(),
        ],
        rows,
        observed: "achieved degrees always >= the bound; ratio stays bounded \
                   (Corollary 2's Θ(n^(1/k)) tightness)"
            .into(),
        pass,
    }
}

/// E3 — Theorem 3: the `k >= 5` lower bound and the cycle-infeasibility
/// numerics (`2^(n−1) > kn`, e.g. 32 > 30 at k = 5, n = 6).
#[must_use]
pub fn e3_lower_bounds_large_k() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for k in 5..=8u32 {
        for n in [k + 1, 16, 32, 60, 94] {
            if n < k {
                continue;
            }
            let lower = bounds::thm3_lower_bound(k, n);
            pass &= lower >= 3;
            rows.push(row![
                k,
                n,
                lower,
                format!("2^{} vs {}", n - 1, u64::from(k) * u64::from(n)),
                if bounds::cycle_infeasible(k, n) {
                    "yes"
                } else {
                    "no"
                }
            ]);
        }
    }
    // The paper's explicit check: k = 5, n = 6 gives 32 > 30.
    let paper_case = bounds::cycle_infeasible(5, 6);
    pass &= paper_case;
    Experiment {
        id: "E3",
        paper_ref: "Theorem 3",
        title: "Degree lower bound for k >= 5 and the Δ=2 (cycle) exclusion".into(),
        claim: "Δ >= 3 whenever 2^(n−1) > kn (paper: 32 > 30 at k=5, n=6), \
                and n <= 3((Δ−1)^k − 1) bounds Δ from below"
            .into(),
        headers: vec![
            "k".into(),
            "n".into(),
            "Δ lower bound".into(),
            "2^(n−1) vs kn".into(),
            "cycle excluded".into(),
        ],
        rows,
        observed: format!("all bounds >= 3; paper's k=5, n=6 cycle exclusion holds: {paper_case}"),
        pass,
    }
}

/// E5 — Lemma 2: `ceil(m/2)+1 <= λ_m <= m+1`; exact values for `m <= 5`.
#[must_use]
pub fn e5_lambda_table() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for m in 1..=16u32 {
        let lower = search::lemma2_lower_bound(m);
        let upper = search::lemma2_upper_bound(m);
        let constructed = constructed_lambda(m);
        let exact = (m <= 5).then(|| search::exact_lambda(m));
        pass &= constructed <= upper && 2 * constructed > m;
        if let Some(x) = exact {
            pass &= x >= constructed && x <= upper && x >= lower;
        }
        rows.push(row![
            m,
            lower,
            constructed,
            exact.map_or_else(|| "-".to_string(), |x| x.to_string()),
            upper,
            if (m + 1).is_power_of_two() {
                "Hamming (perfect)"
            } else {
                "subcube tiling"
            }
        ]);
    }
    Experiment {
        id: "E5",
        paper_ref: "Lemma 2",
        title: "Label count λ_m: bounds, construction, exact small cases".into(),
        claim: "ceil(m/2)+1 <= λ_m <= m+1, with λ_m = m+1 exactly when a \
                perfect code exists (m = 2^p − 1); the constructive labeling \
                achieves the largest power of two <= m+1"
            .into(),
        headers: vec![
            "m".into(),
            "Lemma 2 lower".into(),
            "constructed λ".into(),
            "exact λ_m".into(),
            "upper m+1".into(),
            "construction".into(),
        ],
        rows,
        observed: "constructed λ always within Lemma 2's bounds; exhaustive \
                   search certifies optimality for every m <= 5 (λ_4 = λ_5 = 4: \
                   no perfect codes in Q4/Q5, and a 5-part domatic partition \
                   of Q5 is refuted by search — strengthening Lemma 2's table)"
            .into(),
        pass,
    }
}

/// E10 — Theorem 5: `Δ <= 2*ceil(sqrt(2n+4)) − 4` for k = 2, plus the
/// note's `n = m(m+2)` family where `Δ = 2m < 2·sqrt(n)`.
#[must_use]
pub fn e10_theorem5() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for n in [2u32, 4, 8, 15, 16, 24, 32, 35, 48, 60] {
        let choice = paper_params(2, n);
        let bound = bounds::thm5_upper_bound(n);
        let lower = bounds::thm2_lower_bound(2, n);
        pass &= choice.max_degree <= bound && choice.max_degree >= lower;
        rows.push(row![n, choice.dims[0], choice.max_degree, bound, lower, ""]);
    }
    // Note after Theorem 5: m with λ_m = m+1 and n = m(m+2) gives Δ = 2m.
    for m in [1u32, 3, 7] {
        let n = m * (m + 2);
        if n < 2 {
            continue;
        }
        let delta = shc_core::params::predicted_max_degree(&[m, n]);
        let below = (delta as f64) < 2.0 * f64::from(n).sqrt();
        pass &= delta == u64::from(2 * m) && below;
        rows.push(row![
            n,
            m,
            delta,
            bounds::thm5_upper_bound(n),
            bounds::thm2_lower_bound(2, n),
            format!(
                "note case: Δ=2m={} < 2√n={:.2}",
                2 * m,
                2.0 * f64::from(n).sqrt()
            )
        ]);
    }
    Experiment {
        id: "E10",
        paper_ref: "Theorem 5 (+ following note)",
        title: "k = 2: Δ(G_{n,m*}) vs 2*ceil(sqrt(2n+4)) − 4".into(),
        claim: "For every n there is a 2-mlbg of order 2^n with \
                Δ <= 2*ceil(sqrt(2n+4)) − 4; for n = m(m+2) with λ_m = m+1 \
                the construction gives Δ = 2m < 2·sqrt(log2 N)"
            .into(),
        headers: vec![
            "n".into(),
            "m".into(),
            "Δ".into(),
            "Thm 5 bound".into(),
            "Thm 2 lower".into(),
            "note".into(),
        ],
        rows,
        observed: "every instance within the bound; the m(m+2) family attains \
                   Δ = 2m, under twice the lower bound"
            .into(),
        pass,
    }
}

/// E13 — Theorem 7: `Δ <= (2k−1)*ceil((n−k)^(1/k))` with the paper's
/// parameters, plus the optimized-parameter variant from the remark after
/// the theorem.
#[must_use]
pub fn e13_theorem7() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for k in 3..=5u32 {
        for n in [k + 3, 16, 24, 32, 48, 60] {
            if n <= k + 1 {
                continue;
            }
            let paper = paper_params(k, n);
            let opt = optimized_params(k, n);
            let bound = bounds::thm7_upper_bound(k, n);
            pass &= paper.max_degree <= bound && opt.max_degree <= paper.max_degree;
            rows.push(row![
                k,
                n,
                format!("{:?}", paper.dims),
                paper.max_degree,
                bound,
                opt.max_degree,
                format!("{:?}", opt.dims)
            ]);
        }
    }
    // The remark after Theorem 7: for k = 3 the coefficient improves from
    // 2k−1 = 5 toward 3·4^(1/3) ≈ 4.762 with better parameters. Measure the
    // k = 3 coefficient Δ_opt / n^(1/3) at the largest n.
    let n_big = 60u32;
    let opt = optimized_params(3, n_big);
    let coeff = opt.max_degree as f64 / f64::from(n_big).powf(1.0 / 3.0);
    let remark_ok = coeff < 5.0;
    pass &= remark_ok;
    Experiment {
        id: "E13",
        paper_ref: "Theorem 7 (+ remark on improved coefficients)",
        title: "General k: Δ vs (2k−1)*ceil((n−k)^(1/k))".into(),
        claim: "Construct(k; n, n*_{k−1}, …, n*_1) with n*_i = ceil(m^(i/k)) \
                + i − 1 keeps Δ <= (2k−1)*ceil((n−k)^(1/k)); better parameter \
                choices improve the constant (toward ~4.76 n^(1/3) at k=3)"
            .into(),
        headers: vec![
            "k".into(),
            "n".into(),
            "paper dims".into(),
            "Δ paper".into(),
            "Thm 7 bound".into(),
            "Δ optimized".into(),
            "optimized dims".into(),
        ],
        rows,
        observed: format!(
            "all within the bound; optimized never worse; measured k=3 \
             coefficient at n=60: Δ/n^(1/3) = {coeff:.3} (< 5 = 2k−1, \
             consistent with the ~4.762 remark)"
        ),
        pass,
    }
}

/// E14 — Corollary 1: at `k = ceil(log2 n)` the degree drops to
/// `4*ceil(log2 log2 N) − 2`.
#[must_use]
pub fn e14_corollary1() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for n in [8u32, 16, 32, 60] {
        let k = bounds::ceil_log2(u64::from(n));
        if n <= k {
            continue;
        }
        let choice = optimized_params(k, n);
        let bound = bounds::cor1_upper_bound(n);
        pass &= choice.max_degree <= bound;
        rows.push(row![
            n,
            k,
            choice.max_degree,
            bound,
            format!("{:?}", choice.dims)
        ]);
    }
    Experiment {
        id: "E14",
        paper_ref: "Corollary 1",
        title: "k = ceil(log2 n): degree 4*ceil(log2 log2 N) − 2".into(),
        claim: "For k >= ceil(log2 n) there is a k-mlbg of order 2^n with \
                Δ <= 4*ceil(log2 log2 N) − 2"
            .into(),
        headers: vec![
            "n".into(),
            "k".into(),
            "Δ".into(),
            "Cor 1 bound".into(),
            "dims".into(),
        ],
        rows,
        observed: "the log-parameter construction meets the doubly \
                   logarithmic degree bound at every tested n"
            .into(),
        pass,
    }
}

/// E15 — Corollary 2: tightness `Δ = Θ(n^(1/k))` for constant k: the ratio
/// achieved/lower stays bounded as n grows.
#[must_use]
pub fn e15_corollary2() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for k in 2..=4u32 {
        let mut worst: f64 = 0.0;
        for n in (k + 2..=60).step_by(2) {
            let achieved = optimized_params(k, n).max_degree;
            let lower = bounds::thm2_lower_bound(k, n);
            worst = worst.max(achieved as f64 / lower as f64);
        }
        // Θ-tightness for the asymptotic claim: ratio bounded by 2k.
        pass &= worst <= f64::from(2 * k);
        rows.push(row![k, format!("{worst:.3}"), 2 * k - 1]);
    }
    Experiment {
        id: "E15",
        paper_ref: "Corollary 2",
        title: "Θ(n^(1/k)) tightness: achieved/lower-bound ratio".into(),
        claim: "For constant k the construction attains Δ = Θ(n^(1/k)), i.e. \
                the ratio to Theorem 2's lower bound is bounded (by ~2k−1)"
            .into(),
        headers: vec![
            "k".into(),
            "max ratio over n <= 60".into(),
            "asymptotic coefficient 2k−1".into(),
        ],
        rows,
        observed: "ratio bounded well under 2k across the sweep — the \
                   asymptotic optimality is visible at practical sizes"
            .into(),
        pass,
    }
}
