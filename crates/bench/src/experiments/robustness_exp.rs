//! Extension experiments beyond the paper's theorems:
//! * E19 — fault tolerance: greedy adaptive broadcast on damaged sparse
//!   hypercubes (how much of the minimum-time property survives edge
//!   failures — the robustness side of §5's discussion);
//! * E20 — ablation: how much Condition A's label count buys (trivial vs.
//!   constructive labeling; balanced vs. skewed dimension partition);
//! * E22 — E19's fault sweep ported to the `shc-runtime` scenario engine:
//!   Monte Carlo over fault draws and originators in parallel, with the
//!   zero-fault baseline cross-checked byte-for-byte.

use crate::row;
use crate::table::Experiment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shc_broadcast::schemes::greedy::greedy_rounds;
use shc_broadcast::{broadcast_scheme, verify_minimum_time};
use shc_core::{DimPartition, SparseHypercube};
use shc_graph::faults::remove_random_edges_connected;
use shc_graph::GraphView;
use shc_labeling::constructions::{best_labeling, trivial};
use shc_labeling::Labeling;
use shc_runtime::{run_scenario, FaultSpec, OriginatorPolicy, Scenario, TopologySpec, Workload};

/// E19 — greedy broadcast on a sparse hypercube with failed edges.
#[must_use]
pub fn e19_fault_tolerance(n: u32, m: u32, seed: u64) -> Experiment {
    let g = SparseHypercube::construct_base(n, m);
    let mat = g.to_graph();
    let total_edges = mat.num_edges();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut pass = true;

    // Baseline: the constructive scheme on the intact graph.
    let schedule = broadcast_scheme(&g, 0);
    let intact = verify_minimum_time(&g, &schedule, 2).is_ok();
    pass &= intact;
    rows.push(row![
        0,
        "0.0%",
        "constructive",
        n,
        n,
        "minimum-time (Theorem 4)"
    ]);

    for fail_pct in [5usize, 10, 20, 30] {
        let fail_count = total_edges * fail_pct / 100;
        let (damaged, removed) = remove_random_edges_connected(&mat, fail_count, &mut rng);
        let mut worst = 0usize;
        let mut complete_all = true;
        for source in [0u32, (1 << n) - 1, 1 << (n - 1)] {
            let (rounds, _min, complete) = greedy_rounds(&damaged, source, 2);
            complete_all &= complete;
            worst = worst.max(rounds);
        }
        // Completion is required (the graph stays connected); minimum time
        // is not (edges are gone) — we record the measured slowdown.
        pass &= complete_all;
        rows.push(row![
            removed.len(),
            format!("{:.1}%", 100.0 * removed.len() as f64 / total_edges as f64),
            "greedy (k=2)",
            worst,
            n,
            if complete_all {
                "complete"
            } else {
                "INCOMPLETE"
            }
        ]);
    }
    Experiment {
        id: "E19",
        paper_ref: "extension (robustness; §5 discussion)",
        title: format!("Fault tolerance on G_{{{n},{m}}}: greedy broadcast under edge failures"),
        claim: "Sparseness costs redundancy: with failed edges the minimum-\
                time property degrades gracefully — adaptive broadcast still \
                completes on the connected residue, a bounded number of \
                rounds late"
            .into(),
        headers: vec![
            "edges failed".into(),
            "failure rate".into(),
            "scheduler".into(),
            "worst rounds".into(),
            "minimum".into(),
            "status".into(),
        ],
        rows,
        observed: "greedy completes at every tested failure rate; round \
                   overhead grows with damage"
            .into(),
        pass,
    }
}

/// Builds `Construct_BASE(n, m)` with an explicit labeling and the
/// canonical partition, returning its max degree.
fn degree_with(n: u32, m: u32, labeling: Labeling) -> u64 {
    SparseHypercube::construct_base_with(n, m, labeling, None).max_degree() as u64
}

/// E20 — ablation of the two design choices behind Lemma 1's bound.
#[must_use]
pub fn e20_ablation() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    for (n, m) in [(12u32, 3u32), (16, 3), (20, 4), (24, 7)] {
        let lambda = best_labeling(m).num_labels();
        let with_best = degree_with(n, m, best_labeling(m));
        let with_trivial = degree_with(n, m, trivial(m));
        // Skewed partition: all cross dimensions handed to label 0.
        let mut subsets = vec![Vec::new(); lambda as usize];
        subsets[0] = (m + 1..=n).collect();
        let skewed = SparseHypercube::construct_base_with(
            n,
            m,
            best_labeling(m),
            Some(DimPartition::from_subsets(m, n, &subsets)),
        );
        let with_skew = skewed.max_degree() as u64;
        // The whole point of Condition A + balance: λ-way division of the
        // cross dimensions.
        pass &= with_best < with_trivial && with_best < with_skew;
        pass &= with_trivial == u64::from(n); // trivial labeling keeps Q_n's degree
        rows.push(row![
            format!("G_{{{n},{m}}}"),
            lambda,
            with_best,
            with_trivial,
            with_skew,
            format!("{:.2}x", with_trivial as f64 / with_best as f64)
        ]);
        // Sanity: the ablated graphs still broadcast in minimum time (they
        // have strictly more edges per owner, so relays still exist).
        if n <= 14 {
            let g_trivial = SparseHypercube::construct_base_with(n, m, trivial(m), None);
            let s = broadcast_scheme(&g_trivial, 0);
            pass &= verify_minimum_time(&g_trivial, &s, 2).is_ok();
        }
    }
    Experiment {
        id: "E20",
        paper_ref: "ablation of Lemma 1 / Condition A",
        title: "What the labeling buys: λ-way cross-dimension division".into(),
        claim: "Δ = m + ceil((n−m)/λ): with the trivial labeling (λ = 1) or \
                a skewed partition the degree collapses back to ~n — the \
                entire saving comes from Condition A's dominating-set \
                structure plus balanced partitioning"
            .into(),
        headers: vec![
            "graph".into(),
            "λ".into(),
            "Δ (paper construction)".into(),
            "Δ (trivial labeling)".into(),
            "Δ (skewed partition)".into(),
            "saving".into(),
        ],
        rows,
        observed: "the constructive labeling + balanced partition is \
                   responsible for the full degree reduction; ablated \
                   variants remain valid 2-mlbgs (verified) but lose the \
                   degree advantage"
            .into(),
        pass,
    }
}

/// E22 — Monte Carlo fault tolerance on the scenario engine: for each
/// damage level, 48 replicas each draw random link failures and a random
/// originator, and the schedule is replayed over the damaged topology.
/// Cross-checks: the 0-fault row reproduces the legacy fault-free
/// `replay_schedule` path exactly and is fully lossless; aggregates are
/// thread-count independent; the informed fraction decays (weakly)
/// monotonically with damage (fault draws at the same seed nest: the
/// 8-link draw is a prefix of the 16-link draw).
#[must_use]
pub fn e22_runtime_robustness(n: u32, m: u32, seed: u64, threads: Option<usize>) -> Experiment {
    let threads = threads.unwrap_or(0); // 0 = all cores
    let mut rows = Vec::new();
    let mut pass = true;

    // Cross-check (legacy fault-free path): a zero-fault fixed-source
    // replica must reproduce `replay_schedule` on the *bare* topology —
    // no FaultedNet overlay, no fault machinery — counter for counter.
    let g = SparseHypercube::construct_base(n, m);
    let legacy = shc_netsim::replay_schedule(&g, &broadcast_scheme(&g, 0), 1);
    let solo = run_scenario(
        &Scenario::new(
            "e22-solo",
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 1 },
        )
        .faults(FaultSpec {
            link_failures: 0,
            node_crashes: 0,
            dilation_shift: None,
        })
        .seed(seed),
        threads,
    );
    pass &= solo.total_established == legacy.established as u64
        && solo.total_blocked == legacy.blocked as u64
        && solo.metric("rounds").map(|s| s.max) == Some(legacy.rounds as u64)
        && solo.metric("total_hops").map(|s| s.max) == Some(legacy.total_hops as u64);

    let mut prev_informed = f64::INFINITY;
    for fails in [0usize, 8, 16, 32] {
        let scenario = Scenario::new(
            format!("e22-f{fails}"),
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Random)
        .faults(FaultSpec {
            link_failures: fails,
            node_crashes: 0,
            dilation_shift: None,
        })
        .replications(48)
        .seed(seed);
        let report = run_scenario(&scenario, threads);
        // Determinism across worker counts, per damage level.
        pass &= report == run_scenario(&scenario, 1);
        if fails == 0 {
            // Undamaged: every replica lossless, minimum time, no blocking.
            pass &= report.total_blocked == 0
                && (report.mean_informed_fraction - 1.0).abs() < 1e-12
                && report.metric("severed_calls").map(|s| s.max) == Some(0)
                && report.metric("rounds").map(|s| (s.min, s.max)) == Some((n.into(), n.into()));
        }
        pass &= report.mean_informed_fraction <= prev_informed + 1e-12;
        prev_informed = report.mean_informed_fraction;
        let severed = report.metric("severed_calls").expect("metric present");
        rows.push(row![
            fails,
            report.replications,
            format!("{:.1}%", 100.0 * report.mean_informed_fraction),
            format!("{:.2}", severed.mean),
            severed.p99,
            format!("{:.1}%", 100.0 * report.blocking_rate)
        ]);
    }
    Experiment {
        id: "E22",
        paper_ref: "extension (robustness, Monte Carlo via shc-runtime)",
        title: format!("Scenario engine: broadcast on G_{{{n},{m}}} under random link failures"),
        claim: "Replicated fault injection quantifies E19's story as a \
                distribution: the informed fraction decays gracefully with \
                the number of failed links, the zero-fault path reproduces \
                the fault-free legacy replay exactly, and aggregates are \
                independent of worker count"
            .into(),
        headers: vec![
            "links failed".into(),
            "replicas".into(),
            "mean informed".into(),
            "mean severed".into(),
            "p99 severed".into(),
            "blocking rate".into(),
        ],
        rows,
        observed: "0 faults ⇒ lossless minimum-time broadcast from every \
                   sampled originator; damage degrades the informed \
                   fraction smoothly, never catastrophically, across the \
                   Monte Carlo draws"
            .into(),
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_tolerance_passes() {
        let e = e19_fault_tolerance(9, 3, 7);
        assert!(e.pass, "{}", e.render());
        assert_eq!(e.rows.len(), 5);
    }

    #[test]
    fn ablation_passes() {
        let e = e20_ablation();
        assert!(e.pass, "{}", e.render());
    }

    #[test]
    fn runtime_robustness_passes() {
        let e = e22_runtime_robustness(8, 3, 7, Some(4));
        assert!(e.pass, "{}", e.render());
        assert_eq!(e.rows.len(), 4);
    }
}
