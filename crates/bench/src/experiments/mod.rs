//! The experiment registry: every figure/table/theorem reproduction,
//! keyed E1–E22 as indexed in DESIGN.md (E19–E22 are extensions; E21/E22
//! run on the `shc-runtime` parallel scenario engine).

pub mod bounds_exp;
pub mod compare_exp;
pub mod congestion_exp;
pub mod figures;
pub mod robustness_exp;
pub mod schemes_exp;

use crate::table::Experiment;

/// Tuning knobs for the full run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Largest `h` for the Theorem-1 tree sweep (E1).
    pub max_tree_h: u32,
    /// Largest `n` for the Theorem-4 all-(n,m) sweep (E9).
    pub max_sweep_n: u32,
    /// Largest `n` materialized for diameter measurement (E16).
    pub max_materialized_n: u32,
    /// Congestion experiment cube size (E17).
    pub congestion_n: u32,
    /// Worker threads (None = available parallelism).
    pub threads: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            max_tree_h: 7,
            max_sweep_n: 12,
            max_materialized_n: 18,
            congestion_n: 10,
            threads: None,
        }
    }
}

impl RunConfig {
    /// A reduced configuration for smoke tests and debug builds.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            max_tree_h: 4,
            max_sweep_n: 8,
            max_materialized_n: 12,
            congestion_n: 8,
            threads: None,
        }
    }
}

/// Runs every experiment, in id order.
#[must_use]
pub fn run_all(cfg: &RunConfig) -> Vec<Experiment> {
    vec![
        figures::e1_theorem1_tree(cfg.max_tree_h),
        bounds_exp::e2_lower_bounds_small_k(),
        bounds_exp::e3_lower_bounds_large_k(),
        figures::e4_example1_labelings(),
        bounds_exp::e5_lambda_table(),
        figures::e6_g42(),
        figures::e7_g153(),
        figures::e8_broadcast_g42(),
        schemes_exp::e9_theorem4_sweep(cfg.max_sweep_n, cfg.threads),
        bounds_exp::e10_theorem5(),
        figures::e11_construct_rec(),
        schemes_exp::e12_theorem6_sweep(cfg.threads),
        bounds_exp::e13_theorem7(),
        bounds_exp::e14_corollary1(),
        bounds_exp::e15_corollary2(),
        compare_exp::e16_comparison(cfg.max_materialized_n),
        congestion_exp::e17_congestion(cfg.congestion_n, 3, 0xC0FFEE),
        schemes_exp::e18_monotonicity(),
        robustness_exp::e19_fault_tolerance(cfg.congestion_n, 3, 0xC0FFEE),
        robustness_exp::e20_ablation(),
        congestion_exp::e21_runtime_congestion(cfg.congestion_n, 3, 0xC0FFEE, cfg.threads),
        robustness_exp::e22_runtime_robustness(cfg.congestion_n, 3, 0xC0FFEE, cfg.threads),
    ]
}

/// Runs a single experiment by id (`"E1"`, …, `"E22"`); `None` for an
/// unknown id.
#[must_use]
pub fn run_one(id: &str, cfg: &RunConfig) -> Option<Experiment> {
    let e = match id.to_ascii_uppercase().as_str() {
        "E1" => figures::e1_theorem1_tree(cfg.max_tree_h),
        "E2" => bounds_exp::e2_lower_bounds_small_k(),
        "E3" => bounds_exp::e3_lower_bounds_large_k(),
        "E4" => figures::e4_example1_labelings(),
        "E5" => bounds_exp::e5_lambda_table(),
        "E6" => figures::e6_g42(),
        "E7" => figures::e7_g153(),
        "E8" => figures::e8_broadcast_g42(),
        "E9" => schemes_exp::e9_theorem4_sweep(cfg.max_sweep_n, cfg.threads),
        "E10" => bounds_exp::e10_theorem5(),
        "E11" => figures::e11_construct_rec(),
        "E12" => schemes_exp::e12_theorem6_sweep(cfg.threads),
        "E13" => bounds_exp::e13_theorem7(),
        "E14" => bounds_exp::e14_corollary1(),
        "E15" => bounds_exp::e15_corollary2(),
        "E16" => compare_exp::e16_comparison(cfg.max_materialized_n),
        "E17" => congestion_exp::e17_congestion(cfg.congestion_n, 3, 0xC0FFEE),
        "E18" => schemes_exp::e18_monotonicity(),
        "E19" => robustness_exp::e19_fault_tolerance(cfg.congestion_n, 3, 0xC0FFEE),
        "E20" => robustness_exp::e20_ablation(),
        "E21" => congestion_exp::e21_runtime_congestion(cfg.congestion_n, 3, 0xC0FFEE, cfg.threads),
        "E22" => robustness_exp::e22_runtime_robustness(cfg.congestion_n, 3, 0xC0FFEE, cfg.threads),
        _ => return None,
    };
    Some(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_config_all_experiments_pass() {
        let cfg = RunConfig::fast();
        for e in run_all(&cfg) {
            assert!(e.pass, "{} failed:\n{}", e.id, e.render());
        }
    }

    #[test]
    fn run_one_resolves_ids() {
        let cfg = RunConfig::fast();
        assert!(run_one("e4", &cfg).is_some());
        assert!(run_one("E18", &cfg).is_some());
        assert!(run_one("E99", &cfg).is_none());
    }
}
