//! Labeling throughput: Condition-A constructions, verification, the
//! Hamming-code kernels, and the exact domatic search.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_coding::HammingCode;
use shc_graph::builders::hypercube;
use shc_graph::domination::domatic_partition;
use shc_labeling::constructions::{best_labeling, tiling_labeling};
use shc_labeling::verify::verify_condition_a;

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("labeling_construction");
    for m in [7u32, 11, 15] {
        group.bench_with_input(BenchmarkId::new("best", m), &m, |b, &m| {
            b.iter(|| best_labeling(black_box(m)));
        });
    }
    group.bench_function("tiling_m12", |b| {
        b.iter(|| tiling_labeling(black_box(12)));
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_a_verify");
    for m in [7u32, 11, 15] {
        let l = best_labeling(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &l, |b, l| {
            b.iter(|| verify_condition_a(black_box(l)).expect("valid"));
        });
    }
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let h = HammingCode::new(4);
    c.bench_function("hamming_syndrome_p4", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for w in 0..(1u64 << 15) {
                acc ^= h.syndrome(black_box(w));
            }
            acc
        });
    });
    c.bench_function("hamming_decode_p4", |b| {
        b.iter(|| h.decode(black_box(0x5A5A)));
    });
}

fn bench_domatic_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("domatic_search");
    group.sample_size(10);
    let q3 = hypercube(3);
    group.bench_function("q3_parts4", |b| {
        b.iter(|| domatic_partition(&q3, 4).expect("exists"));
    });
    let q4 = hypercube(4);
    group.bench_function("q4_parts4", |b| {
        b.iter(|| domatic_partition(&q4, 4).expect("exists"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_constructions,
    bench_verification,
    bench_hamming,
    bench_domatic_search
);
criterion_main!(benches);
