//! Graph substrate throughput: builders, BFS, diameter (serial vs
//! crossbeam-parallel), CSR freezing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_graph::builders::hypercube;
use shc_graph::csr::CsrGraph;
use shc_graph::metrics::diameter;
use shc_graph::parallel::diameter_parallel;
use shc_graph::traversal::bfs_distances;

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_hypercube");
    group.sample_size(10);
    for n in [12u32, 14, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| hypercube(black_box(n)));
        });
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(20);
    for n in [14u32, 16, 18] {
        let g = hypercube(n);
        group.bench_with_input(BenchmarkId::new("q", n), &g, |b, g| {
            b.iter(|| bfs_distances(g, black_box(0)));
        });
    }
    group.finish();
}

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter_q10");
    group.sample_size(10);
    let g = hypercube(10);
    group.bench_function("serial", |b| {
        b.iter(|| diameter(&g).expect("connected"));
    });
    group.bench_function("parallel", |b| {
        b.iter(|| diameter_parallel(&g, None).expect("connected"));
    });
    group.finish();
}

fn bench_csr(c: &mut Criterion) {
    let g = hypercube(14);
    c.bench_function("csr_freeze_q14", |b| {
        b.iter(|| CsrGraph::from_adj(black_box(&g)));
    });
    let csr = CsrGraph::from_adj(&g);
    c.bench_function("csr_bfs_q14", |b| {
        b.iter(|| bfs_distances(&csr, black_box(0)));
    });
}

criterion_group!(
    benches,
    bench_builders,
    bench_bfs,
    bench_diameter,
    bench_csr
);
criterion_main!(benches);
