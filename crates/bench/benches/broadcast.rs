//! Broadcast pipeline throughput: schedule generation (Broadcast_2 /
//! Broadcast_k / binomial baseline), validation, and the exact solver.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_broadcast::schemes::hypercube::hypercube_broadcast;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_broadcast::schemes::tree::tree_line_broadcast;
use shc_broadcast::solver::solve_min_time;
use shc_broadcast::verify::verify_minimum_time;
use shc_core::SparseHypercube;
use shc_graph::builders::theorem1_tree;

fn bench_scheme_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_scheme");
    group.sample_size(20);
    for n in [10u32, 12, 14] {
        let g = SparseHypercube::construct_base(n, 3);
        group.bench_with_input(BenchmarkId::new("base_n", n), &g, |b, g| {
            b.iter(|| broadcast_scheme(g, black_box(0)));
        });
    }
    let g3 = SparseHypercube::construct(&[2, 4, 12]);
    group.bench_function("k3_n12", |b| {
        b.iter(|| broadcast_scheme(&g3, black_box(0)));
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(20);
    for n in [10u32, 12, 14] {
        let g = SparseHypercube::construct_base(n, 3);
        let s = broadcast_scheme(&g, 0);
        group.bench_with_input(BenchmarkId::new("minimum_time_n", n), &n, |b, _| {
            b.iter(|| verify_minimum_time(&g, black_box(&s), 2).expect("valid"));
        });
    }
    group.finish();
}

fn bench_hypercube_baseline(c: &mut Criterion) {
    c.bench_function("binomial_broadcast_q14", |b| {
        b.iter(|| hypercube_broadcast(black_box(14), black_box(0)));
    });
}

fn bench_tree_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_line_broadcast");
    group.sample_size(20);
    for h in [4u32, 6, 8] {
        let t = theorem1_tree(h);
        group.bench_with_input(BenchmarkId::new("h", h), &t, |b, t| {
            b.iter(|| tree_line_broadcast(t, black_box(1)).expect("schedulable"));
        });
    }
    group.finish();
}

fn bench_exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver");
    group.sample_size(10);
    let t = theorem1_tree(1);
    group.bench_function("thm1_tree_h1_k2", |b| {
        b.iter(|| solve_min_time(&t, black_box(0), 2, 1_000_000));
    });
    let cyc = shc_graph::builders::cycle(8);
    group.bench_function("cycle8_k2", |b| {
        b.iter(|| solve_min_time(&cyc, black_box(0), 2, 1_000_000));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheme_generation,
    bench_verification,
    bench_hypercube_baseline,
    bench_tree_scheduler,
    bench_exact_solver
);
criterion_main!(benches);
