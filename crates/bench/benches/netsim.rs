//! Circuit-switching simulator throughput: schedule replay, competing
//! broadcasts, adaptive permutation routing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shc_broadcast::schemes::sparse::broadcast_scheme;
use shc_core::SparseHypercube;
use shc_graph::builders::hypercube;
use shc_netsim::{random_permutation_round, replay_competing, replay_schedule, MaterializedNet};

fn bench_replay(c: &mut Criterion) {
    let g = SparseHypercube::construct_base(12, 3);
    let s = broadcast_scheme(&g, 0);
    c.bench_function("replay_single_n12", |b| {
        b.iter(|| {
            let stats = replay_schedule(&g, black_box(&s), 1);
            assert_eq!(stats.blocked, 0);
            stats
        });
    });
}

fn bench_competing(c: &mut Criterion) {
    let g = SparseHypercube::construct_base(10, 3);
    let schedules: Vec<_> = [0u64, 1, 512, 1023]
        .iter()
        .map(|&s| broadcast_scheme(&g, s))
        .collect();
    let mut group = c.benchmark_group("competing_4x_n10");
    group.sample_size(30);
    for dilation in [1u32, 4] {
        group.bench_function(format!("dilation_{dilation}"), |b| {
            b.iter(|| replay_competing(&g, black_box(&schedules), dilation));
        });
    }
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let net = MaterializedNet::new(hypercube(10));
    c.bench_function("permutation_round_q10", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| random_permutation_round(&net, 512, 10, 1, &mut rng));
    });
}

criterion_group!(benches, bench_replay, bench_competing, bench_permutation);
criterion_main!(benches);
