//! Construction throughput: building sparse hypercubes (rule structures),
//! materializing them, and evaluating the closed-form degree/edge
//! formulas.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shc_core::params::{optimized_params, paper_params};
use shc_core::SparseHypercube;

fn bench_construct_base(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_base");
    for n in [16u32, 32, 48, 60] {
        let m = shc_core::bounds::thm5_m_star(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| SparseHypercube::construct_base(black_box(n), black_box(m)));
        });
    }
    group.finish();
}

fn bench_construct_recursive(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_recursive");
    for k in [3u32, 4, 5] {
        let dims = shc_core::bounds::thm7_params(k, 48);
        group.bench_with_input(BenchmarkId::new("k", k), &dims, |b, dims| {
            b.iter(|| SparseHypercube::construct(black_box(dims)));
        });
    }
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize");
    group.sample_size(20);
    for n in [12u32, 14, 16] {
        let g = SparseHypercube::construct_base(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| g.to_graph());
        });
    }
    group.finish();
}

fn bench_formulas(c: &mut Criterion) {
    let g = SparseHypercube::construct(&[3, 9, 27, 48]);
    c.bench_function("max_degree_formula_n48", |b| {
        b.iter(|| black_box(&g).max_degree());
    });
    c.bench_function("num_edges_formula_n48", |b| {
        b.iter(|| black_box(&g).num_edges());
    });
    c.bench_function("neighbors_n48", |b| {
        b.iter(|| black_box(&g).neighbors(black_box(0xDEAD_BEEF)));
    });
}

fn bench_param_search(c: &mut Criterion) {
    c.bench_function("paper_params_k3_n60", |b| {
        b.iter(|| paper_params(black_box(3), black_box(60)));
    });
    c.bench_function("optimized_params_k3_n60", |b| {
        b.iter(|| optimized_params(black_box(3), black_box(60)));
    });
    c.bench_function("optimized_params_k5_n40", |b| {
        b.iter(|| optimized_params(black_box(5), black_box(40)));
    });
}

criterion_group!(
    benches,
    bench_construct_base,
    bench_construct_recursive,
    bench_materialize,
    bench_formulas,
    bench_param_search
);
criterion_main!(benches);
