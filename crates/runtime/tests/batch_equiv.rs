//! Property tests for the [`BatchAdmitter`] wave driver, pinning the
//! three contracts the propose-then-commit pipeline ships on:
//!
//! 1. **Batch size 1 ≡ serial** — admitting each request as its own
//!    batch reproduces the serial `request` engine byte for byte:
//!    outcomes, stats, and the rendered trace-journal JSONL.
//! 2. **Intra invariance** — a whole-round batch admitted with 1 propose
//!    worker and with 4 produces identical reports and byte-identical
//!    journals (the determinism contract `--intra` rides on).
//! 3. **Metamorphic conflict-free relation** — when the wave driver
//!    reports zero conflicts, batching a round is invisible: outcomes
//!    and stats equal the serial engine's.

use proptest::prelude::*;
use shc_netsim::{BatchOutcome, BatchRequest, Engine, NetTopology, Outcome};
use shc_runtime::{BatchAdmitter, TopologySpec, TraceJournal};

const DILATION_RANGE: std::ops::Range<u32> = 1..3;

fn topo() -> (shc_runtime::BuiltTopology, u64) {
    let built = TopologySpec::SparseBase { n: 5, m: 2 }.build();
    let n = NetTopology::num_vertices(&built);
    (built, n)
}

/// Raw `(src, dst)` pairs per round → valid requests, self-loops
/// dropped, endpoints reduced modulo the vertex count.
fn rounds_of(n: u64, raw: &[Vec<(u64, u64)>]) -> Vec<Vec<BatchRequest>> {
    raw.iter()
        .map(|round| {
            round
                .iter()
                .map(|&(s, d)| (s % n, d % n))
                .filter(|&(s, d)| s != d)
                .map(|(src, dst)| BatchRequest {
                    src,
                    dst,
                    max_len: 12,
                })
                .collect()
        })
        .collect()
}

fn arb_rounds() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..256, 0u64..256), 0..12),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batch size 1 ≡ serial, journal bytes included: each request
    /// admitted as its own single-element batch fires exactly the probe
    /// events a serial `request` fires, in the same order.
    #[test]
    fn batch_size_one_equals_serial_with_journals(raw in arb_rounds(), dilation in DILATION_RANGE) {
        let (built, n) = topo();
        let mut serial = Engine::with_probe(&built, dilation, TraceJournal::new(0, 1 << 14));
        let mut batched = Engine::with_probe(&built, dilation, TraceJournal::new(0, 1 << 14));
        let mut admitter = BatchAdmitter::new(n, 1);
        for round in rounds_of(n, &raw) {
            serial.begin_round();
            batched.begin_round();
            for req in &round {
                let a = serial.request(req.src, req.dst, req.max_len);
                let report = admitter.admit_round(&mut batched, std::slice::from_ref(req));
                prop_assert_eq!(report.conflicts, 0, "a singleton batch cannot conflict");
                match (&a, &report.outcomes[0]) {
                    (Outcome::Established(path), BatchOutcome::Established { hops }) => {
                        prop_assert_eq!(path.len() as u32 - 1, *hops);
                    }
                    (Outcome::Blocked(ra), BatchOutcome::Blocked(rb)) => {
                        prop_assert_eq!(ra, rb);
                    }
                    (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
                }
            }
        }
        let (stats_a, journal_a) = serial.finish_with_probe();
        let (stats_b, journal_b) = batched.finish_with_probe();
        prop_assert_eq!(stats_a, stats_b, "stats diverged");
        prop_assert_eq!(
            journal_a.render_jsonl(),
            journal_b.render_jsonl(),
            "journal bytes diverged"
        );
    }

    /// Intra invariance: the same whole-round batches admitted with 1
    /// and 4 propose workers produce identical round reports, stats, and
    /// byte-identical journals.
    #[test]
    fn whole_batch_is_intra_invariant(raw in arb_rounds(), dilation in DILATION_RANGE) {
        let (built, n) = topo();
        let rounds = rounds_of(n, &raw);
        let run = |intra: usize| {
            let mut sim = Engine::with_probe(&built, dilation, TraceJournal::new(0, 1 << 14));
            let mut admitter = BatchAdmitter::new(n, intra);
            let mut reports = Vec::new();
            for round in &rounds {
                sim.begin_round();
                reports.push(admitter.admit_round(&mut sim, round));
            }
            let (stats, journal) = sim.finish_with_probe();
            (reports, stats, journal.render_jsonl())
        };
        let (reports_1, stats_1, jsonl_1) = run(1);
        let (reports_4, stats_4, jsonl_4) = run(4);
        prop_assert_eq!(reports_1, reports_4, "round reports diverged across intra");
        prop_assert_eq!(stats_1, stats_4, "stats diverged across intra");
        prop_assert_eq!(jsonl_1, jsonl_4, "journal bytes diverged across intra");
    }

    /// Metamorphic conflict-free relation: whenever the wave driver
    /// reports zero conflicts for every round, batching changed nothing —
    /// outcomes and stats equal the serial engine's. (Singleton batches
    /// are the degenerate case; this pins arbitrary batch sizes.)
    #[test]
    fn conflict_free_batches_match_serial(raw in arb_rounds(), dilation in DILATION_RANGE) {
        let (built, n) = topo();
        let rounds = rounds_of(n, &raw);
        let mut serial = Engine::new(&built, dilation);
        let mut batched = Engine::new(&built, dilation);
        let mut admitter = BatchAdmitter::new(n, 2);
        let mut any_conflict = false;
        for round in &rounds {
            serial.begin_round();
            batched.begin_round();
            let serial_outcomes: Vec<Outcome> = round
                .iter()
                .map(|r| serial.request(r.src, r.dst, r.max_len))
                .collect();
            let report = admitter.admit_round(&mut batched, round);
            prop_assert_eq!(report.outcomes.len(), round.len());
            prop_assert!(u64::from(report.waves) <= round.len().max(1) as u64);
            if report.conflicts > 0 {
                any_conflict = true;
                continue;
            }
            for (a, b) in serial_outcomes.iter().zip(&report.outcomes) {
                match (a, b) {
                    (Outcome::Established(path), BatchOutcome::Established { hops }) => {
                        prop_assert_eq!(path.len() as u32 - 1, *hops);
                    }
                    (Outcome::Blocked(ra), BatchOutcome::Blocked(rb)) => {
                        prop_assert_eq!(ra, rb);
                    }
                    (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
                }
            }
        }
        if !any_conflict {
            prop_assert_eq!(serial.finish(), batched.finish(), "stats diverged");
        }
    }
}
