//! Property-based guarantees of the scenario runtime:
//! * fixed-path replay of a *verified* schedule through
//!   `Engine::request_path` is never `Blocked` on an undamaged topology
//!   (the physical face of Theorem 4's edge-disjointness);
//! * a fault model injecting **zero** faults produces a report — down to
//!   its JSON bytes — identical to the baseline (no-fault-spec) run;
//! * reports are identical across worker-thread counts.

use proptest::prelude::*;
use shc_broadcast::verify_minimum_time;
use shc_netsim::{Engine, FaultedNet};
use shc_runtime::{run_scenario, FaultSpec, OriginatorPolicy, Scenario, TopologySpec, Workload};

fn arb_base_params() -> impl Strategy<Value = (u32, u32)> {
    (4u32..=8).prop_flat_map(|n| (Just(n), 1u32..n.min(4)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn verified_schedule_replay_never_blocked((n, m) in arb_base_params(), src_raw: u64) {
        let topo = TopologySpec::SparseBase { n, m }.build();
        let source = src_raw & ((1u64 << n) - 1);
        let schedule = topo.schedule(source);
        // The schedule is machine-verified against Definition 1 first …
        if let Some(g) = topo.sparse() {
            prop_assert!(verify_minimum_time(g, &schedule, 2).is_ok());
        }
        // … then replayed call-by-call through the engine on an intact
        // (0-fault overlay) topology: no call may ever block.
        let net = FaultedNet::intact(&topo);
        let mut sim = Engine::new(&net, 1);
        for round in &schedule.rounds {
            sim.begin_round();
            for call in &round.calls {
                prop_assert!(sim.request_path(&call.path).is_established());
            }
        }
        let stats = sim.finish();
        prop_assert_eq!(stats.blocked, 0);
        prop_assert_eq!(stats.established, schedule.num_calls());
    }

    #[test]
    fn zero_fault_injection_is_byte_identical_to_fault_free_path(
        (n, m) in arb_base_params(),
        seed: u64,
        src_raw: u64,
    ) {
        // Ground truth from *outside* the fault machinery: the legacy
        // `replay_schedule` on the bare topology (no FaultPlan, no
        // FaultedNet overlay, no executor).
        let topo = TopologySpec::SparseBase { n, m }.build();
        let source = src_raw & ((1u64 << n) - 1);
        let legacy = shc_netsim::replay_schedule(&topo, &topo.schedule(source), 1);
        // The same broadcast routed through fault injection with an
        // explicit all-zero fault model must reproduce it counter for
        // counter, and its report must be byte-stable across workers.
        let zero_faults = Scenario::new(
            "prop-zero-faults",
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Fixed(source))
        .faults(FaultSpec {
            link_failures: 0,
            node_crashes: 0,
            dilation_shift: None,
        })
        .seed(seed);
        let injected = run_scenario(&zero_faults, 2);
        prop_assert_eq!(injected.total_established, legacy.established as u64);
        prop_assert_eq!(injected.total_blocked, legacy.blocked as u64);
        prop_assert_eq!(injected.metric("rounds").unwrap().max, legacy.rounds as u64);
        prop_assert_eq!(
            injected.metric("total_hops").unwrap().max,
            legacy.total_hops as u64
        );
        prop_assert_eq!(
            injected.metric("peak_link_load").unwrap().max,
            u64::from(legacy.peak_link_load)
        );
        prop_assert_eq!(injected.metric("severed_calls").unwrap().max, 0);
        let a = serde_json::to_string_pretty(&injected).unwrap();
        let b = serde_json::to_string_pretty(&run_scenario(&zero_faults, 1)).unwrap();
        prop_assert_eq!(a, b, "zero faults must be byte-identical across workers");
    }

    #[test]
    fn reports_identical_across_worker_counts(
        seed: u64,
        link_failures in 0usize..10,
        threads in 2usize..6,
    ) {
        let scenario = Scenario::new(
            "prop-threads",
            TopologySpec::SparseBase { n: 6, m: 3 },
            Workload::Broadcast { competing: 2 },
        )
        .originators(OriginatorPolicy::Random)
        .faults(FaultSpec { link_failures, node_crashes: 1, dilation_shift: None })
        .replications(10)
        .seed(seed);
        prop_assert_eq!(run_scenario(&scenario, 1), run_scenario(&scenario, threads));
    }

    #[test]
    fn informed_fraction_is_a_fraction(
        seed: u64,
        link_failures in 0usize..24,
    ) {
        let scenario = Scenario::new(
            "prop-frac",
            TopologySpec::SparseBase { n: 6, m: 2 },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Random)
        .faults(FaultSpec { link_failures, node_crashes: 0, dilation_shift: None })
        .replications(6)
        .seed(seed);
        let report = run_scenario(&scenario, 2);
        prop_assert!(report.mean_informed_fraction > 0.0, "source always informed");
        prop_assert!(report.mean_informed_fraction <= 1.0);
        // Degrade accounting is conservation-exact: delivered + severed +
        // voided = all calls of the primary schedule.
        let calls = report.metric("severed_calls").unwrap().mean
            + report.metric("voided_calls").unwrap().mean
            + report.metric("informed").unwrap().mean - 1.0;
        let expected = f64::from((1u32 << 6) - 1);
        prop_assert!(calls <= expected + 1e-9, "calls {calls} vs {expected}");
    }
}
