//! Structured-input fuzzing of the service layer: a seeded generator
//! draws random `ServiceSpec`s across the full configuration lattice —
//! topology × arrivals × holding × popularity × admission policy ×
//! churn × QoS × closed-loop sources — and every generated cell must
//! run to completion (no panics), audit clean through `trace::audit`,
//! and balance its flow and arrival ledgers exactly.
//!
//! This is fuzzing in the spec-space sense, not byte mutation: inputs
//! are always *valid* specs, so any failure is an engine/service/trace
//! bug, never a parser complaint. The generator RNG is pinned, so a
//! failing cell reproduces from its printed index alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shc_runtime::trace::audit::audit_journal;
use shc_runtime::{
    run_service_traced, AdmissionPolicy, ArrivalSpec, ChurnSpec, ClosedLoopSpec, FailoverPolicy,
    HoldingSpec, PopularitySpec, QosSpec, ServiceReport, ServiceSpec, TopologySpec,
};

fn counter(report: &ServiceReport, name: &str) -> u64 {
    report
        .totals
        .counters
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .value
}

fn gauge(report: &ServiceReport, name: &str) -> i64 {
    report
        .totals
        .gauges
        .iter()
        .find(|g| g.name == name)
        .unwrap_or_else(|| panic!("gauge {name} missing"))
        .value
}

/// One uniform draw over the spec lattice. Every branch probability is
/// chosen so churn/QoS/closed-loop each appear in a majority of cells
/// while the all-`None` PR 6 shape still occurs.
fn gen_spec(rng: &mut StdRng, idx: usize) -> ServiceSpec {
    let topology = match rng.gen_range(0u32..3) {
        0 => TopologySpec::Hypercube { n: 3 },
        1 => TopologySpec::Hypercube { n: 4 },
        _ => TopologySpec::SparseBase { n: 5, m: 2 },
    };
    let holding = if rng.gen_range(0u32..8) == 0 {
        HoldingSpec::Infinite
    } else {
        HoldingSpec::Geometric {
            mean_rounds: 2.0 + rng.gen::<f64>() * 12.0,
        }
    };
    let popularity = if rng.gen_range(0u32..2) == 0 {
        PopularitySpec::Uniform
    } else {
        PopularitySpec::Zipf {
            exponent: rng.gen::<f64>() * 1.5,
        }
    };
    let policy = if rng.gen_range(0u32..2) == 0 {
        AdmissionPolicy::Reject
    } else {
        AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds: rng.gen_range(1u32..9),
            capacity: rng.gen_range(4usize..65),
        }
    };
    let rounds = [40usize, 80, 120][rng.gen_range(0usize..3)];
    let mut spec = ServiceSpec::new(&format!("fuzz-{idx}"), topology)
        .arrivals(ArrivalSpec::poisson(1.0 + rng.gen::<f64>() * 9.0))
        .holding(holding)
        .popularity(popularity)
        .policy(policy)
        .rounds(rounds)
        .window_rounds(40)
        .seed(rng.gen_range(1u64..1 << 48));
    if rng.gen_range(0u32..4) != 0 {
        let mttr_mean_rounds = if rng.gen_range(0u32..4) == 0 {
            0.0 // permanent damage
        } else {
            1.0 + rng.gen::<f64>() * 11.0
        };
        spec = spec.churn(ChurnSpec {
            fail_rate_per_round: rng.gen::<f64>() * 2.5,
            mttr_mean_rounds,
            on_fail: if rng.gen_range(0u32..2) == 0 {
                FailoverPolicy::Teardown
            } else {
                FailoverPolicy::Reroute
            },
        });
    }
    if rng.gen_range(0u32..2) == 0 {
        spec = spec.qos(QosSpec {
            priority_share: rng.gen::<f64>(),
            max_preemptions: rng.gen_range(1u32..4),
        });
    }
    if rng.gen_range(0u32..2) == 0 {
        let backoff_base_rounds = rng.gen_range(1u32..5);
        spec = spec.closed_loop(ClosedLoopSpec {
            sources: rng.gen_range(1u32..9),
            think_mean_rounds: 1.0 + rng.gen::<f64>() * 5.0,
            backoff_base_rounds,
            backoff_cap_rounds: backoff_base_rounds + rng.gen_range(0u32..8),
        });
    }
    spec
}

/// Runs one generated cell through the traced service and checks every
/// ledger the layer promises to conserve, cross-checked against the
/// journal's independent replay.
fn check_cell(spec: &ServiceSpec, idx: usize) {
    let (report, journal) = run_service_traced(spec, idx as u32, 1 << 18);
    assert_eq!(journal.dropped(), 0, "cell {idx}: journal dropped records");

    // Flow ledger: every admission ends released, torn down, preempted,
    // or still active. Reroutes keep flows active, so they never enter.
    let admitted = counter(&report, "flow_admitted_total");
    let closed = counter(&report, "flow_released_total")
        + counter(&report, "flow_torn_down_total")
        + counter(&report, "flow_preempted_total");
    assert_eq!(
        gauge(&report, "flows_active"),
        i64::try_from(admitted - closed).unwrap(),
        "cell {idx}: flow ledger leaked"
    );

    // Arrival ledger: open-loop, retried closed-loop, and queued
    // arrivals all end admitted, rejected, or still parked in the queue.
    let queue_end = report.windows.last().map_or(0, |w| w.queue_depth_end);
    assert_eq!(
        counter(&report, "flow_arrivals_total"),
        admitted + counter(&report, "flow_rejected_total") + queue_end,
        "cell {idx}: arrival ledger leaked"
    );

    // Tier accounting can never exceed its parent stream.
    assert!(counter(&report, "flow_admitted_priority_total") <= admitted);
    assert!(
        counter(&report, "flow_admitted_priority_total")
            <= counter(&report, "flow_arrivals_priority_total"),
        "cell {idx}: admitted more priority flows than arrived"
    );

    // The journal's replay must agree with the live counters.
    let audit = audit_journal(&journal).unwrap_or_else(|e| panic!("cell {idx}: {e}"));
    assert_eq!(audit.flows_opened, admitted, "cell {idx}");
    assert_eq!(
        audit.flows_released,
        counter(&report, "flow_released_total"),
        "cell {idx}"
    );
    assert_eq!(
        audit.flows_torn_down,
        counter(&report, "flow_torn_down_total"),
        "cell {idx}"
    );
    assert_eq!(
        audit.flows_preempted,
        counter(&report, "flow_preempted_total"),
        "cell {idx}"
    );
    assert_eq!(
        audit.flows_rerouted,
        counter(&report, "flow_rerouted_total"),
        "cell {idx}"
    );
    assert_eq!(
        audit.links_failed,
        counter(&report, "link_fail_total"),
        "cell {idx}"
    );
    assert_eq!(
        audit.links_repaired,
        counter(&report, "link_repair_total"),
        "cell {idx}"
    );
}

/// 48 random cells across two generator seeds: none may panic, drop
/// trace records, violate a ledger, or fail the audit replay.
#[test]
fn generated_specs_run_audit_clean() {
    for (stream, master) in [(0usize, 0xF1A5u64), (1, 0xDEC0DE)] {
        let mut rng = StdRng::seed_from_u64(master);
        for i in 0..24 {
            let idx = stream * 24 + i;
            let spec = gen_spec(&mut rng, idx);
            check_cell(&spec, idx);
        }
    }
}

/// Every 6th generated cell re-runs: the report JSON and the trace
/// journal bytes must be identical — fuzz inputs obey the same
/// determinism contract as the curated catalog.
#[test]
fn generated_specs_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xF055);
    for idx in 0..6 {
        let spec = gen_spec(&mut rng, idx);
        let (ra, ja) = run_service_traced(&spec, idx as u32, 1 << 18);
        let (rb, jb) = run_service_traced(&spec, idx as u32, 1 << 18);
        assert_eq!(
            serde_json::to_string(&ra.windows).unwrap(),
            serde_json::to_string(&rb.windows).unwrap(),
            "cell {idx}: window rows diverged"
        );
        assert_eq!(ra.totals, rb.totals, "cell {idx}: metric totals diverged");
        assert_eq!(
            ja.render_jsonl(),
            jb.render_jsonl(),
            "cell {idx}: trace journals diverged"
        );
    }
}
