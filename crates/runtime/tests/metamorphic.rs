//! Metamorphic properties of the churn/QoS service layer: instead of
//! asserting absolute numbers, these tests pin *relations between runs*
//! whose specs differ in one controlled way. Every run is deterministic
//! (pinned seeds), so each relation is a regression contract, not a
//! statistical claim — the franken_node `perf/metamorphic_tests.rs`
//! idiom applied to the flow service.
//!
//! Relations pinned here:
//! 1. Adding faults never increases established throughput.
//! 2. Repairing links sooner (a pointwise-earlier repair process, so the
//!    repaired set at every round is a superset) never hurts throughput.
//! 3. Raising the priority tier's share never lowers that tier's
//!    admissions.
//! 4. A zero-rate churn spec reproduces the churn-free baseline
//!    byte-identically — faults ride a separate RNG stream derived from
//!    the cell seed, so merely *enabling* the machinery changes nothing.

use shc_runtime::{
    run_service, run_service_traced, AdmissionPolicy, ArrivalSpec, ChurnSpec, FailoverPolicy,
    HoldingSpec, QosSpec, ServiceReport, ServiceSpec, TopologySpec,
};

fn counter(report: &ServiceReport, name: &str) -> u64 {
    report
        .totals
        .counters
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .value
}

fn base_cell(seed: u64) -> ServiceSpec {
    ServiceSpec::new("meta", TopologySpec::Hypercube { n: 4 })
        .arrivals(ArrivalSpec::poisson(6.0))
        .holding(HoldingSpec::Geometric { mean_rounds: 8.0 })
        .policy(AdmissionPolicy::Reject)
        .rounds(120)
        .window_rounds(40)
        .seed(seed)
}

fn churn(rate: f64, mttr: f64, on_fail: FailoverPolicy) -> ChurnSpec {
    ChurnSpec {
        fail_rate_per_round: rate,
        mttr_mean_rounds: mttr,
        on_fail,
    }
}

/// Established throughput that survived: admissions whose session was
/// not killed by a fault. Raw admissions are *not* monotone under
/// faults — a teardown frees held capacity early, which can admit more
/// later arrivals — but those extra admissions are bought with killed
/// sessions, so net goodput only falls.
fn goodput(report: &ServiceReport) -> u64 {
    counter(report, "flow_admitted_total") - counter(report, "flow_torn_down_total")
}

/// Property 1 — faults only remove capacity: for any fault rate and either
/// failover policy, the faulted run's goodput never exceeds the
/// undamaged baseline (same traffic stream — the fault process rides a
/// separate RNG).
#[test]
fn adding_faults_never_increases_throughput() {
    for on_fail in [FailoverPolicy::Teardown, FailoverPolicy::Reroute] {
        for seed in [3u64, 11, 42] {
            let baseline = run_service(&base_cell(seed));
            let base_good = goodput(&baseline);
            for rate in [0.5, 1.5, 3.0] {
                let faulted = run_service(&base_cell(seed).churn(churn(rate, 10.0, on_fail)));
                let good = goodput(&faulted);
                assert!(
                    good <= base_good,
                    "seed {seed} rate {rate} {on_fail:?}: faulted goodput {good} \
                     > baseline {base_good}"
                );
            }
        }
    }
}

/// Property 2 — a smaller MTTR mean maps the same geometric draw to a
/// pointwise-earlier heal (the inverse CDF is monotone in the mean), so
/// the healed-links set at every round is a superset of the slow run's.
/// Repairing more never hurts throughput.
#[test]
fn repairing_sooner_never_hurts_throughput() {
    for seed in [3u64, 11, 42] {
        for on_fail in [FailoverPolicy::Teardown, FailoverPolicy::Reroute] {
            let slow = run_service(&base_cell(seed).churn(churn(1.5, 12.0, on_fail)));
            let fast = run_service(&base_cell(seed).churn(churn(1.5, 2.0, on_fail)));
            assert!(
                goodput(&fast) >= goodput(&slow),
                "seed {seed} {on_fail:?}: repairing sooner lost goodput \
                 ({} fast vs {} slow)",
                goodput(&fast),
                goodput(&slow),
            );
        }
    }
}

/// Property 3 — the tier draw compares one uniform against the share, so the
/// priority arrivals at share p are a subset of those at share q > p —
/// and preemption only ever works in the tier's favour. Raising the
/// share never lowers the tier's admissions.
#[test]
fn raising_priority_share_never_lowers_priority_admits() {
    for seed in [5u64, 23] {
        let mut last = 0u64;
        for share in [0.1, 0.3, 0.6] {
            let report = run_service(
                &base_cell(seed)
                    .arrivals(ArrivalSpec::poisson(10.0))
                    .holding(HoldingSpec::Geometric { mean_rounds: 16.0 })
                    .qos(QosSpec {
                        priority_share: share,
                        max_preemptions: 2,
                    }),
            );
            let pri = counter(&report, "flow_admitted_priority_total");
            assert!(
                pri >= last,
                "seed {seed} share {share}: priority admits fell {last} -> {pri}"
            );
            last = pri;
        }
        assert!(last > 0, "seed {seed}: the priority tier never admitted");
    }
}

/// Property 4 — zero-fault churn is byte-identical to no churn at all: reports and
/// trace journals. This is the baseline anchor for every relation above
/// — it proves enabling the churn machinery (spec present, rate 0)
/// perturbs neither the traffic stream nor the event stream.
#[test]
fn zero_fault_churn_reproduces_the_baseline_byte_identically() {
    for seed in [1u64, 9, 77] {
        let plain = base_cell(seed).policy(AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds: 6,
            capacity: 64,
        });
        let zeroed = plain
            .clone()
            .churn(churn(0.0, 8.0, FailoverPolicy::Reroute));
        let (ra, ja) = run_service_traced(&plain, 0, 1 << 18);
        let (rb, jb) = run_service_traced(&zeroed, 0, 1 << 18);
        assert_eq!(
            serde_json::to_string(&ra.windows).unwrap(),
            serde_json::to_string(&rb.windows).unwrap(),
            "seed {seed}: window rows diverged"
        );
        assert_eq!(ra.totals, rb.totals, "seed {seed}: metric totals diverged");
        assert_eq!(ra.engine, rb.engine, "seed {seed}: engine totals diverged");
        assert_eq!(
            ja.render_jsonl(),
            jb.render_jsonl(),
            "seed {seed}: trace journals diverged"
        );
    }
}
